"""Figure 2 reproduction: case analysis and filtering of the genetic AND gate.

Reproduces the discussion of Section II on the 2-input genetic AND gate:

* the output of the model is initially high and decays while combination 00
  is applied — an "unwanted high peak" that must be filtered out,
* with both data filters the algorithm recovers ``GFP = LacI · TetR``,
* with the filters disabled the same data suggests an XNOR-like behaviour.

The experiment settings mirror the paper's (one sample per time unit, every
combination held for a multiple of the propagation delay, threshold of 15
molecules, FOV_UD = 0.25); hold times are scaled with the gate kinetics as
documented in EXPERIMENTS.md.

Run with:  python examples/and_gate_analysis.py
"""

from repro import FilterConfig, LogicAnalyzer, and_gate_circuit, format_analysis_report
from repro.vlab import LogicExperiment

THRESHOLD = 15.0
HOLD_TIME = 250.0


def main() -> None:
    circuit = and_gate_circuit()

    # Start the reporter high so combination 00 shows the decaying transient
    # visible in the paper's Figure 2 trace.
    model = circuit.model.copy()
    model.set_initial_amount(circuit.output, 60.0)

    experiment = LogicExperiment(
        model=model,
        input_species=list(circuit.inputs),
        output_species=circuit.output,
        circuit_name=circuit.name,
    )
    data = experiment.run(hold_time=HOLD_TIME, repeats=2, rng=654)

    # --- the paper's configuration: both filters -----------------------------
    analyzer = LogicAnalyzer(threshold=THRESHOLD, fov_ud=0.25)
    result = analyzer.analyze(data, expected=circuit.expected_table)
    print(format_analysis_report(result, title="Figure 2 — with both data filters"))
    print()

    # --- ablation: no filters -------------------------------------------------
    unfiltered = LogicAnalyzer(
        threshold=THRESHOLD,
        filter_config=FilterConfig(use_fov_filter=False, use_majority_filter=False),
    ).analyze(data)
    print("Without the two filters the same data is read as "
          f"{unfiltered.truth_table.to_hex()} ({unfiltered.gate_name or 'unnamed'}) — "
          "the XNOR-style misreading the paper warns about.")
    print()

    # --- analysing an intermediate species ------------------------------------
    intermediate = analyzer.analyze(data, output_species="CI")
    print("Analysis of the intermediate species CI (the NAND stage):")
    print(f"  CI = {intermediate.expression.to_string()}  "
          f"[{intermediate.gate_name}]  fitness {intermediate.fitness:.2f}%")


if __name__ == "__main__":
    main()
