"""Quickstart: analyse and verify the paper's 2-input genetic AND gate.

This script walks the full pipeline in ~30 lines:

1. build the Figure-1 AND gate (LacI/TetR → CI → GFP),
2. estimate its threshold value and propagation delay (the two parameters the
   paper's methodology requires),
3. run a stochastic virtual-laboratory experiment through every input
   combination,
4. run the logic analysis and verification algorithm (Algorithm 1), and
5. print the Figure-2 style report.

Run with:  python examples/quickstart.py
"""

from repro import (
    LogicAnalyzer,
    and_gate_circuit,
    estimate_propagation_delay,
    estimate_threshold,
    format_analysis_report,
    run_logic_experiment,
)


def main() -> None:
    # 1. The genetic AND gate of the paper's Figure 1.
    circuit = and_gate_circuit()
    print(circuit.summary())
    print(circuit.netlist.describe())
    print()

    # 2. Circuit parameters: threshold value and propagation delay.
    threshold = estimate_threshold(circuit.model, circuit.inputs, circuit.output)
    delay = estimate_propagation_delay(
        circuit.model, circuit.inputs, circuit.output, threshold=threshold.threshold
    )
    print(threshold.summary())
    print(delay.summary())
    print()

    # 3. Virtual-laboratory experiment: every input combination, held well
    #    beyond the propagation delay, sampled once per time unit.
    hold_time = max(delay.recommended_hold_time(), 150.0)
    data = run_logic_experiment(circuit, hold_time=hold_time, repeats=2, rng=1)

    # 4. Logic analysis and verification (threshold 15 molecules, FOV_UD 0.25,
    #    exactly as in the paper's experiments).
    analyzer = LogicAnalyzer(threshold=15.0, fov_ud=0.25)
    result = analyzer.analyze(data, expected=circuit.expected_table)

    # 5. The Figure-2 style report.
    print(format_analysis_report(result, title="Quickstart — genetic AND gate"))


if __name__ == "__main__":
    main()
