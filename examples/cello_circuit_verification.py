"""Figure 4 reproduction: verification of Cello circuits 0x0B, 0x04 and 0x1C.

For each circuit the script prints the per-combination analytics table
(``Case_I``, ``High_O``, ``Var_O``), the recovered Boolean expression, the
percentage fitness and the verification verdict against the circuit's
truth-table name — the same artefacts the paper's Figure 4 shows.

It also demonstrates the point the paper makes about circuit 0x0B: the input
combination 100 logs many logic-1 output samples only because the output is
still decaying from the previous combination 011, and the majority filter
(eq. 2) correctly removes it from the Boolean expression.

Run with:  python examples/cello_circuit_verification.py
"""

from repro import LogicAnalyzer, cello_circuit, format_analysis_report, run_logic_experiment

CIRCUITS = ["0x0B", "0x04", "0x1C"]
THRESHOLD = 15.0
HOLD_TIME = 250.0


def main() -> None:
    analyzer = LogicAnalyzer(threshold=THRESHOLD, fov_ud=0.25)

    for offset, name in enumerate(CIRCUITS):
        circuit = cello_circuit(name)
        print("=" * 72)
        print(circuit.summary())
        print(circuit.netlist.describe())
        print()

        data = run_logic_experiment(circuit, hold_time=HOLD_TIME, rng=100 + offset)
        result = analyzer.analyze(data, expected=circuit.expected_table)
        print(format_analysis_report(result, title=f"Figure 4 — Cello circuit {name}"))
        print()

        if name == "0x0B":
            c100 = result.combination("100")
            print(
                "Note on combination 100: the output was logic-1 for "
                f"{c100.high_count} of {c100.case_count} samples (decay from the "
                "previous combination 011), which is below half the stream length, "
                "so equation (2) filters it out of the Boolean expression — exactly "
                "the behaviour discussed in the paper."
            )
            print()


if __name__ == "__main__":
    main()
