"""Design-and-verify workflow for a custom n-input genetic circuit.

This example plays the role of a circuit designer who starts from a desired
truth table rather than an existing model:

1. specify the target behaviour (here: a 3-input majority voter),
2. synthesize a NOT/NOR gate netlist for it (the Cello step),
3. assign repressors from the parts library and compose the SBML model (the
   SBOL → SBML step),
4. export the SBML file and the logged experiment CSV (the artefacts another
   group could load into their own tools),
5. verify with the paper's algorithm that the stochastic model really
   implements the intended logic, and
6. check how robust the design is across threshold choices.

Run with:  python examples/custom_circuit_synthesis.py
"""

import tempfile
from pathlib import Path

from repro import (
    LogicAnalyzer,
    TruthTable,
    assess_robustness,
    build_circuit,
    format_analysis_report,
    run_logic_experiment,
    synthesize,
    write_datalog_csv,
    write_sbml_file,
)


def main() -> None:
    # 1. Target behaviour: 3-input majority (high when >= 2 inputs are high).
    target = TruthTable.from_expression(
        "LacI & TetR | LacI & AraC | TetR & AraC",
        inputs=["LacI", "TetR", "AraC"],
    )
    print("Target truth table:")
    print(target.format(output_name="RFP"))
    print()

    # 2. Synthesize a NOT/NOR netlist (the physically realisable gate set).
    netlist = synthesize(target, name="majority_voter")
    print(netlist.describe())
    print()

    # 3. Compose the reaction-network model with a red reporter.
    circuit = build_circuit(netlist, output_protein="RFP",
                            description="3-input majority voter")
    print(circuit.summary())
    print()

    # 4. Export the SBML model and a logged experiment for external tools.
    output_dir = Path(tempfile.mkdtemp(prefix="majority_voter_"))
    sbml_path = output_dir / "majority_voter.xml"
    write_sbml_file(circuit.model, sbml_path)

    data = run_logic_experiment(circuit, hold_time=200.0, repeats=2, rng=42)
    csv_path = output_dir / "majority_voter_traces.csv"
    write_datalog_csv(data, csv_path)
    print(f"SBML model written to      {sbml_path}")
    print(f"experiment log written to  {csv_path}")
    print()

    # 5. Verify the stochastic behaviour against the intent.
    analyzer = LogicAnalyzer(threshold=15.0, fov_ud=0.25)
    result = analyzer.analyze(data, expected=target)
    print(format_analysis_report(result, title="Verification of the majority voter"))
    print()

    # 6. Robustness across thresholds.
    report = assess_robustness(
        circuit, thresholds=[5.0, 15.0, 25.0], nominal_threshold=15.0,
        hold_time=200.0, rng=43,
    )
    print(report.summary())


if __name__ == "__main__":
    main()
