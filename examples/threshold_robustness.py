"""Figure 5 reproduction: threshold sensitivity and robustness of circuit 0x0B.

The paper re-analyses circuit 0x0B with the input/threshold level set to 3
and 40 molecules and finds that the recovered logic changes: too-weak inputs
cannot trigger the circuit and too-strong thresholds leave the logic levels
indistinguishable (heavy output oscillation, wrong states).

This script sweeps a range of operating points, prints the recovered
behaviour at each one, and finishes with the robustness report the paper's
conclusion motivates ("analyze the circuit's behavior and robustness for
different parameter sets before creating them in the laboratory").

Run with:  python examples/threshold_robustness.py
"""

from repro import assess_robustness, cello_circuit, threshold_sweep

THRESHOLDS = [3.0, 8.0, 15.0, 25.0, 40.0]


def main() -> None:
    circuit = cello_circuit("0x0B")
    print(circuit.summary())
    print()

    print("Figure 5 — recovered behaviour vs. threshold / input level")
    entries = threshold_sweep(
        circuit, thresholds=THRESHOLDS, hold_time=200.0, rng=7, fov_ud=0.25
    )
    for entry in entries:
        marker = "  <-- nominal" if entry.threshold == 15.0 else ""
        print(f"  {entry.summary()}{marker}")
        if entry.wrong_states:
            print(f"      wrong states: {', '.join(entry.wrong_states)}")
    print()

    report = assess_robustness(
        circuit,
        thresholds=THRESHOLDS,
        nominal_threshold=15.0,
        hold_time=200.0,
        rng=8,
    )
    print(report.summary())
    window = report.operating_window()
    if window:
        print(
            f"The circuit's logic is reliable for thresholds between {window[0]:g} and "
            f"{window[1]:g} molecules; outside that window a designer should expect the "
            "wrong Boolean behaviour that Figure 5 illustrates."
        )


if __name__ == "__main__":
    main()
