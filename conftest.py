"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (useful in offline environments where ``pip install -e .`` needs
the ``--no-build-isolation`` flag); when the package is installed this is a
no-op because the installed distribution takes precedence on ``sys.path``
only if it appears first — so we only prepend when the import would fail.
"""

import os
import sys

try:  # pragma: no cover - trivial import guard
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
