"""Experiment E5 — Section IV: runtime of the analysis algorithm.

The paper reports "about 8.4 seconds to analyze the logic of a complex
genetic circuit with significantly large-sized data" and argues that this is
negligible next to the hours a laboratory measurement takes.  This benchmark
measures the analyzer's wall-clock time on traces of increasing size (up to
10^6 samples of a 3-input circuit — two orders of magnitude more data than a
10,000-time-unit D-VASim run) and asserts the whole range stays inside the
paper's 8.4-second budget.
"""

import pytest

from conftest import paper_analyzer
from repro.analysis import measure_analysis_runtime, synthetic_experiment_arrays
from repro.logic import TruthTable

SIZES = [10_000, 100_000, 1_000_000]


@pytest.fixture(scope="module")
def large_trace():
    """A 10^6-sample synthetic experiment of a 3-input circuit (0x1C)."""
    table = TruthTable.from_hex("0x1C", n_inputs=3)
    return synthetic_experiment_arrays(1_000_000, 3, truth_table=table, rng=7)


def test_runtime_scaling_table(benchmark, large_trace):
    inputs, output, names = large_trace
    analyzer = paper_analyzer()

    result = benchmark(analyzer.analyze_arrays, inputs, output, names)

    # Print the scaling table (the equivalent of the paper's single number).
    measurements = measure_analysis_runtime(SIZES, n_inputs=3, repeats=1, rng=11)
    print()
    print("Section IV — analysis runtime vs. trace size (3-input circuit)")
    for measurement in measurements:
        print("  " + measurement.summary())

    # The benchmarked 10^6-sample analysis recovers the right logic...
    assert result.truth_table.to_hex() == "0x1C"
    # ...and every measured size stays within the paper's 8.4 s budget.
    assert all(m.seconds < 8.4 for m in measurements)
    # Throughput sanity: at least 100k samples/s on the largest trace.
    assert measurements[-1].samples_per_second > 100_000


def test_runtime_insensitive_to_input_count(benchmark):
    """Adding inputs multiplies the combinations, not the per-sample cost."""
    sizes = [200_000]
    two_inputs = measure_analysis_runtime(sizes, n_inputs=2, repeats=1, rng=3)[0]
    four_inputs = measure_analysis_runtime(sizes, n_inputs=4, repeats=1, rng=3)[0]
    benchmark(lambda: measure_analysis_runtime([50_000], n_inputs=3, repeats=1, rng=5))
    assert four_inputs.seconds < 10.0 * max(two_inputs.seconds, 1e-3)
