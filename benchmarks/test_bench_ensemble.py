"""Experiment E7 — ensemble-engine throughput (runs/sec, serial vs parallel).

The paper's headline quantitative claim is throughput: the virtual laboratory
analyzes a complex circuit "in about 8.4 seconds" where a wet-lab measurement
takes hours, and every statistically honest study in this reproduction
multiplies that by tens of independent stochastic runs.  This benchmark
measures how fast the ensemble engine executes a replicate batch of the
AND-gate circuit, serially and with ``jobs=4`` worker processes, and records
runs/sec in the same pytest-benchmark JSON format as the other benchmarks
(``--benchmark-json``; the throughput numbers land in ``extra_info``).

On a single-core host the process pool cannot beat the serial executor, so
the speedup assertion is gated on the visible CPU count; the bit-identical
results contract is asserted unconditionally.
"""

import asyncio
import os
import time
import tracemalloc

import numpy as np
import pytest

from conftest import HOLD_TIME, check_wallclock
from repro.analysis import run_replicate_study
from repro.engine import (
    ProcessPoolEnsembleExecutor,
    gather_studies,
    iter_ensemble,
    replicate_jobs,
    run_ensemble,
)
from repro.gates import and_gate_circuit, not_gate_circuit
from repro.vlab import LogicExperiment

N_REPLICATES = 6
BASE_SEED = 20170654

#: Replicate count for the peak-memory comparison: large enough that a
#: materialized ensemble clearly scales with n_runs while the streamed path
#: stays flat at the executor's in-flight window.
N_MEMORY_REPLICATES = 200


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def template_job():
    circuit = and_gate_circuit()
    experiment = LogicExperiment.for_circuit(circuit, simulator="ssa")
    return experiment.job(hold_time=HOLD_TIME / 2.0, repeats=1)


def _run_batch(template, workers):
    return run_ensemble(
        replicate_jobs(template, N_REPLICATES, seed=BASE_SEED),
        workers=workers,
    )


def test_ensemble_throughput_serial(benchmark, template_job):
    result = benchmark.pedantic(
        _run_batch,
        args=(template_job, 1),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["executor"] = result.stats.executor
    benchmark.extra_info["workers"] = 1
    benchmark.extra_info["n_replicates"] = N_REPLICATES
    benchmark.extra_info["runs_per_second"] = result.stats.runs_per_second
    benchmark.extra_info["cache_misses"] = result.stats.cache_misses
    assert len(result) == N_REPLICATES
    # The whole batch compiles the model at most once (zero times when an
    # earlier benchmark already warmed the shared cache).
    assert result.stats.cache_misses <= 1


def test_ensemble_throughput_jobs4(benchmark, template_job):
    result = benchmark.pedantic(
        _run_batch,
        args=(template_job, 4),
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info["executor"] = result.stats.executor
    benchmark.extra_info["workers"] = 4
    benchmark.extra_info["n_replicates"] = N_REPLICATES
    benchmark.extra_info["runs_per_second"] = result.stats.runs_per_second
    benchmark.extra_info["cpus"] = _cpus()
    assert len(result) == N_REPLICATES
    assert result.stats.executor == "process-pool"


def test_parallel_matches_serial_and_scales(template_job):
    """Bit-identical results; measurably faster with jobs=4 given >1 CPU."""
    started = time.perf_counter()
    serial = _run_batch(template_job, 1)
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    parallel = _run_batch(template_job, 4)
    parallel_wall = time.perf_counter() - started

    for (_, a), (_, b) in zip(serial, parallel):
        assert np.array_equal(a.data, b.data)

    print(
        f"\nensemble of {N_REPLICATES} AND-gate runs: serial {serial_wall:.2f} s "
        f"({serial.stats.runs_per_second:.2f} runs/s), jobs=4 {parallel_wall:.2f} s "
        f"({parallel.stats.runs_per_second:.2f} runs/s) on {_cpus()} CPU(s)",
    )
    if _cpus() > 1:
        # With real cores available the pool must deliver a measurable win.
        check_wallclock(
            parallel_wall < serial_wall * 0.9,
            f"jobs=4 ({parallel_wall:.2f} s) did not beat serial "
            f"({serial_wall:.2f} s) by 10% on {_cpus()} CPU(s)",
        )


@pytest.fixture(scope="module")
def memory_template_job():
    """A deterministic ODE job on the NOT gate, densely sampled.

    Deterministic + cheap, so the memory comparison is not drowned in SSA
    wall time; dense sampling keeps each trajectory big enough that holding
    all of them clearly dominates the materialized ensemble's footprint.
    """
    circuit = not_gate_circuit()
    experiment = LogicExperiment.for_circuit(circuit, simulator="ode", sample_interval=0.25)
    return experiment.job(hold_time=30.0, repeats=1)


def test_streaming_bounds_peak_trajectory_memory(benchmark, memory_template_job):
    """Streamed replicate studies hold O(window) trajectories, not O(n_runs).

    Runs the same 200-replicate study twice — materialized via run_ensemble
    and streamed via iter_ensemble with analyze-and-discard — and compares
    tracemalloc peaks.  The streamed peak is bounded by the executor's
    in-flight window (one trajectory for the serial executor), so it must sit
    far below the materialized peak, which grows with the replicate count.
    """

    def _measure():
        jobs = replicate_jobs(memory_template_job, N_MEMORY_REPLICATES, seed=BASE_SEED)
        tracemalloc.start()
        result = run_ensemble(jobs, workers=1)
        _, materialized_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        checksum_materialized = sum(float(t.data.sum()) for t in result.trajectories)
        del result

        jobs = replicate_jobs(memory_template_job, N_MEMORY_REPLICATES, seed=BASE_SEED)
        tracemalloc.start()
        checksum_streamed = 0.0
        for _, _, trajectory in iter_ensemble(jobs, workers=1):
            checksum_streamed += float(trajectory.data.sum())
        _, streamed_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return materialized_peak, streamed_peak, checksum_materialized, checksum_streamed

    materialized_peak, streamed_peak, check_mat, check_str = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    benchmark.extra_info["n_replicates"] = N_MEMORY_REPLICATES
    benchmark.extra_info["materialized_peak_bytes"] = materialized_peak
    benchmark.extra_info["streamed_peak_bytes"] = streamed_peak
    benchmark.extra_info["peak_ratio"] = streamed_peak / materialized_peak

    print(
        f"\npeak trajectory memory over {N_MEMORY_REPLICATES} replicates: "
        f"materialized {materialized_peak / 1e6:.2f} MB, "
        f"streamed {streamed_peak / 1e6:.2f} MB "
        f"({materialized_peak / streamed_peak:.1f}x reduction)"
    )
    # Identical trajectories were delivered either way...
    assert check_str == check_mat
    # ...but the streamed pass never held more than a bounded window of them.
    assert streamed_peak < materialized_peak * 0.25


#: Concurrent-studies comparison: how many replicate studies, of how many
#: replicates each, share the pool.  Small per-study batches under-utilize a
#: pool when run one study at a time — which is exactly what gather_studies
#: fixes by multiplexing.
N_STUDIES = 3
N_STUDY_REPLICATES = 2
GATHER_WORKERS = 4


def test_gather_studies_vs_sequential_on_one_pool(benchmark):
    """Wall-clock of N independent replicate studies on ONE warm pool:
    sequential (each study's small batch leaves workers idle) vs
    gather_studies (studies interleave and fill the pool).  Both walls and
    their ratio land in ``extra_info``; correctness (bit-identical per-study
    results and warm caches for every study after the first) is asserted
    unconditionally, the speedup only when real cores are available.
    """
    circuit = and_gate_circuit()

    def _study(seed):
        def _run(executor):
            return run_replicate_study(
                circuit,
                n_replicates=N_STUDY_REPLICATES,
                hold_time=HOLD_TIME / 2.0,
                rng=BASE_SEED + seed,
                executor=executor,
            )

        return _run

    def _measure():
        with ProcessPoolEnsembleExecutor(GATHER_WORKERS) as executor:
            # Warm every worker's compiled-model cache out of the comparison.
            run_ensemble(
                replicate_jobs(
                    _template_for(circuit), 2 * GATHER_WORKERS, seed=BASE_SEED
                ),
                executor=executor,
            )

            started = time.perf_counter()
            sequential = [_study(seed)(executor) for seed in range(N_STUDIES)]
            sequential_wall = time.perf_counter() - started

            started = time.perf_counter()
            gathered = asyncio.run(
                gather_studies([_study(seed) for seed in range(N_STUDIES)], executor=executor)
            )
            gather_wall = time.perf_counter() - started
        return sequential, gathered, sequential_wall, gather_wall

    sequential, gathered, sequential_wall, gather_wall = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    benchmark.extra_info["n_studies"] = N_STUDIES
    benchmark.extra_info["replicates_per_study"] = N_STUDY_REPLICATES
    benchmark.extra_info["workers"] = GATHER_WORKERS
    benchmark.extra_info["sequential_wall_seconds"] = sequential_wall
    benchmark.extra_info["gather_wall_seconds"] = gather_wall
    benchmark.extra_info["gather_speedup"] = sequential_wall / gather_wall
    benchmark.extra_info["cpus"] = _cpus()

    print(
        f"\n{N_STUDIES} studies x {N_STUDY_REPLICATES} replicates on one "
        f"{GATHER_WORKERS}-worker pool: sequential {sequential_wall:.2f} s, "
        f"gathered {gather_wall:.2f} s "
        f"({sequential_wall / gather_wall:.2f}x) on {_cpus()} CPU(s)",
    )
    # Same seeds, same pool: per-study results are bit-identical either way,
    # and the pre-warmed pool means every study ran on warm worker caches.
    for sequential_study, gathered_study in zip(sequential, gathered):
        assert gathered_study.fitness_values == sequential_study.fitness_values
        assert gathered_study.stats.cache_misses == 0
    if _cpus() >= 2 * GATHER_WORKERS:
        # Plenty of real cores: multiplexed studies must beat one-at-a-time.
        check_wallclock(
            gather_wall < sequential_wall,
            f"gathered studies ({gather_wall:.2f} s) did not beat sequential "
            f"({sequential_wall:.2f} s) on {_cpus()} CPU(s)",
        )


def _template_for(circuit):
    experiment = LogicExperiment.for_circuit(circuit, simulator="ssa")
    return experiment.job(hold_time=HOLD_TIME / 2.0, repeats=1)
