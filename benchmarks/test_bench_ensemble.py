"""Experiment E7 — ensemble-engine throughput (runs/sec, serial vs parallel).

The paper's headline quantitative claim is throughput: the virtual laboratory
analyzes a complex circuit "in about 8.4 seconds" where a wet-lab measurement
takes hours, and every statistically honest study in this reproduction
multiplies that by tens of independent stochastic runs.  This benchmark
measures how fast the ensemble engine executes a replicate batch of the
AND-gate circuit, serially and with ``jobs=4`` worker processes, and records
runs/sec in the same pytest-benchmark JSON format as the other benchmarks
(``--benchmark-json``; the throughput numbers land in ``extra_info``).

On a single-core host the process pool cannot beat the serial executor, so
the speedup assertion is gated on the visible CPU count; the bit-identical
results contract is asserted unconditionally.
"""

import os
import time

import numpy as np
import pytest

from conftest import HOLD_TIME
from repro.engine import replicate_jobs, run_ensemble
from repro.gates import and_gate_circuit
from repro.vlab import LogicExperiment

N_REPLICATES = 6
BASE_SEED = 20170654


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def template_job():
    circuit = and_gate_circuit()
    experiment = LogicExperiment.for_circuit(circuit, simulator="ssa")
    return experiment.job(hold_time=HOLD_TIME / 2.0, repeats=1)


def _run_batch(template, workers):
    return run_ensemble(
        replicate_jobs(template, N_REPLICATES, seed=BASE_SEED), workers=workers
    )


def test_ensemble_throughput_serial(benchmark, template_job):
    result = benchmark.pedantic(
        _run_batch, args=(template_job, 1), rounds=2, iterations=1
    )
    benchmark.extra_info["executor"] = result.stats.executor
    benchmark.extra_info["workers"] = 1
    benchmark.extra_info["n_replicates"] = N_REPLICATES
    benchmark.extra_info["runs_per_second"] = result.stats.runs_per_second
    benchmark.extra_info["cache_misses"] = result.stats.cache_misses
    assert len(result) == N_REPLICATES
    # The whole batch compiles the model at most once (zero times when an
    # earlier benchmark already warmed the shared cache).
    assert result.stats.cache_misses <= 1


def test_ensemble_throughput_jobs4(benchmark, template_job):
    result = benchmark.pedantic(
        _run_batch, args=(template_job, 4), rounds=2, iterations=1
    )
    benchmark.extra_info["executor"] = result.stats.executor
    benchmark.extra_info["workers"] = 4
    benchmark.extra_info["n_replicates"] = N_REPLICATES
    benchmark.extra_info["runs_per_second"] = result.stats.runs_per_second
    benchmark.extra_info["cpus"] = _cpus()
    assert len(result) == N_REPLICATES
    assert result.stats.executor == "process-pool"


def test_parallel_matches_serial_and_scales(template_job):
    """Bit-identical results; measurably faster with jobs=4 given >1 CPU."""
    started = time.perf_counter()
    serial = _run_batch(template_job, 1)
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    parallel = _run_batch(template_job, 4)
    parallel_wall = time.perf_counter() - started

    for (_, a), (_, b) in zip(serial, parallel):
        assert np.array_equal(a.data, b.data)

    print(
        f"\nensemble of {N_REPLICATES} AND-gate runs: serial {serial_wall:.2f} s "
        f"({serial.stats.runs_per_second:.2f} runs/s), jobs=4 {parallel_wall:.2f} s "
        f"({parallel.stats.runs_per_second:.2f} runs/s) on {_cpus()} CPU(s)"
    )
    if _cpus() > 1:
        # With real cores available the pool must deliver a measurable win.
        assert parallel_wall < serial_wall * 0.9
