"""Experiment E1 — Figure 2: logic analysis of the 2-input genetic AND gate.

Regenerates the per-combination analytics table of Figure 2(b) (``Case_I``,
``High_O``, ``Var_O``), the recovered Boolean expression (``GFP = LacI·TetR``)
and the percentage fitness, and checks the paper's central qualitative claim:
with both filters the circuit is identified as AND, whereas unfiltered data
would suggest XNOR because of the decaying initial transient at combination
``00``.
"""

import pytest

from conftest import PAPER_THRESHOLD, paper_analyzer
from repro.core import FilterConfig, LogicAnalyzer, format_analysis_report
from repro.gates import and_gate_circuit
from repro.vlab import LogicExperiment


@pytest.fixture(scope="module")
def circuit():
    return and_gate_circuit()


@pytest.fixture(scope="module")
def datalog(circuit):
    """The Figure-2 trace: the output starts high (as in the paper's plot) so
    combination 00 shows the decaying transient that must be filtered out."""
    model = circuit.model.copy()
    model.set_initial_amount(circuit.output, 60.0)
    experiment = LogicExperiment(
        model=model,
        input_species=list(circuit.inputs),
        output_species=circuit.output,
        circuit_name=circuit.name,
    )
    return experiment.run(hold_time=250.0, repeats=2, rng=654)


def test_fig2_and_gate_analysis(benchmark, datalog, circuit):
    analyzer = paper_analyzer()
    result = benchmark(analyzer.analyze, datalog)
    result.verify(circuit.expected_table)

    print()
    print(format_analysis_report(result, title="Figure 2 — 2-input genetic AND gate"))

    # The recovered logic is AND (0x08), not XNOR (0x09).
    assert result.truth_table.to_hex() == "0x08"
    assert result.gate_name == "AND"
    assert result.comparison.matches

    # Combination 00 saw the decaying high transient yet was filtered out.
    combination_00 = result.combination("00")
    assert combination_00.high_count > 0
    assert not combination_00.is_high

    # Combination 11 is a stable high: the overwhelming majority of its
    # samples are logic-1 and its fraction of variation is far below FOV_UD.
    combination_11 = result.combination("11")
    assert combination_11.high_count > combination_11.case_count / 2
    assert combination_11.fov_est < 0.25

    # Fitness close to 100 % (the paper's circuits score in the high 90s).
    assert result.fitness > 95.0


def test_fig2_without_filters_suggests_xnor(benchmark, datalog):
    """The failure mode the filters exist to prevent."""
    unfiltered_analyzer = LogicAnalyzer(
        threshold=PAPER_THRESHOLD,
        filter_config=FilterConfig(use_fov_filter=False, use_majority_filter=False),
    )
    lenient = benchmark(unfiltered_analyzer.analyze, datalog)
    strict = paper_analyzer().analyze(datalog)
    assert strict.truth_table.to_hex() == "0x08"
    assert lenient.truth_table.output_for("00") == 1
    assert lenient.truth_table.output_for("11") == 1
    print(
        "\nWithout the filters the recovered table is "
        f"{lenient.truth_table.to_hex()} ({lenient.gate_name or 'unnamed'}), "
        "i.e. the XNOR-style misreading the paper warns about.",
    )
