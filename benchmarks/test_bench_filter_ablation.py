"""Experiment E6 — Section II ablation: both filters are needed.

The paper devotes Figure 3 and most of Section II to the argument that the
two data filters must be applied *together*:

* with only the fraction-of-variation filter, a combination whose output is a
  long decaying transient (many 1s, few transitions) is wrongly accepted —
  the AND gate of Figure 2 would be read as XNOR;
* with only the majority filter, a combination whose output oscillates around
  the threshold (roughly half 1s, many transitions) can be wrongly accepted.

This benchmark runs the same logged experiment through four analyzer
configurations (both filters, each alone, none) and checks that only the
paper's configuration recovers the correct expression in both scenarios.
"""

import numpy as np
import pytest

from conftest import PAPER_THRESHOLD
from repro.core import FilterConfig, LogicAnalyzer
from repro.gates import and_gate_circuit
from repro.vlab import LogicExperiment


CONFIGURATIONS = {
    "both": FilterConfig(),
    "fov-only": FilterConfig(use_majority_filter=False),
    "majority-only": FilterConfig(use_fov_filter=False),
    "none": FilterConfig(use_fov_filter=False, use_majority_filter=False),
}


@pytest.fixture(scope="module")
def transient_log():
    """An AND-gate run whose output starts high: combination 00 sees a long
    decaying transient (the Figure-2 scenario)."""
    circuit = and_gate_circuit()
    model = circuit.model.copy()
    model.set_initial_amount(circuit.output, 80.0)
    experiment = LogicExperiment(
        model=model,
        input_species=list(circuit.inputs),
        output_species=circuit.output,
        circuit_name="and_gate_transient",
    )
    return experiment.run(hold_time=60.0, repeats=1, rng=4321)


@pytest.fixture(scope="module")
def oscillatory_arrays():
    """The Figure-3 scenario as raw arrays: combination 11 is a stable high,
    combination 00 has the same number of 1s but alternates constantly."""
    block = 400
    rng = np.random.default_rng(0)
    indices = np.repeat(np.arange(4), block)
    bits = ((indices[:, None] >> np.arange(1, -1, -1)) & 1) * 40.0
    output = np.full(indices.shape, 2.0)
    output[indices == 3] = 40.0                       # stable high at 11
    oscillating = np.where(np.arange(block) % 2 == 0, 40.0, 2.0)
    output[indices == 0] = oscillating                # chattering at 00
    output = np.clip(output + rng.normal(0, 1.0, output.shape), 0, None)
    return bits, output, ["LacI", "TetR"]


def _analyze(config, log):
    analyzer = LogicAnalyzer(threshold=PAPER_THRESHOLD, filter_config=config)
    return analyzer.analyze(log)


def test_ablation_decaying_transient(benchmark, transient_log):
    """Only configurations that include the majority filter reject the
    decaying transient at combination 00."""
    results = {name: _analyze(config, transient_log) for name, config in CONFIGURATIONS.items()}
    benchmark(_analyze, CONFIGURATIONS["both"], transient_log)

    print()
    print("Filter ablation — decaying-transient scenario (Figure 2)")
    for name, result in results.items():
        print(
            f"  {name:>14}: recovered {result.truth_table.to_hex()} "
            f"({result.gate_name or 'unnamed'})"
        )

    assert results["both"].truth_table.to_hex() == "0x08"
    assert results["majority-only"].truth_table.to_hex() == "0x08"
    # Without the majority filter the transient at 00 is accepted.
    assert results["fov-only"].truth_table.output_for("00") == 1
    assert results["none"].truth_table.output_for("00") == 1


def test_ablation_oscillatory_state(benchmark, oscillatory_arrays):
    """Only configurations that include the FOV filter reject the chattering
    combination (Figure 3)."""
    inputs, output, names = oscillatory_arrays

    def run(config):
        analyzer = LogicAnalyzer(threshold=PAPER_THRESHOLD, filter_config=config)
        return analyzer.analyze_arrays(inputs, output, names, inputs_are_digital=False)

    results = {name: run(config) for name, config in CONFIGURATIONS.items()}
    benchmark(run, CONFIGURATIONS["both"])

    print()
    print("Filter ablation — oscillatory-output scenario (Figure 3)")
    for name, result in results.items():
        print(
            f"  {name:>14}: recovered {result.truth_table.to_hex()} "
            f"({result.gate_name or 'unnamed'})"
        )

    assert results["both"].truth_table.to_hex() == "0x08"
    assert results["fov-only"].truth_table.output_for("00") == 0
    # Without the FOV filter the oscillatory state sneaks in (about half of
    # its samples are high, so the strict majority test may or may not fire —
    # the paper's point is that FOV is the reliable discriminator here).
    assert results["none"].truth_table.output_for("00") in (0, 1)
    assert results["both"].gate_name == "AND"


def test_ablation_strictness_of_majority(benchmark, oscillatory_arrays):
    """The `>` vs `>=` choice in equation (2) only matters for exactly-half
    streams; on realistic data both settings give the same verdict."""
    inputs, output, names = oscillatory_arrays
    strict = LogicAnalyzer(
        threshold=PAPER_THRESHOLD,
        filter_config=FilterConfig(majority_strict=True),
    )
    lenient = LogicAnalyzer(
        threshold=PAPER_THRESHOLD,
        filter_config=FilterConfig(majority_strict=False),
    )
    strict_result = benchmark(strict.analyze_arrays, inputs, output, names)
    lenient_result = lenient.analyze_arrays(inputs, output, names)
    assert strict_result.truth_table.outputs == lenient_result.truth_table.outputs
