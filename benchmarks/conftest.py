"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures:

=====================  =========================================================
Benchmark module        Paper element
=====================  =========================================================
test_bench_fig2_*       Figure 2 — logic analysis of the 2-input genetic AND gate
test_bench_fig4_*       Figure 4 — analytics + expressions of 0x0B, 0x04, 0x1C
test_bench_fig5_*       Figure 5 — threshold sensitivity of circuit 0x0B
test_bench_suite15      Section III — the full 15-circuit verification table
test_bench_runtime      Section IV — analysis runtime (the 8.4 s claim)
test_bench_filter_*     Section II — ablation of the two data filters
=====================  =========================================================

The SSA simulations that *produce* the traces are run once per module in
fixtures; the ``benchmark`` fixture then times the paper's actual
contribution — the logic-analysis algorithm — on those traces.  Holding times
are scaled with the gate kinetics as documented in EXPERIMENTS.md (the ratio
hold-time / propagation-delay matches the paper's 1000 / ~300).
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

try:  # pragma: no cover
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import LogicAnalyzer  # noqa: E402
from repro.vlab import LogicExperiment  # noqa: E402

#: The paper's analysis settings.
PAPER_THRESHOLD = 15.0
PAPER_FOV_UD = 0.25

#: Scaled experiment settings (see EXPERIMENTS.md for the scaling argument).
HOLD_TIME = 200.0
REPEATS = 1
BASE_SEED = 20170654


def run_circuit_experiment(circuit, seed_offset=0, hold_time=HOLD_TIME, repeats=REPEATS,
                           simulator="ssa"):
    """Run the standard virtual-laboratory experiment for one circuit."""
    experiment = LogicExperiment.for_circuit(circuit, simulator=simulator)
    return experiment.run(hold_time=hold_time, repeats=repeats, rng=BASE_SEED + seed_offset)


def paper_analyzer() -> LogicAnalyzer:
    """The analyzer configured exactly as in the paper's experiments."""
    return LogicAnalyzer(threshold=PAPER_THRESHOLD, fov_ud=PAPER_FOV_UD)


@pytest.fixture(scope="session")
def analyzer():
    return paper_analyzer()


def check_wallclock(condition: bool, message: str) -> None:
    """Hard-assert a wall-clock ratio locally; warn when ``REPRO_BENCH_SOFT=1``.

    Shared CI runners make timing ratios flaky, so the bench-smoke job sets
    the soft flag: the measured numbers still land in ``extra_info`` (and
    the printed summaries), only the pass/fail gate is relaxed.
    """
    import warnings

    if condition:
        return
    if os.environ.get("REPRO_BENCH_SOFT") == "1":
        warnings.warn(message, stacklevel=2)
        return
    pytest.fail(message)
