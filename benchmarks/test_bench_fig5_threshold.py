"""Experiment E3 — Figure 5: threshold sensitivity of circuit 0x0B.

The paper re-runs circuit ``0x0B`` with the input/threshold level set to a
very low (3 molecules) and a very high (40 molecules) value and observes that
the recovered logic is no longer the intended one: weak inputs cannot trigger
the circuit, and with a high threshold the input and output levels are no
longer distinguishable, so the output "oscillates between logic-high and low
for a large number of times" and wrong states appear.

This benchmark sweeps the same three operating points (3, 15, 40 molecules)
and checks the qualitative findings; the exact alternative Boolean expression
at the extremes depends on the (unpublished) internal kinetics of the
authors' model and is not asserted — see EXPERIMENTS.md.
"""

import pytest

from conftest import BASE_SEED, PAPER_FOV_UD
from repro.analysis import threshold_sweep
from repro.gates import cello_circuit

SWEEP_THRESHOLDS = [3.0, 15.0, 40.0]


@pytest.fixture(scope="module")
def sweep_entries():
    circuit = cello_circuit("0x0B")
    return {
        entry.threshold: entry
        for entry in threshold_sweep(
            circuit,
            thresholds=SWEEP_THRESHOLDS,
            hold_time=200.0,
            rng=BASE_SEED + 50,
            fov_ud=PAPER_FOV_UD,
        )
    }


def test_fig5_threshold_sweep(benchmark, sweep_entries):
    nominal = sweep_entries[15.0]
    low = sweep_entries[3.0]
    high = sweep_entries[40.0]

    # Re-run the (cheap) analysis of the nominal entry as the benchmarked body.
    from conftest import paper_analyzer

    benchmark(paper_analyzer().analyze, _relog(nominal))

    print()
    print("Figure 5 — circuit 0x0B at different threshold / input levels")
    for threshold in SWEEP_THRESHOLDS:
        print(f"  {sweep_entries[threshold].summary()}")

    # Nominal threshold (15 molecules): the intended 0x0B logic is recovered.
    assert nominal.matches
    assert nominal.result.truth_table.to_hex() == "0x0B"

    # Very low threshold (3 molecules): the inputs are too weak to trigger the
    # circuit, so the recovered behaviour differs from the intended one.
    assert not low.matches
    assert low.n_wrong_states >= 1

    # Very high threshold (40 molecules): wrong states appear and the output
    # oscillates across the threshold far more often than at the nominal
    # operating point.
    assert not high.matches
    assert high.n_wrong_states >= 1
    assert high.total_variation > 3 * nominal.total_variation


def _relog(entry):
    """Rebuild a small data log equivalent for benchmarking the analysis step."""
    # The sweep does not retain the raw log; re-running the analysis on the
    # recovered truth table would be meaningless, so instead benchmark the
    # analyzer on a freshly simulated nominal-threshold experiment.
    from conftest import run_circuit_experiment
    from repro.gates import cello_circuit

    circuit = cello_circuit("0x0B")
    return run_circuit_experiment(circuit, seed_offset=77, hold_time=150.0)


def test_fig5_high_threshold_oscillation(benchmark, sweep_entries):
    """At the 40-molecule operating point the output crosses the threshold far
    more often (the paper: "the output response also seems to oscillate
    between logic-high and low for a large number of times")."""
    nominal = sweep_entries[15.0]
    high = sweep_entries[40.0]
    total_variation = benchmark(
        lambda: sum(c.variation_count for c in high.result.combinations),
    )
    nominal_variation = sum(c.variation_count for c in nominal.result.combinations)
    assert total_variation > nominal_variation
    assert high.n_wrong_states >= nominal.n_wrong_states
    # The paper reports two wrong states for its 0x0B model at 40 molecules;
    # our regenerated model must show at least one (the exact count depends on
    # the unpublished internal kinetics).
    assert high.n_wrong_states >= 1
