"""Experiment E9 — distributed backend overhead (process pool vs TCP loopback).

The socket-based :class:`DistributedEnsembleExecutor` exists for cross-machine
sharding, where its per-job cost is network latency.  On one machine we can
measure exactly what the transport itself costs relative to the process pool:
both backends run the same seeded SSA replicate batch (bit-identical results
by the engine contract) with two workers, and the benchmark records

* events/sec through each backend (``extra_info["events_per_second_*"]``),
* the per-job dispatch overhead, measured on near-empty jobs where transport
  cost dominates (``extra_info["dispatch_overhead_*_ms"]``).

The loopback fabric spawns real ``genlogic worker`` subprocesses and ships
every payload through the length-prefixed pickle protocol — only the wire is
local.  Wall-clock gates are soft under ``REPRO_BENCH_SOFT=1`` (shared
runners); the measured numbers always land in the JSON artifact.
"""

import time

from conftest import HOLD_TIME, check_wallclock
from repro.engine import (
    DistributedEnsembleExecutor,
    ProcessPoolEnsembleExecutor,
    SimulationJob,
    replicate_jobs,
    run_ensemble,
)
from repro.gates import and_gate_circuit
from repro.vlab import LogicExperiment

N_REPLICATES = 8
N_DISPATCH_JOBS = 24
N_WORKERS = 2
BASE_SEED = 20170654


def _template_job():
    circuit = and_gate_circuit()
    experiment = LogicExperiment.for_circuit(circuit, simulator="ssa")
    return experiment.job(hold_time=HOLD_TIME / 2.0, repeats=1)


def _events_per_second(template, executor):
    result = run_ensemble(
        replicate_jobs(template, N_REPLICATES, seed=BASE_SEED),
        executor=executor,
    )
    events = sum(
        trajectory.data.shape[0] * trajectory.data.shape[1] for trajectory in result.trajectories
    )
    return events / result.stats.wall_seconds, result


def _dispatch_overhead_ms(template, executor):
    """Mean per-job wall time on near-empty jobs: transport cost dominates.

    The model is already warm in every worker (the throughput pass ran
    first), and a t_end this short makes the simulation itself microseconds,
    so what remains is serialization + queueing + the result trip home.
    """
    tiny = replicate_jobs(
        SimulationJob(
            model=template.model,
            t_end=1.0,
            simulator="ode",
            sample_interval=1.0,
        ),
        N_DISPATCH_JOBS,
        seed=BASE_SEED + 1,
    )
    started = time.perf_counter()
    run_ensemble(tiny, executor=executor)
    wall = time.perf_counter() - started
    return wall / N_DISPATCH_JOBS * 1000.0


def test_distributed_loopback_vs_process_pool(benchmark):
    template = _template_job()

    with ProcessPoolEnsembleExecutor(N_WORKERS) as pool:
        # Warm the pool workers' caches so both backends are measured warm.
        run_ensemble(replicate_jobs(template, N_WORKERS, seed=BASE_SEED), executor=pool)
        pool_eps, pool_result = benchmark.pedantic(
            _events_per_second,
            args=(template, pool),
            rounds=2,
            iterations=1,
        )
        pool_dispatch_ms = _dispatch_overhead_ms(template, pool)

    with DistributedEnsembleExecutor.loopback(N_WORKERS) as fabric:
        run_ensemble(replicate_jobs(template, N_WORKERS, seed=BASE_SEED), executor=fabric)
        fabric_eps, fabric_result = _events_per_second(template, fabric)
        fabric_dispatch_ms = _dispatch_overhead_ms(template, fabric)

    # The engine contract: both backends produced bit-identical batches.
    assert pool_result.stats.n_jobs == fabric_result.stats.n_jobs == N_REPLICATES
    for index in range(N_REPLICATES):
        assert (
            pool_result.trajectory(index).data.tobytes()
            == fabric_result.trajectory(index).data.tobytes()
        )

    benchmark.extra_info["workers"] = N_WORKERS
    benchmark.extra_info["n_replicates"] = N_REPLICATES
    benchmark.extra_info["events_per_second_pool"] = pool_eps
    benchmark.extra_info["events_per_second_distributed"] = fabric_eps
    benchmark.extra_info["dispatch_overhead_pool_ms"] = pool_dispatch_ms
    benchmark.extra_info["dispatch_overhead_distributed_ms"] = fabric_dispatch_ms
    benchmark.extra_info["distributed_vs_pool_throughput"] = fabric_eps / pool_eps

    # Loopback TCP should stay within a small factor of the pool on real
    # batches (dispatch overhead is per-job milliseconds, simulations are
    # tens of milliseconds); a collapse here means the transport regressed.
    check_wallclock(
        fabric_eps >= 0.3 * pool_eps,
        f"distributed loopback throughput collapsed: {fabric_eps:.0f} events/s "
        f"vs pool {pool_eps:.0f} events/s",
    )
    check_wallclock(
        fabric_dispatch_ms <= 50.0,
        f"distributed per-job dispatch overhead is {fabric_dispatch_ms:.1f} ms",
    )
