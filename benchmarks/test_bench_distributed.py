"""Experiment E9 — distributed backend overhead (process pool vs TCP loopback).

The socket-based :class:`DistributedEnsembleExecutor` exists for cross-machine
sharding, where its per-job cost is network latency.  On one machine we can
measure exactly what the transport itself costs relative to the process pool:
both backends run the same seeded SSA replicate batch (bit-identical results
by the engine contract) with two workers, and the benchmark records

* events/sec through each backend (``extra_info["events_per_second_*"]``),
* the per-job dispatch overhead, measured on near-empty jobs where transport
  cost dominates (``extra_info["dispatch_overhead_*_ms"]``).

A second experiment measures what PR 6's lockstep batching buys on the same
loopback fabric: per-replicate dispatch overhead at ``batch_size`` 1, 8 and
32 (``extra_info["dispatch_overhead_batch{B}_ms"]``), plus the
bytes-on-the-wire cost of one batch's results as per-replicate pickles vs
one compact binary frame (``extra_info["result_bytes_*"]``).

The loopback fabric spawns real ``genlogic worker`` subprocesses and ships
every payload through the length-prefixed pickle protocol — only the wire is
local.  Wall-clock gates are soft under ``REPRO_BENCH_SOFT=1`` (shared
runners); the measured numbers always land in the JSON artifact.
"""

import pickle
import time

from conftest import HOLD_TIME, check_wallclock
from repro.engine import (
    DistributedEnsembleExecutor,
    ProcessPoolEnsembleExecutor,
    SimulationJob,
    replicate_jobs,
    run_ensemble,
)
from repro.gates import and_gate_circuit
from repro.sbml import Model
from repro.stochastic import encode_trajectories, fan_out_seeds, simulate_ssa_batch
from repro.vlab import LogicExperiment

N_REPLICATES = 8
N_DISPATCH_JOBS = 24
N_WORKERS = 2
BASE_SEED = 20170654

#: Lockstep-batching experiment: replicates per dispatch, and how many tiny
#: jobs to push through each configuration (divisible by every batch size).
BATCH_SIZES = (1, 8, 32)
N_BATCH_JOBS = 64


def _template_job():
    circuit = and_gate_circuit()
    experiment = LogicExperiment.for_circuit(circuit, simulator="ssa")
    return experiment.job(hold_time=HOLD_TIME / 2.0, repeats=1)


def _events_per_second(template, executor):
    result = run_ensemble(
        replicate_jobs(template, N_REPLICATES, seed=BASE_SEED),
        executor=executor,
    )
    events = sum(
        trajectory.data.shape[0] * trajectory.data.shape[1] for trajectory in result.trajectories
    )
    return events / result.stats.wall_seconds, result


def _dispatch_overhead_ms(template, executor):
    """Mean per-job wall time on near-empty jobs: transport cost dominates.

    The model is already warm in every worker (the throughput pass ran
    first), and a t_end this short makes the simulation itself microseconds,
    so what remains is serialization + queueing + the result trip home.
    """
    tiny = replicate_jobs(
        SimulationJob(
            model=template.model,
            t_end=1.0,
            simulator="ode",
            sample_interval=1.0,
        ),
        N_DISPATCH_JOBS,
        seed=BASE_SEED + 1,
    )
    started = time.perf_counter()
    run_ensemble(tiny, executor=executor)
    wall = time.perf_counter() - started
    return wall / N_DISPATCH_JOBS * 1000.0


def test_distributed_loopback_vs_process_pool(benchmark):
    template = _template_job()

    with ProcessPoolEnsembleExecutor(N_WORKERS) as pool:
        # Warm the pool workers' caches so both backends are measured warm.
        run_ensemble(replicate_jobs(template, N_WORKERS, seed=BASE_SEED), executor=pool)
        pool_eps, pool_result = benchmark.pedantic(
            _events_per_second,
            args=(template, pool),
            rounds=2,
            iterations=1,
        )
        pool_dispatch_ms = _dispatch_overhead_ms(template, pool)

    with DistributedEnsembleExecutor.loopback(N_WORKERS) as fabric:
        run_ensemble(replicate_jobs(template, N_WORKERS, seed=BASE_SEED), executor=fabric)
        fabric_eps, fabric_result = _events_per_second(template, fabric)
        fabric_dispatch_ms = _dispatch_overhead_ms(template, fabric)

    # The engine contract: both backends produced bit-identical batches.
    assert pool_result.stats.n_jobs == fabric_result.stats.n_jobs == N_REPLICATES
    for index in range(N_REPLICATES):
        assert (
            pool_result.trajectory(index).data.tobytes()
            == fabric_result.trajectory(index).data.tobytes()
        )

    benchmark.extra_info["workers"] = N_WORKERS
    benchmark.extra_info["n_replicates"] = N_REPLICATES
    benchmark.extra_info["events_per_second_pool"] = pool_eps
    benchmark.extra_info["events_per_second_distributed"] = fabric_eps
    benchmark.extra_info["dispatch_overhead_pool_ms"] = pool_dispatch_ms
    benchmark.extra_info["dispatch_overhead_distributed_ms"] = fabric_dispatch_ms
    benchmark.extra_info["distributed_vs_pool_throughput"] = fabric_eps / pool_eps

    # Loopback TCP should stay within a small factor of the pool on real
    # batches (dispatch overhead is per-job milliseconds, simulations are
    # tens of milliseconds); a collapse here means the transport regressed.
    check_wallclock(
        fabric_eps >= 0.3 * pool_eps,
        f"distributed loopback throughput collapsed: {fabric_eps:.0f} events/s "
        f"vs pool {pool_eps:.0f} events/s",
    )
    check_wallclock(
        fabric_dispatch_ms <= 50.0,
        f"distributed per-job dispatch overhead is {fabric_dispatch_ms:.1f} ms",
    )


def _tiny_model():
    """A two-reaction birth-death model: the cheapest SSA job that still runs.

    At ``t_end=1`` a replicate is a few dozen microseconds of stepping, so the
    measured per-replicate wall is essentially *all* dispatch + result
    transport — the quantity the batch sizes are compared on.
    """
    model = Model("bench_tiny")
    model.add_compartment("cell")
    model.add_species("Y")
    model.add_parameter("k", 5.0)
    model.add_parameter("kd", 0.1)
    model.add_reaction("prod", products=[("Y", 1.0)], kinetic_law="k")
    model.add_reaction("deg", reactants=[("Y", 1.0)], kinetic_law="kd * Y")
    return model


def _tiny_jobs(model):
    # SSA, not ODE: the batches run through the lockstep stepper, the path
    # this PR actually ships.
    return replicate_jobs(
        SimulationJob(
            model=model,
            t_end=1.0,
            simulator="ssa",
            sample_interval=1.0,
        ),
        N_BATCH_JOBS,
        seed=BASE_SEED + 2,
    )


def _per_job_wall_ms(jobs, executor, batch_size, rounds=5):
    """Best-of-``rounds`` per-job wall time (min is the noise-robust estimator)."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        run_ensemble(jobs, executor=executor, batch_size=batch_size)
        best = min(best, time.perf_counter() - started)
    return best / len(jobs) * 1000.0


def _batched_dispatch_overhead_ms(model, executor, batch_size, compute_ms):
    """Mean per-replicate *dispatch* time on near-empty jobs at one batch size.

    Same protocol as :func:`_dispatch_overhead_ms`, but with the (tiny)
    compute floor subtracted out: ``compute_ms`` is the in-process serial
    per-job time at this batch size (the identical stepper path, inline
    results, zero transport), and the fabric shards jobs over ``N_WORKERS``,
    so the ideal transport-free wall share per job is
    ``compute_ms / N_WORKERS``.  What remains above that is serialization +
    queueing + the result trip home — the share a lockstep batch of B
    replicates pays once instead of B times.
    """
    wall_ms = _per_job_wall_ms(_tiny_jobs(model), executor, batch_size)
    return max(wall_ms - compute_ms / N_WORKERS, 1e-3)


def test_batch_dispatch_amortization(benchmark):
    """Experiment E10 — lockstep batching on the loopback fabric.

    Dispatch overhead per replicate at ``batch_size`` 1, 8, 32 on real TCP
    workers, plus the result-path size comparison that motivated the binary
    transport: one 32-replicate SSA batch encoded as per-replicate pickles vs
    one compact binary frame.
    """
    template = _template_job()
    tiny_model = _tiny_model()

    # The compute floors: the same tiny jobs at each batch size, in-process,
    # no transport at all (the serial executor runs batches inline through
    # the same lockstep stepper the workers use).
    compute_ms = {
        batch_size: _per_job_wall_ms(_tiny_jobs(tiny_model), None, batch_size)
        for batch_size in BATCH_SIZES
    }

    with DistributedEnsembleExecutor.loopback(N_WORKERS) as fabric:
        # Warm both workers with the tiny model, then measure each batch size
        # on the same fabric.
        run_ensemble(
            replicate_jobs(_tiny_jobs(tiny_model)[0], N_WORKERS, seed=BASE_SEED),
            executor=fabric,
        )
        overhead_ms = {
            batch_size: _batched_dispatch_overhead_ms(
                tiny_model, fabric, batch_size, compute_ms[batch_size]
            )
            for batch_size in BATCH_SIZES[:-1]
        }
        # The timed benchmark sample is the fully batched configuration.
        overhead_ms[BATCH_SIZES[-1]] = benchmark.pedantic(
            _batched_dispatch_overhead_ms,
            args=(tiny_model, fabric, BATCH_SIZES[-1], compute_ms[BATCH_SIZES[-1]]),
            rounds=1,
            iterations=1,
        )
        # Every overhead number is already a min-estimator, but sub-0.1 ms
        # quantities stay noisy on a loaded machine; give the two sizes the
        # headline ratio gates on a few more rounds to converge to their
        # floors (min only ever moves *toward* the true cost, for both).
        for _ in range(3):
            if overhead_ms[BATCH_SIZES[-1]] * 5.0 <= overhead_ms[1]:
                break
            for batch_size in (1, BATCH_SIZES[-1]):
                overhead_ms[batch_size] = min(
                    overhead_ms[batch_size],
                    _batched_dispatch_overhead_ms(
                        tiny_model, fabric, batch_size, compute_ms[batch_size]
                    ),
                )

    # Bytes on the wire: what 32 SSA replicates' results cost as batch_size=1
    # ships them — one pickled Trajectory per result message, no cross-message
    # sharing — vs as one compact binary frame (times and species table
    # encoded once for the whole batch).
    batch = simulate_ssa_batch(
        template.model,
        template.t_end,
        fan_out_seeds(BASE_SEED + 3, BATCH_SIZES[-1]),
        schedule=template.schedule,
        sample_interval=template.sample_interval,
    )
    pickle_bytes = sum(
        len(pickle.dumps(trajectory, protocol=pickle.HIGHEST_PROTOCOL)) for trajectory in batch
    )
    frame_bytes = len(encode_trajectories(batch))

    for batch_size in BATCH_SIZES:
        benchmark.extra_info[f"dispatch_overhead_batch{batch_size}_ms"] = overhead_ms[batch_size]
    benchmark.extra_info["workers"] = N_WORKERS
    benchmark.extra_info["n_jobs"] = N_BATCH_JOBS
    benchmark.extra_info["result_bytes_pickle"] = pickle_bytes
    benchmark.extra_info["result_bytes_frame"] = frame_bytes
    benchmark.extra_info["frame_vs_pickle_bytes"] = frame_bytes / pickle_bytes
    benchmark.extra_info["batch32_vs_batch1_overhead"] = (
        overhead_ms[1] / overhead_ms[BATCH_SIZES[-1]]
    )

    # The tentpole's acceptance gate: at batch 32 the per-replicate dispatch
    # overhead should be >= 5x lower than unbatched (soft under
    # REPRO_BENCH_SOFT=1; the measured ratio always lands in extra_info).
    check_wallclock(
        overhead_ms[BATCH_SIZES[-1]] * 5.0 <= overhead_ms[1],
        "lockstep batching amortized dispatch by only "
        f"{overhead_ms[1] / overhead_ms[BATCH_SIZES[-1]]:.1f}x at batch 32 "
        f"({overhead_ms[1]:.2f} ms -> {overhead_ms[BATCH_SIZES[-1]]:.2f} ms per replicate)",
    )
    # The binary frame must beat per-replicate pickles on the wire.
    check_wallclock(
        frame_bytes < pickle_bytes,
        f"binary frame ({frame_bytes} B) is not smaller than pickles ({pickle_bytes} B)",
    )
