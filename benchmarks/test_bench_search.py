"""Experiment E11 — design-space search throughput and adaptive savings.

Two questions about the ``genlogic search`` layer:

* **Throughput** — how many candidates/second does one search push through a
  process pool vs the TCP loopback fabric, with both backends required to
  produce a bit-identical frontier
  (``extra_info["candidates_per_second_*"]``)?
* **Savings** — how many replicates does the racing allocator leave unspent
  versus exhaustive fixed-N on the same seeded candidate space, while
  recovering the same top-5 frontier
  (``extra_info["replicates_saved_ratio"]``)?

The savings scenario is the acceptance scenario of the tier-1 suite
(`tests/search/test_search_engine.py::TestAcceptance`) scaled down from 200 to 60
candidates so the benchmark stays minutes-not-hours; the 200-candidate run
enforces the ≤50%-of-exhaustive bar, this one tracks the trajectory of the
ratio per PR.  Wall-clock gates are soft under ``REPRO_BENCH_SOFT=1``; the
replicate counts are seeded and deterministic, so the frontier assertions
are always hard.
"""

import time

from conftest import BASE_SEED, check_wallclock
from repro.engine import DistributedEnsembleExecutor, ProcessPoolEnsembleExecutor
from repro.search import SearchSpec, run_design_search

N_WORKERS = 2

#: Throughput scenario: small space, short holds — dispatch dominates.
THROUGHPUT_SPEC = SearchSpec(
    function="0x8",
    inputs=("LacI", "TetR"),
    library="diverse",
    allocator="fixed",
    max_candidates=12,
    n0=2,
    fixed_replicates=2,
    hold_time=20.0,
    seed=BASE_SEED,
)

#: Savings scenario: the acceptance scenario at 60 candidates.
SAVINGS_BASE = {
    "function": "0x8",
    "inputs": ("LacI", "TetR"),
    "library": "diverse",
    "max_candidates": 60,
    "fixed_replicates": 10,
    "top_k": 5,
    "hold_time": 60.0,
    "seed": BASE_SEED,
}


def _result_payload(frontier):
    payload = frontier.to_payload()
    payload.pop("engine", None)
    for knob in ("workers", "batch_size"):
        payload["spec"].pop(knob, None)
    return payload


def _candidates_per_second(executor):
    started = time.perf_counter()
    frontier = run_design_search(THROUGHPUT_SPEC, executor=executor)
    wall = time.perf_counter() - started
    return frontier.n_candidates / wall, frontier


def test_search_throughput_pool_vs_fabric(benchmark):
    with ProcessPoolEnsembleExecutor(N_WORKERS) as pool:
        # One warm-up pass so both backends are measured with warm caches.
        _candidates_per_second(pool)
        (pool_cps, pool_frontier) = benchmark.pedantic(
            _candidates_per_second,
            args=(pool,),
            rounds=2,
            iterations=1,
        )

    with DistributedEnsembleExecutor.loopback(N_WORKERS) as fabric:
        _candidates_per_second(fabric)
        fabric_cps, fabric_frontier = _candidates_per_second(fabric)

    # The engine contract, one layer up: the whole ranked frontier is
    # bit-identical across transports.
    assert _result_payload(pool_frontier) == _result_payload(fabric_frontier)

    benchmark.extra_info["workers"] = N_WORKERS
    benchmark.extra_info["n_candidates"] = pool_frontier.n_candidates
    benchmark.extra_info["candidates_per_second_pool"] = round(pool_cps, 2)
    benchmark.extra_info["candidates_per_second_fabric"] = round(fabric_cps, 2)
    check_wallclock(
        fabric_cps > 0.2 * pool_cps,
        f"loopback fabric searched {fabric_cps:.2f} candidates/s vs pool "
        f"{pool_cps:.2f}; expected within 5x on a local wire",
    )


def test_racing_replicates_saved(benchmark):
    exhaustive = run_design_search(SearchSpec(allocator="fixed", **SAVINGS_BASE))

    adaptive = benchmark.pedantic(
        run_design_search,
        args=(SearchSpec(allocator="racing", n0=2, refine_step=2, **SAVINGS_BASE),),
        rounds=1,
        iterations=1,
    )

    def top_set(frontier):
        return {(e.candidate.repressors, e.candidate.overrides) for e in frontier.top(5)}

    # Seeded and deterministic: the adaptive search must find the same top-5.
    assert top_set(adaptive) == top_set(exhaustive)

    saved = 1.0 - adaptive.total_replicates / exhaustive.total_replicates
    benchmark.extra_info["n_candidates"] = exhaustive.n_candidates
    benchmark.extra_info["replicates_exhaustive"] = exhaustive.total_replicates
    benchmark.extra_info["replicates_racing"] = adaptive.total_replicates
    benchmark.extra_info["replicates_saved_ratio"] = round(saved, 3)
    benchmark.extra_info["racing_rounds"] = adaptive.rounds
    # Deterministic, so a hard floor is safe: the allocator must actually
    # save replicates on this scenario (the 200-candidate tier-1 test pins
    # the ≥2x bar; this tracks the small-space trajectory).
    assert saved >= 0.2, f"racing saved only {saved:.1%} of exhaustive replicates"
