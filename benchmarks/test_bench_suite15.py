"""Experiment E4 — Section III: verification of the full 15-circuit suite.

The paper evaluates its algorithm on 15 genetic circuits (5 from Myers'
textbook, 10 real Cello circuits; 1-3 inputs, 1-7 gates, 3-26 genetic
components) and recovers the correct Boolean expression for every one of
them.  This benchmark regenerates that table: every circuit is simulated with
the exhaustive protocol, analysed with the paper's settings (threshold 15,
FOV_UD 0.25), and verified against its intended truth table.
"""

import pytest

from conftest import paper_analyzer, run_circuit_experiment
from repro.core import format_suite_table
from repro.gates import standard_suite


@pytest.fixture(scope="module")
def suite_results():
    """Simulate and analyse all 15 circuits once."""
    analyzer = paper_analyzer()
    entries = []
    for offset, circuit in enumerate(standard_suite()):
        datalog = run_circuit_experiment(circuit, seed_offset=100 + offset, hold_time=180.0)
        result = analyzer.analyze(datalog, expected=circuit.expected_table)
        entries.append((circuit, result))
    return entries


def test_suite15_all_circuits_verified(benchmark, suite_results):
    analyzer = paper_analyzer()
    # Benchmark the analysis of the largest log in the suite (the paper's
    # "complex genetic circuit with significantly large-sized data" case).
    largest_circuit, _ = max(suite_results, key=lambda pair: pair[0].n_gates)
    largest_log = run_circuit_experiment(largest_circuit, seed_offset=999, hold_time=180.0)
    benchmark(analyzer.analyze, largest_log)

    rows = []
    for circuit, result in suite_results:
        rows.append(
            {
                "name": circuit.name,
                "n_inputs": circuit.n_inputs,
                "n_gates": circuit.n_gates,
                "n_components": circuit.n_components,
                "expected": circuit.expected_table.to_hex(),
                "recovered": result.truth_table.to_hex(),
                "fitness": result.fitness,
                "match": result.comparison.matches,
            },
        )
    print()
    print(format_suite_table(rows, title="Section III — 15-circuit verification suite"))

    # The paper's suite statistics.
    assert len(suite_results) == 15
    assert {row["n_inputs"] for row in rows} == {1, 2, 3}
    assert min(circuit.n_gates for circuit, _ in suite_results) >= 1
    assert max(circuit.n_gates for circuit, _ in suite_results) <= 9
    assert min(circuit.n_components for circuit, _ in suite_results) >= 3
    assert max(circuit.n_components for circuit, _ in suite_results) <= 30

    # Every circuit's Boolean expression is recovered correctly...
    mismatches = [row["name"] for row in rows if not row["match"]]
    assert mismatches == [], f"circuits with wrong recovered logic: {mismatches}"

    # ...with high fitness throughout.
    assert all(row["fitness"] > 90.0 for row in rows)
    assert sum(row["fitness"] for row in rows) / len(rows) > 95.0
