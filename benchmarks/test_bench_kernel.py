"""Experiment E8 — whole-model propensity kernel codegen throughput.

Every stochastic study in this reproduction bottoms out in the direct-method
SSA inner loop (Gillespie 1977 — the paper's reference [7]): one propensity
evaluation per reaction per event.  This benchmark measures what the
generated whole-model kernels (``repro.stochastic.codegen``) buy over the
interpreted per-reaction fallback (``REPRO_KERNEL=interp``) on

* the paper's Figure-1 AND gate (small: 5 reactions), and
* a Cello-scale circuit — eight prefixed copies of the paper's Figure-4
  headline circuit 0x0B merged into one 80-reaction, 64-species model —

in **events per second**, asserting the ≥3x codegen speedup on the
Cello-scale model.  It also measures worker cold start: building a
``CompiledModel`` from a source+bytecode kernel blob (what a pool worker
does when the ensemble engine ships it a model) versus recompiling the
kinetic-law ASTs from scratch.  All numbers land in ``extra_info`` of the
pytest-benchmark JSON so CI can track the perf trajectory across PRs.

The two backends are compared on the same host within one test, so the
speedup assertions are robust to absolute machine speed.
"""

import marshal
import os
import time

import numpy as np
import pytest

from conftest import check_wallclock
from repro.engine.cache import kernel_artifact_for_blob, model_fingerprint
from repro.gates import and_gate_circuit, cello_circuit
from repro.sbml import Model
from repro.stochastic import (
    BACKEND_CODEGEN,
    BACKEND_INTERP,
    KERNEL_ENV_VAR,
    CompiledModel,
)
from repro.stochastic.ssa import DirectMethodSimulator

BASE_SEED = 20170654

#: Simulated horizon per measured run (time units).  Short enough for CI's
#: --benchmark-disable smoke pass, long enough for tens of thousands of
#: events on the Cello-scale model.
T_END_SMALL = 100.0
T_END_CELLO = 15.0

#: The ≥3x acceptance bar for codegen vs interpreted events/sec on the
#: Cello-scale model (measured ~4x on the development host).
MIN_CELLO_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def and_model():
    return and_gate_circuit().model


@pytest.fixture(scope="module")
def cello_scale_model():
    """Eight prefixed copies of Cello circuit 0x0B merged into one model.

    The stock circuits of the paper top out at ~12 reactions; merging copies
    builds an honest large-circuit workload (80 reactions, 64 species) from
    the same Cello parts without inventing kinetics.  Inputs are driven high
    so every copy's gates are active.
    """
    base = cello_circuit("0x0B").model
    merged = Model("cello_scale")
    for i in range(8):
        merged.merge(base, prefix=f"c{i}_")
    for sid in merged.boundary_species():
        merged.set_initial_amount(sid, 30.0)
    return merged


def _events_per_second(model, backend, t_end, repeats=3):
    """Best-of-N events/sec of a seeded SSA run under the given backend."""
    previous = os.environ.get(KERNEL_ENV_VAR)
    os.environ[KERNEL_ENV_VAR] = backend
    try:
        simulator = DirectMethodSimulator(model)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            simulator.run(t_end, rng=BASE_SEED)
            best = min(best, time.perf_counter() - start)
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV_VAR, None)
        else:
            os.environ[KERNEL_ENV_VAR] = previous
    return simulator.last_event_count / best, simulator.last_event_count


def test_kernel_events_per_sec_and_gate(benchmark, and_model):
    """Small-model SSA throughput: codegen vs interpreted, same seed."""
    codegen_eps, events = _events_per_second(and_model, BACKEND_CODEGEN, T_END_SMALL)
    interp_eps, interp_events = _events_per_second(and_model, BACKEND_INTERP, T_END_SMALL)
    assert events == interp_events  # same draws, same trajectory, same count

    simulator = DirectMethodSimulator(and_model)
    benchmark(simulator.run, T_END_SMALL, rng=BASE_SEED)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec_codegen"] = round(codegen_eps)
    benchmark.extra_info["events_per_sec_interp"] = round(interp_eps)
    benchmark.extra_info["codegen_speedup"] = round(codegen_eps / interp_eps, 2)


def test_kernel_events_per_sec_cello_scale(benchmark, cello_scale_model):
    """Cello-scale SSA throughput: codegen must be ≥3x the interpreted path."""
    codegen_eps, events = _events_per_second(cello_scale_model, BACKEND_CODEGEN, T_END_CELLO)
    interp_eps, interp_events = _events_per_second(cello_scale_model, BACKEND_INTERP, T_END_CELLO)
    assert events == interp_events

    simulator = DirectMethodSimulator(cello_scale_model)
    benchmark(simulator.run, T_END_CELLO, rng=BASE_SEED)
    speedup = codegen_eps / interp_eps
    benchmark.extra_info["reactions"] = len(cello_scale_model.reactions)
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec_codegen"] = round(codegen_eps)
    benchmark.extra_info["events_per_sec_interp"] = round(interp_eps)
    benchmark.extra_info["codegen_speedup"] = round(speedup, 2)
    check_wallclock(
        speedup >= MIN_CELLO_SPEEDUP,
        f"codegen kernel is only {speedup:.2f}x the interpreted path "
        f"({codegen_eps:,.0f} vs {interp_eps:,.0f} events/sec); expected ≥{MIN_CELLO_SPEEDUP}x",
    )


def test_worker_cold_start_blob_exec_vs_ast_recompile(benchmark, cello_scale_model):
    """Worker cold start: exec'ing the shipped kernel blob vs recompiling.

    ``blob-exec`` is what a pool worker pays when the parent ships the
    generated kernel (source + marshalled bytecode) inside the model blob;
    ``ast-recompile`` is what it paid before compiled-propensity
    serialization: re-deriving everything from the kinetic-law ASTs.
    """
    artifact = kernel_artifact_for_blob(
        cello_scale_model,
        model_fingerprint(cello_scale_model),
        (),
    )

    def blob_exec():
        return CompiledModel(
            cello_scale_model,
            kernel_source=artifact.source,
            kernel_code=marshal.loads(artifact.bytecode),
        )

    def ast_recompile_interp():
        return CompiledModel(cello_scale_model, backend=BACKEND_INTERP)

    def ast_recompile_codegen():
        return CompiledModel(cello_scale_model, backend=BACKEND_CODEGEN)

    def best_of(fn, repeats=10):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    blob_seconds = best_of(blob_exec)
    interp_seconds = best_of(ast_recompile_interp)
    codegen_seconds = best_of(ast_recompile_codegen)

    compiled = benchmark(blob_exec)
    # Sanity: the blob-built model simulates identically to a fresh compile.
    state = compiled.initial_state.copy()
    fresh = ast_recompile_codegen()
    assert np.array_equal(compiled.propensities(state), fresh.propensities(state))

    benchmark.extra_info["cold_start_blob_exec_ms"] = round(blob_seconds * 1e3, 3)
    benchmark.extra_info["cold_start_ast_recompile_interp_ms"] = round(interp_seconds * 1e3, 3)
    benchmark.extra_info["cold_start_ast_recompile_codegen_ms"] = round(codegen_seconds * 1e3, 3)
    benchmark.extra_info["blob_exec_speedup_vs_interp"] = round(interp_seconds / blob_seconds, 1)
    benchmark.extra_info["blob_exec_speedup_vs_codegen"] = round(codegen_seconds / blob_seconds, 1)
    # "Measurably cheaper than AST recompilation" is an acceptance criterion;
    # the margin is large (10x+ on the dev host), so assert a conservative 2x.
    check_wallclock(
        blob_seconds * 2 < interp_seconds,
        f"blob exec ({blob_seconds * 1e3:.2f} ms) is not 2x cheaper than the "
        f"interp AST recompile ({interp_seconds * 1e3:.2f} ms)",
    )
    check_wallclock(
        blob_seconds * 2 < codegen_seconds,
        f"blob exec ({blob_seconds * 1e3:.2f} ms) is not 2x cheaper than the "
        f"full codegen build ({codegen_seconds * 1e3:.2f} ms)",
    )
