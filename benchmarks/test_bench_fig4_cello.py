"""Experiment E2 — Figure 4: Cello circuits 0x0B, 0x04 and 0x1C.

For each of the three circuits the paper shows the per-combination analytics
(``Case_I``, ``High_O``, ``Var_O``), the recovered Boolean expression and the
percentage fitness.  This benchmark regenerates the same table for the
regenerated circuits and checks the findings the paper highlights:

* each circuit's recovered expression matches its truth-table name,
* for ``0x0B`` the combination ``100`` shows many high output samples (the
  output is still decaying from the previous combination ``011``) yet is
  correctly filtered out by equation (2),
* the percentage fitness stays in the high 90s.
"""

import pytest

from conftest import paper_analyzer, run_circuit_experiment
from repro.core import format_analysis_report
from repro.gates import cello_circuit
from repro.logic import TruthTable

FIGURE4_CIRCUITS = ["0x0B", "0x04", "0x1C"]


@pytest.fixture(scope="module")
def figure4_data():
    """Simulate the three Figure-4 circuits once (SSA, exhaustive protocol)."""
    data = {}
    for offset, name in enumerate(FIGURE4_CIRCUITS):
        circuit = cello_circuit(name)
        data[name] = (circuit, run_circuit_experiment(circuit, seed_offset=offset))
    return data


@pytest.mark.parametrize("name", FIGURE4_CIRCUITS)
def test_fig4_circuit_analysis(benchmark, figure4_data, name):
    circuit, datalog = figure4_data[name]
    analyzer = paper_analyzer()
    result = benchmark(analyzer.analyze, datalog)
    result.verify(circuit.expected_table)

    print()
    print(format_analysis_report(result, title=f"Figure 4 — Cello circuit {name}"))

    # Recovered expression equals the circuit's truth-table name.
    assert result.truth_table.outputs == TruthTable.from_hex(name, inputs=circuit.inputs).outputs
    assert result.comparison.matches

    # Every input combination was exercised and the coverage is complete.
    assert result.unobserved_combinations == []

    # Fitness in the high nineties, as reported by the paper for its circuits.
    assert result.fitness > 95.0

    # Output variation stays low for every accepted-high state (the paper
    # notes "the output variation is not too high for any of the output
    # states" of these three circuits).
    for combination in result.combinations:
        if combination.is_high:
            assert combination.fov_est < 0.25


def test_fig4_0x0b_transition_filtering(benchmark, figure4_data):
    """The paper's discussion of circuit 0x0B, combination 100: the output is
    high for many samples only because the previous combination (011) left it
    high, and equation (2) removes it from the Boolean expression."""
    circuit, datalog = figure4_data["0x0B"]
    result = benchmark(paper_analyzer().analyze, datalog)

    combination_100 = result.combination("100")
    assert combination_100.high_count > 0                       # decaying tail seen
    assert combination_100.high_count < combination_100.case_count / 2
    assert not combination_100.is_high                          # filtered out
    assert result.combination("011").is_high                    # the true high state
    assert result.high_combination_labels == ["000", "001", "011"]
