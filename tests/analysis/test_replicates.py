"""Tests for replicate studies."""

import pytest

from repro.analysis import ReplicateStudy, run_replicate_study
from repro.errors import AnalysisError
from repro.gates import not_gate_circuit


@pytest.fixture(scope="module")
def study():
    return run_replicate_study(
        not_gate_circuit(),
        n_replicates=4,
        hold_time=120.0,
        rng=99,
    )


class TestRunReplicateStudy:
    def test_replicate_count(self, study):
        assert study.n_replicates == 4
        assert len(study.results) == 4

    def test_reliable_circuit_has_full_recovery(self, study):
        assert study.recovery_rate == 1.0
        assert study.mean_fitness > 98.0
        assert study.std_fitness < 2.0

    def test_combination_agreement(self, study):
        agreement = study.combination_agreement()
        assert set(agreement) == {"0", "1"}
        assert all(value == 1.0 for value in agreement.values())
        assert study.worst_combination() in agreement

    def test_summary(self, study):
        text = study.summary()
        assert "not_gate" in text
        assert "recovery rate" in text

    def test_invalid_replicate_count(self):
        with pytest.raises(AnalysisError):
            run_replicate_study(not_gate_circuit(), n_replicates=0)

    def test_empty_results_rejected(self, study):
        with pytest.raises(AnalysisError):
            ReplicateStudy(circuit_name="x", expected=study.expected, results=[])

    def test_replicates_are_independent(self, study):
        """Different seeds must not produce byte-identical traces."""
        first, second = study.results[0], study.results[1]
        counts_first = [c.high_count for c in first.combinations]
        counts_second = [c.high_count for c in second.combinations]
        assert counts_first != counts_second
