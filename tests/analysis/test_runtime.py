"""Tests for the analyzer-runtime measurement harness."""

import pytest

from repro.analysis import measure_analysis_runtime, synthetic_experiment_arrays
from repro.core import LogicAnalyzer
from repro.errors import AnalysisError
from repro.logic import TruthTable


class TestSyntheticArrays:
    def test_shapes(self):
        inputs, output, names = synthetic_experiment_arrays(1000, 3, rng=1)
        assert inputs.shape == (1000, 3)
        assert output.shape == (1000,)
        assert names == ["in1", "in2", "in3"]

    def test_respects_requested_truth_table(self):
        table = TruthTable.from_hex("0x1C", n_inputs=3)
        inputs, output, names = synthetic_experiment_arrays(
            4000,
            3,
            truth_table=table,
            rng=2,
        )
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(inputs, output, names)
        assert result.truth_table.outputs == table.outputs

    def test_too_few_samples_rejected(self):
        with pytest.raises(AnalysisError):
            synthetic_experiment_arrays(4, 3, rng=1)

    def test_reproducible_with_seed(self):
        a = synthetic_experiment_arrays(500, 2, rng=7)
        b = synthetic_experiment_arrays(500, 2, rng=7)
        assert (a[1] == b[1]).all()


class TestRuntimeMeasurement:
    def test_measurements_returned_per_size(self):
        measurements = measure_analysis_runtime([2_000, 8_000], n_inputs=2, repeats=1, rng=3)
        assert [m.n_samples for m in measurements] == [2_000, 8_000]
        assert all(m.seconds > 0 for m in measurements)
        assert all(m.samples_per_second > 0 for m in measurements)

    def test_large_trace_analysed_well_under_paper_budget(self):
        """The paper quotes ~8.4 s for a large analysis; a million-sample
        trace must stay well inside that budget here."""
        measurement = measure_analysis_runtime([1_000_000], n_inputs=3, repeats=1, rng=4)[0]
        assert measurement.seconds < 8.4

    def test_scaling_is_roughly_linear(self):
        small, large = measure_analysis_runtime([20_000, 200_000], n_inputs=3, repeats=2, rng=5)
        ratio = large.seconds / small.seconds
        assert ratio < 40.0  # 10x data must not cost more than ~40x time

    def test_summary_text(self):
        measurement = measure_analysis_runtime([5_000], n_inputs=2, repeats=1, rng=6)[0]
        assert "samples" in measurement.summary()

    def test_invalid_repeats_rejected(self):
        with pytest.raises(AnalysisError):
            measure_analysis_runtime([1000], repeats=0)
