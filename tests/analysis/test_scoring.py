"""Tests for CandidateScore: refinable aggregation and the two spread measures."""

import math

import numpy as np
import pytest

from repro.analysis.scoring import CandidateScore, z_value
from repro.core.analyzer import LogicAnalysisResult
from repro.errors import AnalysisError
from repro.logic import TruthTable

AND_TABLE = TruthTable(inputs=["LacI", "TetR"], outputs=[0, 0, 0, 1])
CONST0_TABLE = TruthTable(inputs=["LacI", "TetR"], outputs=[0, 0, 0, 0])


def fake_result(fitness, outputs=(0, 0, 0, 1)):
    """A LogicAnalysisResult with just the fields scoring reads."""
    table = TruthTable(inputs=["LacI", "TetR"], outputs=list(outputs))
    return LogicAnalysisResult(
        circuit_name="fake",
        input_species=["LacI", "TetR"],
        output_species="YFP",
        threshold=15.0,
        fov_ud=0.25,
        combinations=[],
        expression="LacI & TetR",
        canonical_expression="LacI & TetR",
        truth_table=table,
        fitness=float(fitness),
        gate_name="AND",
        analysis_time_seconds=0.0,
        n_samples=10,
    )


@pytest.fixture()
def score():
    return CandidateScore.from_results(
        AND_TABLE,
        [fake_result(90.0), fake_result(80.0), fake_result(100.0)],
    )


class TestAggregation:
    def test_empty_score_raises(self):
        empty = CandidateScore(AND_TABLE)
        for attr in ("mean_fitness", "std_fitness", "mean_design_fitness"):
            with pytest.raises(AnalysisError):
                getattr(empty, attr)
        with pytest.raises(AnalysisError):
            empty.sem_fitness()
        with pytest.raises(AnalysisError):
            empty.design_ci()

    def test_basic_statistics(self, score):
        assert score.n_replicates == 3
        assert score.mean_fitness == pytest.approx(90.0)
        assert score.fitness_values == [90.0, 80.0, 100.0]
        assert score.recovery_rate == 1.0

    def test_slot_order_independence(self):
        """Results arriving in any completion order give bit-identical stats."""
        results = [fake_result(90.0), fake_result(80.0), fake_result(100.0)]
        serial = CandidateScore(AND_TABLE)
        for i, r in enumerate(results):
            serial.add(r, slot=i)
        shuffled = CandidateScore(AND_TABLE)
        for i in (2, 0, 1):
            shuffled.add(results[i], slot=i)
        assert shuffled.fitness_values == serial.fitness_values
        assert shuffled.to_payload() == serial.to_payload()

    def test_duplicate_slot_rejected(self):
        score = CandidateScore(AND_TABLE)
        score.add(fake_result(90.0), slot=0)
        with pytest.raises(AnalysisError):
            score.add(fake_result(80.0), slot=0)

    def test_negative_slot_rejected(self):
        score = CandidateScore(AND_TABLE)
        with pytest.raises(AnalysisError):
            score.add(fake_result(90.0), slot=-1)

    def test_add_without_slot_appends(self):
        score = CandidateScore(AND_TABLE)
        score.add(fake_result(90.0))
        score.add(fake_result(80.0))
        assert score.fitness_values == [90.0, 80.0]


class TestSpreadMeasures:
    """std_fitness stays ddof=0; sem/CI use ddof=1.  Pinned numerically."""

    def test_std_is_population_ddof0(self, score):
        # std([90, 80, 100], ddof=0) = sqrt(200/3)
        assert score.std_fitness == pytest.approx(math.sqrt(200.0 / 3.0))
        assert score.std_fitness == pytest.approx(float(np.std([90.0, 80.0, 100.0])))

    def test_sem_is_sample_ddof1(self, score):
        # std([90, 80, 100], ddof=1) = 10; sem = 10 / sqrt(3)
        assert score.sem_fitness() == pytest.approx(10.0 / math.sqrt(3.0))

    def test_ci_uses_normal_critical_value(self, score):
        lo, hi = score.fitness_ci(level=0.95)
        half = z_value(0.95) * 10.0 / math.sqrt(3.0)
        assert lo == pytest.approx(90.0 - half)
        assert hi == pytest.approx(90.0 + half)
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)

    def test_single_replicate_is_unbounded_not_zero(self):
        """n=1: sample variance undefined — sem is inf and the CI is the whole
        line, never a silent 0.0."""
        score = CandidateScore.from_results(AND_TABLE, [fake_result(90.0)])
        assert score.std_fitness == 0.0  # population std of one value
        assert score.sem_fitness() == float("inf")
        assert score.fitness_ci() == (float("-inf"), float("inf"))
        assert score.design_sem() == float("inf")
        assert score.design_ci() == (float("-inf"), float("inf"))

    def test_invalid_ci_level(self, score):
        for level in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(AnalysisError):
                score.fitness_ci(level=level)


class TestDesignFitness:
    def test_correct_replicates_keep_their_fitness(self, score):
        assert score.design_values == score.fitness_values
        assert score.mean_design_fitness == pytest.approx(score.mean_fitness)

    def test_dead_circuit_is_discounted(self):
        """A CONST0 recovery of an AND target matches 3 of 4 rows: a perfectly
        stable dead circuit scores 75, not 100."""
        score = CandidateScore.from_results(
            AND_TABLE,
            [fake_result(100.0, outputs=(0, 0, 0, 0))],
        )
        assert score.design_values == [pytest.approx(75.0)]
        assert score.recovery_rate == 0.0

    def test_mixed_replicates(self):
        score = CandidateScore.from_results(
            AND_TABLE,
            [fake_result(100.0), fake_result(100.0, outputs=(0, 0, 0, 0))],
        )
        assert score.mean_design_fitness == pytest.approx((100.0 + 75.0) / 2.0)
        assert score.recovery_rate == 0.5


class TestCombinationAgreement:
    def test_worst_combination_and_margin(self):
        score = CandidateScore.from_results(
            AND_TABLE,
            [
                fake_result(100.0),
                fake_result(100.0, outputs=(0, 0, 0, 0)),  # 11 row wrong
                fake_result(100.0),
                fake_result(100.0, outputs=(0, 0, 0, 0)),  # 11 row wrong
            ],
        )
        agreement = score.combination_agreement()
        assert agreement["11"] == pytest.approx(0.5)
        assert agreement["00"] == 1.0
        assert score.worst_combination() == "11"
        assert score.worst_combination_margin() == pytest.approx(0.5)

    def test_perfect_margin(self, score):
        assert score.worst_combination_margin() == 1.0


class TestReplicateStudyDelegation:
    """ReplicateStudy statistics delegate to CandidateScore — same numbers."""

    def _study(self, results):
        from repro.analysis.replicates import ReplicateStudy

        return ReplicateStudy("fake", AND_TABLE, results)

    def test_sem_and_ci_match_score(self):
        results = [fake_result(90.0), fake_result(80.0), fake_result(100.0)]
        study = self._study(results)
        score = CandidateScore.from_results(AND_TABLE, results)
        assert study.sem_fitness() == score.sem_fitness()
        assert study.fitness_ci() == score.fitness_ci()
        assert study.std_fitness == score.std_fitness  # still ddof=0

    def test_single_replicate_edge(self):
        study = self._study([fake_result(90.0)])
        assert study.sem_fitness() == float("inf")
        assert study.fitness_ci() == (float("-inf"), float("inf"))
        assert study.std_fitness == 0.0


class TestPayload:
    def test_payload_carries_both_spreads_and_design(self, score):
        payload = score.to_payload()
        assert payload["n_replicates"] == 3
        assert payload["std_fitness"] == pytest.approx(math.sqrt(200.0 / 3.0))
        assert payload["sem_fitness"] == pytest.approx(10.0 / math.sqrt(3.0))
        assert payload["mean_design_fitness"] == pytest.approx(90.0)
        assert payload["design_values"] == payload["fitness_values"]
        assert payload["worst_combination_margin"] == 1.0
