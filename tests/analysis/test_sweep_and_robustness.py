"""Tests for threshold sweeps and robustness assessment."""

import pytest

from repro.analysis import assess_robustness, threshold_sweep
from repro.errors import AnalysisError
from repro.gates import and_gate_circuit


class TestThresholdSweep:
    def test_nominal_threshold_recovers_correct_logic(self, and_circuit):
        entries = threshold_sweep(
            and_circuit,
            thresholds=[15.0],
            hold_time=150.0,
            rng=1,
            simulator="ssa",
        )
        assert len(entries) == 1
        assert entries[0].matches
        assert entries[0].input_high == 15.0  # paper protocol: inputs at threshold level

    def test_weak_inputs_change_the_recovered_logic(self, and_circuit):
        """The Figure-5 low-threshold finding: 3-molecule inputs cannot drive
        the circuit, so the recovered behaviour is no longer the intended one."""
        entries = threshold_sweep(
            and_circuit,
            thresholds=[3.0, 15.0],
            hold_time=150.0,
            rng=2,
            simulator="ssa",
        )
        weak, nominal = entries
        assert nominal.matches
        assert not weak.matches
        assert weak.n_wrong_states >= 1

    def test_high_threshold_increases_variation(self, and_circuit):
        """The Figure-5 high-threshold finding: with the threshold at the ON
        level the output chatters, so the total variation count rises."""
        entries = threshold_sweep(
            and_circuit,
            thresholds=[15.0, 40.0],
            hold_time=150.0,
            rng=3,
            simulator="ssa",
        )
        nominal, high = entries
        assert high.total_variation > nominal.total_variation

    def test_fixed_input_level_mode(self, and_circuit):
        entries = threshold_sweep(
            and_circuit,
            thresholds=[15.0],
            hold_time=100.0,
            rng=4,
            simulator="ode",
            input_high_equals_threshold=False,
            input_high=40.0,
        )
        assert entries[0].input_high == 40.0
        assert entries[0].matches

    def test_empty_thresholds_rejected(self, and_circuit):
        with pytest.raises(AnalysisError):
            threshold_sweep(and_circuit, thresholds=[])

    def test_negative_threshold_rejected(self, and_circuit):
        with pytest.raises(AnalysisError):
            threshold_sweep(and_circuit, thresholds=[-1.0], hold_time=50.0)

    def test_summary_text(self, and_circuit):
        entries = threshold_sweep(
            and_circuit,
            thresholds=[15.0],
            hold_time=100.0,
            rng=5,
            simulator="ode",
            input_high_equals_threshold=False,
        )
        assert "threshold 15" in entries[0].summary()


class TestRobustness:
    @pytest.fixture(scope="class")
    def report(self):
        return assess_robustness(
            and_gate_circuit(),
            thresholds=[3.0, 15.0, 25.0],
            nominal_threshold=15.0,
            hold_time=150.0,
            rng=6,
            simulator="ssa",
        )

    def test_nominal_threshold_is_correct(self, report):
        assert report.nominal_is_correct
        assert 15.0 in report.correct_thresholds

    def test_extreme_threshold_fails(self, report):
        assert 3.0 in report.incorrect_thresholds

    def test_operating_window_contains_nominal(self, report):
        window = report.operating_window()
        assert window is not None
        low, high = window
        assert low <= 15.0 <= high

    def test_summary_text(self, report):
        text = report.summary()
        assert "and_gate" in text
        assert "operating window" in text

    def test_invalid_nominal_rejected(self):
        with pytest.raises(AnalysisError):
            assess_robustness(and_gate_circuit(), thresholds=[15.0], nominal_threshold=0.0)
