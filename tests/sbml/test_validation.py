"""Tests for model validation rules."""

import pytest

from repro.errors import ValidationError
from repro.sbml import Model, check_model, validate_model


def _base_model() -> Model:
    model = Model("m")
    model.add_compartment("cell")
    model.add_species("A", boundary_condition=True)
    model.add_species("Y")
    model.add_parameter("k", 1.0)
    model.add_parameter("kd", 0.1)
    model.add_reaction(
        "production",
        products=[("Y", 1.0)],
        modifiers=["A"],
        kinetic_law="k * hill_rep(A, 10, 2)",
    )
    model.add_reaction("degradation", reactants=[("Y", 1.0)], kinetic_law="kd * Y")
    return model


class TestValidateModel:
    def test_valid_model_has_no_problems(self):
        assert validate_model(_base_model()) == []

    def test_circuit_models_are_valid(self, and_circuit, cello_0x0b):
        assert validate_model(and_circuit.model) == []
        assert validate_model(cello_0x0b.model) == []

    def test_missing_reactions_reported(self):
        model = Model("m")
        model.add_compartment("cell")
        model.add_species("X")
        problems = validate_model(model)
        assert any("no reactions" in p for p in problems)

    def test_missing_species_reported(self):
        model = Model("m")
        model.add_compartment("cell")
        problems = validate_model(model)
        assert any("no species" in p for p in problems)

    def test_missing_kinetic_law_reported(self):
        model = _base_model()
        model.add_species("Z")
        model.add_reaction("no_law", products=[("Z", 1.0)])
        problems = validate_model(model)
        assert any("no kinetic law" in p for p in problems)

    def test_undegraded_species_reported(self):
        model = _base_model()
        model.add_species("W")
        model.add_reaction("make_w", products=[("W", 1.0)], kinetic_law="k")
        problems = validate_model(model)
        assert any("never degraded" in p for p in problems)
        # ... unless the genetic-circuit specific check is disabled.
        assert not any(
            "never degraded" in p for p in validate_model(model, require_degradation=False)
        )

    def test_produced_boundary_species_reported(self):
        model = _base_model()
        model.add_reaction("bad", products=[("A", 1.0)], kinetic_law="k")
        problems = validate_model(model)
        assert any("boundary (input) species" in p for p in problems)

    def test_law_ignoring_reactants_reported(self):
        model = _base_model()
        model.add_species("Z", initial_amount=5)
        model.add_reaction("odd", reactants=[("Z", 1.0)], kinetic_law="k")
        problems = validate_model(model)
        assert any("does not depend" in p for p in problems)

    def test_negative_parameter_reported(self):
        model = _base_model()
        model.parameters["k"].value = -1.0
        problems = validate_model(model)
        assert any("negative value" in p for p in problems)


class TestCheckModel:
    def test_check_passes_silently(self):
        check_model(_base_model())

    def test_check_raises_with_all_messages(self):
        model = Model("m")
        model.add_compartment("cell")
        with pytest.raises(ValidationError) as excinfo:
            check_model(model)
        assert "no species" in str(excinfo.value)
        assert "no reactions" in str(excinfo.value)
