"""Round-trip and error tests for SBML reading/writing."""

import pytest

from repro.errors import SBMLParseError
from repro.sbml import (
    Model,
    read_sbml_file,
    read_sbml_string,
    write_sbml_file,
    write_sbml_string,
)


def _roundtrip(model: Model) -> Model:
    return read_sbml_string(write_sbml_string(model))


class TestRoundTrip:
    def test_species_attributes_survive(self, toy_model):
        again = _roundtrip(toy_model)
        assert again.species_ids() == toy_model.species_ids()
        assert again.species["A"].boundary_condition is True
        assert again.species["Y"].boundary_condition is False

    def test_parameters_survive(self, toy_model):
        again = _roundtrip(toy_model)
        assert again.parameters["kmax"].value == pytest.approx(4.0)
        assert again.parameters["n"].value == pytest.approx(2.5)

    def test_reactions_survive(self, toy_model):
        again = _roundtrip(toy_model)
        assert again.reaction_ids() == toy_model.reaction_ids()
        production = again.get_reaction("production_Y")
        assert production.modifiers == ["A"]
        assert [p.species for p in production.products] == ["Y"]

    def test_kinetic_laws_evaluate_identically(self, toy_model):
        again = _roundtrip(toy_model)
        env = {"A": 12.0, "Y": 5.0, **toy_model.parameter_values()}
        for rid in toy_model.reaction_ids():
            original = toy_model.get_reaction(rid).kinetic_law.math.evaluate(env)
            rebuilt = again.get_reaction(rid).kinetic_law.math.evaluate(env)
            assert rebuilt == pytest.approx(original)

    def test_notes_survive(self, toy_model):
        toy = toy_model.copy()
        toy.notes = "A hand-built NOT gate"
        again = _roundtrip(toy)
        assert "NOT gate" in again.notes

    def test_initial_amounts_survive(self, toy_model):
        toy = toy_model.copy()
        toy.set_initial_amount("A", 40.0)
        again = _roundtrip(toy)
        assert again.species["A"].initial_amount == pytest.approx(40.0)

    def test_local_parameters_survive(self):
        model = Model("m")
        model.add_species("X")
        model.add_reaction(
            "r",
            products=[("X", 1.0)],
            kinetic_law="k_local",
            local_parameters={"k_local": 3.0},
        )
        again = _roundtrip(model)
        assert again.get_reaction("r").kinetic_law.local_parameters == {"k_local": 3.0}

    def test_stoichiometry_survives(self):
        model = Model("m")
        model.add_species("X")
        model.add_species("D")
        model.add_reaction(
            "dimerise",
            reactants=[("X", 2.0)],
            products=[("D", 1.0)],
            kinetic_law="X * (X - 1)",
        )
        again = _roundtrip(model)
        assert again.get_reaction("dimerise").reactants[0].stoichiometry == pytest.approx(2.0)

    def test_file_roundtrip(self, toy_model, tmp_path):
        path = tmp_path / "model.xml"
        write_sbml_file(toy_model, path)
        again = read_sbml_file(path)
        assert again.sid == toy_model.sid
        assert again.reaction_ids() == toy_model.reaction_ids()

    def test_gate_circuit_model_roundtrips(self, and_circuit):
        again = _roundtrip(and_circuit.model)
        assert set(again.species_ids()) == set(and_circuit.model.species_ids())
        assert set(again.reaction_ids()) == set(and_circuit.model.reaction_ids())

    def test_double_roundtrip_is_stable(self, toy_model):
        once = write_sbml_string(_roundtrip(toy_model))
        twice = write_sbml_string(_roundtrip(read_sbml_string(once)))
        assert once == twice


class TestWriterOutput:
    def test_declares_level_3(self, toy_model):
        text = write_sbml_string(toy_model)
        assert 'level="3"' in text
        assert "http://www.sbml.org/sbml/level3/version1/core" in text

    def test_escapes_attribute_values(self):
        model = Model("m", name='needs "quoting" & escaping')
        model.add_species("X")
        model.add_reaction("r", products=[("X", 1.0)], kinetic_law="1")
        text = write_sbml_string(model)
        assert "&quot;" in text or "&amp;" in text
        read_sbml_string(text)  # must stay parseable


class TestReaderErrors:
    def test_malformed_xml(self):
        with pytest.raises(SBMLParseError):
            read_sbml_string("<sbml><model>")

    def test_wrong_root_element(self):
        with pytest.raises(SBMLParseError):
            read_sbml_string("<notSBML/>")

    def test_missing_model_element(self):
        with pytest.raises(SBMLParseError):
            read_sbml_string('<sbml xmlns="http://www.sbml.org/sbml/level3/version1/core"/>')

    def test_species_without_id(self):
        text = """<sbml xmlns="http://www.sbml.org/sbml/level3/version1/core">
          <model id="m"><listOfSpecies><species/></listOfSpecies></model></sbml>"""
        with pytest.raises(SBMLParseError):
            read_sbml_string(text)

    def test_kinetic_law_without_math(self):
        text = """<sbml xmlns="http://www.sbml.org/sbml/level3/version1/core">
          <model id="m">
            <listOfSpecies><species id="X" compartment="cell"/></listOfSpecies>
            <listOfReactions><reaction id="r"><kineticLaw/></reaction></listOfReactions>
          </model></sbml>"""
        with pytest.raises(SBMLParseError):
            read_sbml_string(text)

    def test_unknown_elements_are_ignored(self):
        text = """<sbml xmlns="http://www.sbml.org/sbml/level3/version1/core">
          <model id="m">
            <listOfUnitDefinitions><unitDefinition id="u"/></listOfUnitDefinitions>
            <listOfSpecies><species id="X" compartment="cell" initialAmount="1"/></listOfSpecies>
          </model></sbml>"""
        model = read_sbml_string(text)
        assert model.species_ids() == ["X"]
