"""Tests for the SBML model representation."""

import pytest

from repro.errors import DuplicateIdError, ModelError, UnknownIdError
from repro.sbml import KineticLaw, Model, SpeciesReference, is_valid_sid, parse


class TestIdentifiers:
    @pytest.mark.parametrize("sid", ["a", "A1", "_x", "gene_2", "LacI"])
    def test_valid_sids(self, sid):
        assert is_valid_sid(sid)

    @pytest.mark.parametrize("sid", ["", "1a", "a-b", "a b", "a.b", "0x0B"])
    def test_invalid_sids(self, sid):
        assert not is_valid_sid(sid)

    def test_model_rejects_invalid_id(self):
        with pytest.raises(ModelError):
            Model("1bad")


class TestConstruction:
    def test_add_species_creates_default_compartment(self):
        model = Model("m")
        model.add_species("X")
        assert "cell" in model.compartments

    def test_duplicate_species_rejected(self):
        model = Model("m")
        model.add_species("X")
        with pytest.raises(DuplicateIdError):
            model.add_species("X")

    def test_duplicate_parameter_rejected(self):
        model = Model("m")
        model.add_parameter("k", 1.0)
        with pytest.raises(DuplicateIdError):
            model.add_parameter("k", 2.0)

    def test_duplicate_reaction_rejected(self, toy_model):
        with pytest.raises(DuplicateIdError):
            toy_model.add_reaction(
                "degradation_Y",
                reactants=[("Y", 1.0)],
                kinetic_law="kd * Y",
            )

    def test_unknown_compartment_rejected(self):
        model = Model("m")
        model.add_compartment("cell")
        with pytest.raises(UnknownIdError):
            model.add_species("X", compartment="nucleus")

    def test_negative_initial_amount_rejected(self):
        model = Model("m")
        with pytest.raises(ModelError):
            model.add_species("X", initial_amount=-1.0)

    def test_reaction_with_unknown_species_rejected(self):
        model = Model("m")
        model.add_species("X")
        with pytest.raises(UnknownIdError):
            model.add_reaction("r", reactants=[("Z", 1.0)], kinetic_law="1")

    def test_reaction_with_unknown_symbol_rejected(self):
        model = Model("m")
        model.add_species("X")
        with pytest.raises(UnknownIdError):
            model.add_reaction("r", products=[("X", 1.0)], kinetic_law="k_unknown")

    def test_local_parameters_shadow_globals(self):
        model = Model("m")
        model.add_species("X")
        model.add_reaction(
            "r",
            products=[("X", 1.0)],
            kinetic_law=KineticLaw(parse("k"), {"k": 2.0}),
        )
        assert model.reactions["r"].kinetic_law.symbols() == []

    def test_zero_stoichiometry_rejected(self):
        with pytest.raises(ModelError):
            SpeciesReference("X", 0.0)

    def test_compartment_size_must_be_positive(self):
        model = Model("m")
        with pytest.raises(ModelError):
            model.add_compartment("empty", size=0.0)


class TestQueries:
    def test_species_ids_order(self, toy_model):
        assert toy_model.species_ids() == ["A", "Y"]

    def test_initial_state(self, toy_model):
        assert toy_model.initial_state() == {"A": 0.0, "Y": 0.0}

    def test_boundary_species(self, toy_model):
        assert toy_model.boundary_species() == ["A"]

    def test_parameter_values_include_compartments(self, toy_model):
        values = toy_model.parameter_values()
        assert values["kmax"] == 4.0
        assert values["cell"] == 1.0

    def test_net_stoichiometry(self, toy_model):
        production = toy_model.get_reaction("production_Y")
        degradation = toy_model.get_reaction("degradation_Y")
        assert production.net_stoichiometry() == {"Y": 1.0}
        assert degradation.net_stoichiometry() == {"Y": -1.0}

    def test_net_stoichiometry_cancels_catalytic_species(self):
        model = Model("m")
        model.add_species("X", initial_amount=5)
        model.add_species("Y")
        model.add_reaction(
            "r",
            reactants=[("X", 1.0)],
            products=[("X", 1.0), ("Y", 1.0)],
            kinetic_law="X",
        )
        assert model.get_reaction("r").net_stoichiometry() == {"Y": 1.0}

    def test_get_unknown_species_raises(self, toy_model):
        with pytest.raises(UnknownIdError):
            toy_model.get_species("nope")

    def test_set_initial_amount(self, toy_model):
        toy_model.set_initial_amount("Y", 12.0)
        assert toy_model.species["Y"].initial_amount == 12.0
        with pytest.raises(ModelError):
            toy_model.set_initial_amount("Y", -3.0)

    def test_len_and_iter(self, toy_model):
        assert len(toy_model) == 2
        assert [r.sid for r in toy_model] == ["production_Y", "degradation_Y"]


class TestCopyAndMerge:
    def test_copy_is_deep(self, toy_model):
        clone = toy_model.copy()
        clone.set_initial_amount("Y", 99.0)
        clone.parameters["kmax"].value = 123.0
        assert toy_model.species["Y"].initial_amount == 0.0
        assert toy_model.parameters["kmax"].value == 4.0

    def test_copy_preserves_structure(self, toy_model):
        clone = toy_model.copy("renamed")
        assert clone.sid == "renamed"
        assert clone.species_ids() == toy_model.species_ids()
        assert clone.reaction_ids() == toy_model.reaction_ids()

    def test_merge_shares_species(self, toy_model):
        other = Model("stage2")
        other.add_compartment("cell")
        other.add_species("Y")  # shared with toy_model
        other.add_species("Z")
        other.add_parameter("k2", 1.0)
        other.add_reaction(
            "production_Z",
            products=[("Z", 1.0)],
            modifiers=["Y"],
            kinetic_law="k2 * hill_rep(Y, 10, 2)",
        )
        toy_model.merge(other)
        assert "Z" in toy_model.species
        assert "production_Z" in toy_model.reactions
        # The shared species was not duplicated.
        assert toy_model.species_ids().count("Y") == 1

    def test_merge_with_prefix_renames_everything(self, toy_model):
        other = toy_model.copy("copy")
        merged = Model("combined")
        merged.merge(toy_model)
        merged.merge(other, prefix="g2_")
        assert "g2_Y" in merged.species
        assert "g2_production_Y" in merged.reactions
        law = merged.reactions["g2_production_Y"].kinetic_law
        assert "g2_A" in law.math.symbols()

    def test_merge_duplicate_reaction_rejected(self, toy_model):
        with pytest.raises(DuplicateIdError):
            toy_model.merge(toy_model.copy())
