"""Tests for the kinetic-law expression language."""

import math
import xml.etree.ElementTree as ET

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MathParseError, PropensityError
from repro.sbml.ast import (
    BinOp,
    Neg,
    Num,
    Sym,
    compile_function,
    from_mathml,
    parse,
    to_mathml,
)


class TestParsing:
    def test_number(self):
        assert parse("3.5").evaluate({}) == pytest.approx(3.5)

    def test_integer(self):
        assert parse("42").evaluate({}) == 42.0

    def test_scientific_notation(self):
        assert parse("1e-3").evaluate({}) == pytest.approx(0.001)
        assert parse("2.5E2").evaluate({}) == pytest.approx(250.0)

    def test_symbol(self):
        assert parse("x").evaluate({"x": 7.0}) == 7.0

    def test_addition_and_subtraction(self):
        assert parse("1 + 2 - 4").evaluate({}) == -1.0

    def test_multiplication_precedence(self):
        assert parse("2 + 3 * 4").evaluate({}) == 14.0

    def test_division(self):
        assert parse("10 / 4").evaluate({}) == 2.5

    def test_power_right_associative(self):
        assert parse("2 ^ 3 ^ 2").evaluate({}) == 512.0

    def test_unary_minus(self):
        assert parse("-3 + 5").evaluate({}) == 2.0

    def test_unary_plus(self):
        assert parse("+3").evaluate({}) == 3.0

    def test_parentheses(self):
        assert parse("(2 + 3) * 4").evaluate({}) == 20.0

    def test_function_call(self):
        assert parse("exp(0)").evaluate({}) == 1.0

    def test_nested_functions(self):
        assert parse("sqrt(abs(-16))").evaluate({}) == 4.0

    def test_min_max_variadic(self):
        assert parse("min(3, 1, 2)").evaluate({}) == 1.0
        assert parse("max(3, 1, 2)").evaluate({}) == 3.0

    def test_hill_functions(self):
        assert parse("hill_rep(0, 10, 2)").evaluate({}) == 1.0
        assert parse("hill_act(0, 10, 2)").evaluate({}) == 0.0
        assert parse("hill_rep(10, 10, 2)").evaluate({}) == pytest.approx(0.5)
        assert parse("hill_act(10, 10, 2)").evaluate({}) == pytest.approx(0.5)

    def test_hill_rep_plus_act_is_one(self):
        x = parse("hill_rep(x, 8, 3) + hill_act(x, 8, 3)")
        for value in (0.5, 5.0, 20.0):
            assert x.evaluate({"x": value}) == pytest.approx(1.0)

    def test_parse_expr_passthrough(self):
        tree = parse("a + b")
        assert parse(tree) is tree

    def test_empty_expression_rejected(self):
        with pytest.raises(MathParseError):
            parse("   ")

    def test_unknown_function_rejected(self):
        with pytest.raises(MathParseError):
            parse("foo(1)")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(MathParseError):
            parse("1 + 2 )")

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(MathParseError):
            parse("(1 + 2")

    def test_bad_character_rejected(self):
        with pytest.raises(MathParseError):
            parse("a $ b")

    def test_wrong_arity_rejected(self):
        with pytest.raises(PropensityError):
            parse("exp(1, 2)")


class TestEvaluation:
    def test_missing_symbol_raises(self):
        with pytest.raises(PropensityError):
            parse("x + 1").evaluate({})

    def test_symbols_in_order(self):
        assert parse("b * a + b").symbols() == ["b", "a"]

    def test_substitute(self):
        expr = parse("a + b").substitute({"a": parse("2 * c")})
        assert expr.evaluate({"b": 1.0, "c": 3.0}) == 7.0

    def test_infix_roundtrip_preserves_value(self):
        source = "kmax * hill_rep(A, K, n) + 0.5 * (B - C) / (1 + B ^ 2)"
        env = {"kmax": 4.0, "A": 7.0, "K": 10.0, "n": 2.0, "B": 3.0, "C": 1.0}
        tree = parse(source)
        again = parse(tree.to_infix())
        assert again.evaluate(env) == pytest.approx(tree.evaluate(env))

    def test_subtraction_grouping_in_infix(self):
        tree = parse("a - (b - c)")
        env = {"a": 10.0, "b": 4.0, "c": 1.0}
        assert parse(tree.to_infix()).evaluate(env) == pytest.approx(7.0)


class TestCompileFunction:
    def test_matches_interpreter(self):
        expr = "kmax * hill_rep(A, K, n)"
        fn = compile_function(expr, ["A"], {"kmax": 4.0, "K": 10.0, "n": 2.0})
        tree = parse(expr)
        for amount in (0.0, 1.0, 10.0, 55.0):
            expected = tree.evaluate({"A": amount, "kmax": 4.0, "K": 10.0, "n": 2.0})
            assert fn(amount) == pytest.approx(expected)

    def test_multiple_arguments(self):
        fn = compile_function("a * b + c", ["a", "b", "c"])
        assert fn(2.0, 3.0, 4.0) == 10.0

    def test_missing_constant_raises(self):
        with pytest.raises(PropensityError):
            compile_function("a * k", ["a"])

    def test_constants_are_snapshotted_at_compile_time(self):
        constants = {"k": 2.0}
        fn = compile_function("a * k", ["a"], constants)
        assert fn(3.0) == 6.0
        constants["k"] = 5.0
        # Later mutation of the caller's dict must not change compiled laws.
        assert fn(3.0) == 6.0


class TestMathML:
    def _roundtrip(self, text):
        xml = to_mathml(text)
        element = ET.fromstring(xml)
        return from_mathml(element)

    def test_roundtrip_simple(self):
        tree = self._roundtrip("1 + x * 2")
        assert tree.evaluate({"x": 3.0}) == 7.0

    def test_roundtrip_power(self):
        tree = self._roundtrip("x ^ 3")
        assert tree.evaluate({"x": 2.0}) == 8.0

    def test_roundtrip_unary_minus(self):
        tree = self._roundtrip("-x")
        assert tree.evaluate({"x": 2.5}) == -2.5

    def test_roundtrip_named_function(self):
        tree = self._roundtrip("exp(x)")
        assert tree.evaluate({"x": 1.0}) == pytest.approx(math.e)

    def test_hill_functions_expand_to_core_mathml(self):
        xml = to_mathml("hill_rep(A, 10, 2)")
        assert "hill_rep" not in xml
        tree = from_mathml(ET.fromstring(xml))
        assert tree.evaluate({"A": 10.0}) == pytest.approx(0.5)

    def test_namespace_present(self):
        assert "http://www.w3.org/1998/Math/MathML" in to_mathml("1 + 1")

    def test_piecewise_not_serializable(self):
        with pytest.raises(PropensityError):
            to_mathml("piecewise(1, 1, 0)")


# --- property-based tests ----------------------------------------------------

_names = st.sampled_from(["A", "B", "kd", "kmax", "x1"])


def _expressions(depth=0):
    if depth >= 3:
        return st.one_of(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False).map(Num),
            _names.map(Sym),
        )
    sub = st.deferred(lambda: _expressions(depth + 1))
    return st.one_of(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False).map(Num),
        _names.map(Sym),
        st.tuples(st.sampled_from(["+", "-", "*"]), sub, sub).map(
            lambda t: BinOp(t[0], t[1], t[2]),
        ),
        sub.map(Neg),
    )


@given(_expressions())
@settings(max_examples=60, deadline=None)
def test_infix_roundtrip_property(expr):
    """Serializing to infix and re-parsing never changes the value."""
    env = {"A": 3.0, "B": 0.5, "kd": 0.1, "kmax": 4.0, "x1": 7.0}
    reparsed = parse(expr.to_infix())
    assert reparsed.evaluate(env) == pytest.approx(expr.evaluate(env), rel=1e-9, abs=1e-9)


@given(_expressions())
@settings(max_examples=60, deadline=None)
def test_compiled_matches_interpreted_property(expr):
    """Compiled propensities agree with AST interpretation."""
    env = {"A": 3.0, "B": 0.5, "kd": 0.1, "kmax": 4.0, "x1": 7.0}
    names = expr.symbols()
    fn = compile_function(expr, names)
    assert fn(*(env[name] for name in names)) == pytest.approx(
        expr.evaluate(env),
        rel=1e-9,
        abs=1e-9,
    )
