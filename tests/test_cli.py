"""Tests for the genlogic command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "genlogic" in capsys.readouterr().out


class TestSynth:
    def test_hex_spec(self, capsys):
        assert main(["synth", "0x0B"]) == 0
        out = capsys.readouterr().out
        assert "expected behaviour: 0x0B" in out
        assert "NOR" in out

    def test_expression_spec(self, capsys):
        assert main(["synth", "LacI & TetR"]) == 0
        assert "expected behaviour: 0x08" in capsys.readouterr().out

    def test_unknown_circuit_errors_cleanly(self, capsys):
        assert main(["verify", "mystery"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRuntime:
    def test_prints_one_line_per_size(self, capsys):
        assert main(["runtime", "--sizes", "2000", "5000", "--inputs", "2"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 2


class TestSimulateAnalyzeVerify:
    def test_simulate_then_analyze(self, tmp_path, capsys):
        csv_path = tmp_path / "not.csv"
        code = main(
            [
                "simulate",
                "not",
                "--out",
                str(csv_path),
                "--hold-time",
                "100",
                "--simulator",
                "ode",
            ],
        )
        assert code == 0
        assert csv_path.exists()
        capsys.readouterr()

        json_path = tmp_path / "result.json"
        code = main(
            [
                "analyze",
                str(csv_path),
                "--threshold",
                "15",
                "--expected",
                "~LacI",
                "--json",
                str(json_path),
            ],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Boolean expression" in out
        payload = json.loads(json_path.read_text())
        assert payload["verification"]["matches"] is True

    def test_verify_builtin_circuit(self, capsys, tmp_path):
        json_path = tmp_path / "verify.json"
        code = main(
            [
                "verify",
                "and",
                "--hold-time",
                "120",
                "--seed",
                "7",
                "--json",
                str(json_path),
            ],
        )
        assert code == 0
        assert "MATCH" in capsys.readouterr().out
        assert json.loads(json_path.read_text())["gate_name"] == "AND"

    def test_verify_cello_circuit_by_hex_name(self, capsys):
        code = main(["verify", "0x04", "--hold-time", "150", "--seed", "11"])
        assert code == 0
        assert "0x04" in capsys.readouterr().out

    def test_simulate_sbml_requires_species(self, tmp_path, capsys, toy_model):
        from repro.sbml import write_sbml_file

        sbml_path = tmp_path / "toy.xml"
        write_sbml_file(toy_model, sbml_path)
        assert main(["simulate", str(sbml_path), "--out", str(tmp_path / "x.csv")]) == 2
        capsys.readouterr()
        code = main(
            [
                "simulate",
                str(sbml_path),
                "--out",
                str(tmp_path / "toy.csv"),
                "--inputs",
                "A",
                "--output",
                "Y",
                "--hold-time",
                "80",
                "--simulator",
                "ode",
            ],
        )
        assert code == 0


class TestEnsembleFlags:
    def test_verify_replicate_study(self, tmp_path, capsys):
        json_path = tmp_path / "study.json"
        code = main(
            [
                "verify",
                "and",
                "--hold-time",
                "100",
                "--seed",
                "7",
                "--replicates",
                "3",
                "--json",
                str(json_path),
            ],
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "3 replicates" in out
        assert "runs/s" in out
        payload = json.loads(json_path.read_text())
        assert payload["n_replicates"] == 3
        assert payload["recovery_rate"] == 1.0
        assert payload["engine"]["executor"] == "serial"

    def test_verify_replicates_parallel_matches_serial(self, capsys):
        code = main(
            [
                "verify",
                "and",
                "--hold-time",
                "100",
                "--seed",
                "7",
                "--replicates",
                "2",
                "--jobs",
                "2",
            ],
        )
        assert code == 0
        parallel_out = capsys.readouterr().out
        assert "process-pool" in parallel_out
        code = main(
            ["verify", "and", "--hold-time", "100", "--seed", "7", "--replicates", "2"],
        )
        assert code == 0
        serial_out = capsys.readouterr().out
        # Same study line (recovery rate and fitness) regardless of --jobs.
        assert parallel_out.splitlines()[0] == serial_out.splitlines()[0]

    def test_simulate_replicates_writes_one_csv_each(self, tmp_path, capsys):
        out = tmp_path / "runs.csv"
        code = main(
            [
                "simulate",
                "not",
                "--out",
                str(out),
                "--hold-time",
                "60",
                "--simulator",
                "ode",
                "--replicates",
                "2",
            ],
        )
        assert code == 0
        assert (tmp_path / "runs-r0.csv").exists()
        assert (tmp_path / "runs-r1.csv").exists()
        assert not out.exists()

    def test_replicate_out_path_handles_dotted_directories(self, tmp_path, capsys):
        from repro.cli import _replicate_out_path

        assert _replicate_out_path("results.v2/run", 0) == "results.v2/run-r0"
        assert _replicate_out_path("a/b.csv", 3) == "a/b-r3.csv"
        assert _replicate_out_path("plain", 1) == "plain-r1"

    def test_jobs_without_replicates_prints_note(self, capsys):
        code = main(
            ["verify", "not", "--hold-time", "80", "--simulator", "ode", "--jobs", "4"],
        )
        assert code == 0
        assert "--jobs only parallelises replicate batches" in capsys.readouterr().err

    def test_invalid_replicates_rejected(self, capsys):
        assert main(["verify", "and", "--replicates", "0"]) == 2
        capsys.readouterr()
        assert main(["simulate", "not", "--out", "x.csv", "--replicates", "0"]) == 2
        capsys.readouterr()

    def test_invalid_jobs_rejected(self, capsys):
        for argv in (
            ["verify", "and", "--jobs", "0"],
            ["simulate", "not", "--out", "x.csv", "--jobs", "-4"],
            ["runtime", "--sizes", "2000", "--jobs", "0"],
        ):
            assert main(argv) == 2
            assert "--jobs must be at least 1" in capsys.readouterr().err

    def test_runtime_flags(self, capsys):
        code = main(
            ["runtime", "--sizes", "2000", "--inputs", "2", "--replicates", "1", "--jobs", "2"],
        )
        assert code == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 1


class TestProgressLine:
    def test_off_by_default_without_a_tty(self, capsys):
        """CI logs stay clean: no carriage returns unless stderr is a TTY."""
        code = main(["verify", "and", "--hold-time", "100", "--seed", "7", "--replicates", "2"])
        assert code == 0
        captured = capsys.readouterr()
        assert "\r" not in captured.err
        assert "\r" not in captured.out

    def test_forced_on_with_progress_flag(self, capsys):
        code = main(
            [
                "verify",
                "and",
                "--hold-time",
                "100",
                "--seed",
                "7",
                "--replicates",
                "2",
                "--progress",
            ],
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "\r1/2 runs" in err
        # The line is erased once the batch finishes.
        assert err.endswith("\r")

    def test_forced_off_with_no_progress_flag(self, capsys):
        code = main(
            [
                "runtime",
                "--sizes",
                "2000",
                "--inputs",
                "2",
                "--replicates",
                "1",
                "--no-progress",
            ],
        )
        assert code == 0
        assert "\r" not in capsys.readouterr().err

    def test_runtime_progress_counts_sizes(self, capsys):
        code = main(
            [
                "runtime",
                "--sizes",
                "2000",
                "4000",
                "--inputs",
                "2",
                "--replicates",
                "1",
                "--progress",
            ],
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "\r1/2 sizes" in err

    def test_simulate_replicates_progress(self, tmp_path, capsys):
        out = tmp_path / "runs.csv"
        code = main(
            [
                "simulate",
                "not",
                "--out",
                str(out),
                "--hold-time",
                "60",
                "--simulator",
                "ode",
                "--replicates",
                "2",
                "--progress",
            ],
        )
        assert code == 0
        assert "\r1/2 runs" in capsys.readouterr().err

    def test_hook_helper_respects_non_tty_stream(self):
        import argparse

        from repro.cli import _progress_hook

        args = argparse.Namespace(progress=None)
        assert _progress_hook(args) is None  # pytest's stderr is not a TTY


class TestList:
    def test_cello_only_listing(self, capsys):
        assert main(["list", "--cello-only"]) == 0
        out = capsys.readouterr().out
        assert "cello_0x0b" in out
        assert out.count("\n") == 10


class TestSearch:
    SMALL = [
        "search",
        "0x8",
        "--inputs",
        "LacI",
        "TetR",
        "--library",
        "diverse",
        "--max-candidates",
        "4",
        "--n0",
        "2",
        "--fixed-replicates",
        "2",
        "--hold-time",
        "20",
        "--seed",
        "7",
    ]

    def test_needs_function_or_spec(self, capsys):
        assert main(["search"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_smoke_run_with_json(self, capsys, tmp_path):
        json_path = tmp_path / "frontier.json"
        assert main([*self.SMALL, "--json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "design fitness" in out
        assert "replicates via" in out
        payload = json.loads(json_path.read_text())
        assert payload["n_candidates"] == 4
        assert payload["allocator"] == "racing"
        assert payload["entries"][0]["rank"] == 1

    def test_variant_flag_extends_the_grid(self, capsys):
        assert main([*self.SMALL, "--variant", "kd_YFP=0.5"]) == 0
        capsys.readouterr()

    def test_malformed_variant_rejected(self, capsys):
        assert main([*self.SMALL, "--variant", "kmax"]) == 2
        assert "NAME=VALUE" in capsys.readouterr().err

    def test_malformed_variant_value_rejected(self, capsys):
        assert main([*self.SMALL, "--variant", "kmax=fast"]) == 2
        assert "not a number" in capsys.readouterr().err

    def test_spec_file_round_trip(self, capsys, tmp_path):
        from repro.search import SearchSpec

        spec = SearchSpec(
            function="0x8",
            inputs=("LacI", "TetR"),
            library="diverse",
            max_candidates=4,
            n0=2,
            fixed_replicates=2,
            hold_time=20.0,
            seed=7,
        )
        path = tmp_path / "search.json"
        path.write_text(spec.to_json())
        assert main(["search", "--spec", str(path)]) == 0
        assert "design fitness" in capsys.readouterr().out

    def test_spec_file_conflicts_with_flags(self, capsys, tmp_path):
        path = tmp_path / "search.json"
        path.write_text("{}")
        assert main(["search", "0x8", "--spec", str(path)]) == 2
        assert "may not be combined" in capsys.readouterr().err

    def test_missing_spec_file_errors_cleanly(self, capsys):
        assert main(["search", "--spec", "/no/such/file.json"]) == 2
        assert "cannot read spec file" in capsys.readouterr().err
