"""Package-level tests: public API surface, version, error hierarchy."""

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_version_matches_metadata(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_headline_workflow_symbols_exported(self):
        for name in (
            "and_gate_circuit",
            "cello_circuit",
            "run_logic_experiment",
            "LogicAnalyzer",
            "TruthTable",
            "simulate_ssa",
            "estimate_threshold",
            "format_analysis_report",
        ):
            assert name in repro.__all__

    def test_subpackage_all_lists_resolve(self):
        import repro.analysis
        import repro.core
        import repro.gates
        import repro.logic
        import repro.sbml
        import repro.sbol
        import repro.stochastic
        import repro.vlab

        for module in (
            repro.core,
            repro.gates,
            repro.logic,
            repro.sbml,
            repro.sbol,
            repro.stochastic,
            repro.vlab,
            repro.analysis,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError)

    def test_specific_errors_carry_context(self):
        duplicate = errors.DuplicateIdError("species", "GFP")
        assert duplicate.kind == "species"
        assert "GFP" in str(duplicate)

        unknown = errors.UnknownIdError("reaction", "r1")
        assert unknown.identifier == "r1"

        negative = errors.NegativeStateError("X", -2.0, 12.5)
        assert negative.species == "X"
        assert "12.5" in str(negative)

        validation = errors.ValidationError(["a problem", "another"])
        assert len(validation.messages) == 2
        assert "another" in str(validation)

        parse = errors.MathParseError("1 +", 3, "unexpected end")
        assert parse.position == 3

    def test_catching_the_base_class_is_sufficient(self):
        from repro.sbml import Model

        with pytest.raises(errors.ReproError):
            Model("1bad")
        with pytest.raises(errors.ReproError):
            repro.TruthTable(["A"], [0, 1, 1])
