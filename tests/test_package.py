"""Package-level tests: public API surface, version, error hierarchy."""

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_version_matches_metadata(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_headline_workflow_symbols_exported(self):
        for name in (
            "and_gate_circuit",
            "cello_circuit",
            "run_logic_experiment",
            "LogicAnalyzer",
            "TruthTable",
            "simulate_ssa",
            "estimate_threshold",
            "format_analysis_report",
        ):
            assert name in repro.__all__

    def test_subpackage_all_lists_resolve(self):
        import repro.analysis
        import repro.core
        import repro.gates
        import repro.logic
        import repro.sbml
        import repro.sbol
        import repro.stochastic
        import repro.vlab

        for module in (
            repro.core,
            repro.gates,
            repro.logic,
            repro.sbml,
            repro.sbol,
            repro.stochastic,
            repro.vlab,
            repro.analysis,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name} missing"

    def test_all_matches_readme_public_surface(self):
        """The README's "Public surface" block IS repro.__all__, exactly.

        A name exported but undocumented (or documented but not exported)
        fails here, so the README cannot drift from the package.
        """
        import re
        from pathlib import Path

        readme = Path(__file__).resolve().parent.parent / "README.md"
        text = readme.read_text(encoding="utf-8")
        match = re.search(r"## Public surface.*?```text\n(.*?)```", text, re.DOTALL)
        assert match, "README.md must keep a '## Public surface' section with a text block"
        documented = set(match.group(1).split())
        exported = set(repro.__all__)
        assert documented == exported, (
            f"README but not exported: {sorted(documented - exported)}; "
            f"exported but not in README: {sorted(exported - documented)}"
        )

    def test_service_entry_points_exported(self):
        import repro.engine

        for name in ("StudySpec", "run_replicate_study", "serve", "AnalysisService"):
            assert name in repro.__all__
        for name in ("StudySpec", "STUDY_SPEC_SCHEMA", "canonical_workers"):
            assert name in repro.engine.__all__


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError)

    def test_specific_errors_carry_context(self):
        duplicate = errors.DuplicateIdError("species", "GFP")
        assert duplicate.kind == "species"
        assert "GFP" in str(duplicate)

        unknown = errors.UnknownIdError("reaction", "r1")
        assert unknown.identifier == "r1"

        negative = errors.NegativeStateError("X", -2.0, 12.5)
        assert negative.species == "X"
        assert "12.5" in str(negative)

        validation = errors.ValidationError(["a problem", "another"])
        assert len(validation.messages) == 2
        assert "another" in str(validation)

        parse = errors.MathParseError("1 +", 3, "unexpected end")
        assert parse.position == 3

    def test_catching_the_base_class_is_sufficient(self):
        from repro.sbml import Model

        with pytest.raises(errors.ReproError):
            Model("1bad")
        with pytest.raises(errors.ReproError):
            repro.TruthTable(["A"], [0, 1, 1])
