"""Tests for SBOL part definitions."""

import pytest

from repro.errors import ModelError
from repro.sbol import ComponentDefinition, Role, cds, promoter, protein, rbs, terminator


class TestComponentDefinition:
    def test_name_defaults_to_display_id(self):
        part = promoter("pTac")
        assert part.name == "pTac"
        assert part.role == Role.PROMOTER

    def test_invalid_display_id_rejected(self):
        with pytest.raises(ModelError):
            ComponentDefinition("1bad", Role.PROMOTER)

    def test_unknown_role_rejected(self):
        with pytest.raises(ModelError):
            ComponentDefinition("part", "enhancer")

    def test_dna_vs_species_classification(self):
        assert promoter("p1").is_dna
        assert rbs("r1").is_dna
        assert cds("c1").is_dna
        assert terminator("t1").is_dna
        assert not promoter("p2").is_species
        assert protein("LacI").is_species
        assert not protein("TetR").is_dna

    def test_sequence_normalised_and_checked(self):
        part = cds("gfp", name="GFP coding sequence")
        assert part.sequence is None
        with_seq = ComponentDefinition("gfp2", Role.CDS, sequence="ATGCat")
        assert with_seq.sequence == "atgcat"
        with pytest.raises(ModelError):
            ComponentDefinition("bad_seq", Role.CDS, sequence="ATGXX")

    def test_properties_passed_through_helpers(self):
        part = promoter("pPhlF", strength=3.5, K=9.0)
        assert part.properties == {"strength": 3.5, "K": 9.0}
        repressor = protein("PhlF", K=9.0, n=2.0, degradation=0.2)
        assert repressor.properties["degradation"] == 0.2


class TestRoleSets:
    def test_role_partitions_are_disjoint(self):
        assert not (Role.DNA_ROLES & Role.SPECIES_ROLES)

    def test_all_roles_covered(self):
        assert Role.ALL == Role.DNA_ROLES | Role.SPECIES_ROLES
