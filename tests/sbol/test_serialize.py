"""Tests for SBOL XML serialization."""

import pytest

from repro.errors import SBOLParseError
from repro.sbol import (
    read_sbol_file,
    read_sbol_string,
    sbol_to_sbml,
    write_sbol_file,
    write_sbol_string,
)
from repro.stochastic import InputSchedule, simulate_ode


class TestRoundTrip:
    def test_structure_survives(self, and_circuit):
        document = and_circuit.document
        again = read_sbol_string(write_sbol_string(document))
        assert set(again.components) == set(document.components)
        assert set(again.units) == set(document.units)
        assert set(again.interactions) == set(document.interactions)
        assert again.display_id == document.display_id

    def test_roles_and_properties_survive(self, and_circuit):
        document = and_circuit.document
        again = read_sbol_string(write_sbol_string(document))
        for display_id, component in document.components.items():
            assert again.components[display_id].role == component.role
            assert again.components[display_id].properties == pytest.approx(
                component.properties,
            )

    def test_unit_part_order_survives(self, and_circuit):
        document = and_circuit.document
        again = read_sbol_string(write_sbol_string(document))
        for display_id, unit in document.units.items():
            assert again.units[display_id].parts == unit.parts

    def test_file_roundtrip(self, and_circuit, tmp_path):
        path = tmp_path / "design.xml"
        write_sbol_file(and_circuit.document, path)
        again = read_sbol_file(path)
        assert set(again.components) == set(and_circuit.document.components)

    def test_cello_document_roundtrip(self, cello_0x0b):
        again = read_sbol_string(write_sbol_string(cello_0x0b.document))
        assert again.validate() == []
        assert set(again.produced_species()) == set(cello_0x0b.document.produced_species())

    def test_roundtripped_document_converts_to_equivalent_model(self, not_circuit):
        """SBOL file -> SBOL document -> SBML model must behave identically."""
        again = read_sbol_string(write_sbol_string(not_circuit.document))
        model = sbol_to_sbml(again, model_id="roundtripped")
        schedule = InputSchedule().add(0.0, {"LacI": 0.0}).add(150.0, {"LacI": 40.0})
        trajectory = simulate_ode(model, 300.0, schedule=schedule)
        assert trajectory.value_at("GFP", 149.0) > 25.0
        assert trajectory.value_at("GFP", 299.0) < 10.0

    def test_double_roundtrip_is_stable(self, and_circuit):
        once = write_sbol_string(read_sbol_string(write_sbol_string(and_circuit.document)))
        twice = write_sbol_string(read_sbol_string(once))
        assert once == twice


class TestErrors:
    def test_malformed_xml(self):
        with pytest.raises(SBOLParseError):
            read_sbol_string("<sbolDocument><listOfComponents>")

    def test_wrong_root(self):
        with pytest.raises(SBOLParseError):
            read_sbol_string("<notSBOL/>")

    def test_component_without_role(self):
        text = (
            '<sbolDocument displayId="d"><listOfComponents>'
            '<component displayId="x"/></listOfComponents></sbolDocument>'
        )
        with pytest.raises(SBOLParseError):
            read_sbol_string(text)

    def test_unit_without_id(self):
        text = (
            '<sbolDocument displayId="d"><listOfTranscriptionalUnits>'
            "<transcriptionalUnit/></listOfTranscriptionalUnits></sbolDocument>"
        )
        with pytest.raises(SBOLParseError):
            read_sbol_string(text)
