"""Tests for the SBOL→SBML converter."""

import pytest

from repro.errors import ConversionError
from repro.sbml import validate_model
from repro.sbol import (
    ConversionParameters,
    SBOLDocument,
    cds,
    promoter,
    protein,
    sbol_to_sbml,
    terminator,
)
from repro.stochastic import InputSchedule, simulate_ode


def _not_gate_document(**promoter_props) -> SBOLDocument:
    doc = SBOLDocument("not_gate")
    doc.add_components(
        [
            protein("LacI"),
            protein("GFP"),
            promoter("pTac", **promoter_props),
            cds("cds_gfp"),
            terminator("t1"),
        ],
    )
    doc.add_unit("tu", ["pTac", "cds_gfp", "t1"])
    doc.add_repression("LacI", "pTac")
    doc.add_production("cds_gfp", "GFP")
    return doc


def _tandem_or_document() -> SBOLDocument:
    """Two repressible promoters in one unit: NOT(A) OR NOT(B) behaviour."""
    doc = SBOLDocument("tandem")
    doc.add_components(
        [
            protein("LacI"),
            protein("TetR"),
            protein("CI"),
            promoter("P1"),
            promoter("P2"),
            cds("c"),
            terminator("t"),
        ],
    )
    doc.add_unit("tu", ["P1", "P2", "c", "t"])
    doc.add_repression("LacI", "P1")
    doc.add_repression("TetR", "P2")
    doc.add_production("c", "CI")
    return doc


class TestStructure:
    def test_species_partition(self):
        model = sbol_to_sbml(_not_gate_document())
        assert model.species["LacI"].boundary_condition is True
        assert model.species["GFP"].boundary_condition is False

    def test_reactions_created(self):
        model = sbol_to_sbml(_not_gate_document())
        assert "production_tu_GFP" in model.reactions
        assert "degradation_GFP" in model.reactions

    def test_modifiers_listed(self):
        model = sbol_to_sbml(_not_gate_document())
        assert model.reactions["production_tu_GFP"].modifiers == ["LacI"]

    def test_generated_model_is_valid(self):
        assert validate_model(sbol_to_sbml(_not_gate_document())) == []
        assert validate_model(sbol_to_sbml(_tandem_or_document())) == []

    def test_initial_input_amounts(self):
        model = sbol_to_sbml(_not_gate_document(), input_amounts={"LacI": 25.0})
        assert model.species["LacI"].initial_amount == pytest.approx(25.0)

    def test_invalid_document_rejected(self):
        doc = SBOLDocument("broken")
        doc.add_components([promoter("p"), cds("c"), terminator("t")])
        doc.add_unit("tu", ["p", "c", "t"])  # CDS has no product
        with pytest.raises(ConversionError):
            sbol_to_sbml(doc)

    def test_tandem_promoters_sum_their_activity(self):
        model = sbol_to_sbml(_tandem_or_document())
        law = model.reactions["production_tu_CI"].kinetic_law.math.to_infix()
        assert law.count("hill_rep") == 2
        assert "+" in law


class TestParameterHandling:
    def test_defaults_applied(self):
        parameters = ConversionParameters(promoter_strength=6.0, degradation_rate=0.2)
        model = sbol_to_sbml(_not_gate_document(), parameters=parameters)
        kmax = [p for p in model.parameters.values() if p.sid.endswith("_kmax")]
        assert kmax and kmax[0].value == pytest.approx(6.0)
        assert model.parameters["kd_GFP"].value == pytest.approx(0.2)

    def test_part_properties_override_defaults(self):
        model = sbol_to_sbml(_not_gate_document(strength=9.0))
        kmax = [p for p in model.parameters.values() if p.sid.endswith("_kmax")]
        assert kmax and kmax[0].value == pytest.approx(9.0)

    def test_protein_properties_set_repression_constants(self):
        doc = _not_gate_document()
        doc.components["LacI"].properties.update({"K": 7.0, "n": 4.0})
        model = sbol_to_sbml(doc)
        k_params = [p.value for p in model.parameters.values() if "_K0" in p.sid]
        n_params = [p.value for p in model.parameters.values() if "_n0" in p.sid]
        assert k_params == [pytest.approx(7.0)]
        assert n_params == [pytest.approx(4.0)]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConversionError):
            ConversionParameters(promoter_strength=0.0)
        with pytest.raises(ConversionError):
            ConversionParameters(leak_fraction=1.5)
        with pytest.raises(ConversionError):
            ConversionParameters(degradation_rate=-0.1)


class TestBehaviour:
    """The converted models must actually behave as the structure dictates."""

    def test_not_gate_inverts(self):
        model = sbol_to_sbml(_not_gate_document())
        low = simulate_ode(model, 150.0, schedule=InputSchedule().add(0.0, {"LacI": 0.0}))
        high = simulate_ode(model, 150.0, schedule=InputSchedule().add(0.0, {"LacI": 40.0}))
        assert low.value_at("GFP", 149.0) > 25.0
        assert high.value_at("GFP", 149.0) < 5.0

    def test_tandem_unit_behaves_as_nand(self):
        model = sbol_to_sbml(_tandem_or_document())
        def settled(a, b):
            schedule = InputSchedule().add(0.0, {"LacI": a, "TetR": b})
            return simulate_ode(model, 150.0, schedule=schedule).value_at("CI", 149.0)
        assert settled(0, 0) > 25.0      # both promoters active
        assert settled(40, 0) > 25.0     # one promoter still active
        assert settled(0, 40) > 25.0
        assert settled(40, 40) < 10.0    # both repressed -> only leak remains

    def test_leak_fraction_zero_gives_tighter_off_state(self):
        tight = sbol_to_sbml(
            _not_gate_document(),
            parameters=ConversionParameters(leak_fraction=0.0),
        )
        leaky = sbol_to_sbml(
            _not_gate_document(),
            parameters=ConversionParameters(leak_fraction=0.05),
        )
        schedule = InputSchedule().add(0.0, {"LacI": 40.0})
        off_tight = simulate_ode(tight, 150.0, schedule=schedule).value_at("GFP", 149.0)
        off_leaky = simulate_ode(leaky, 150.0, schedule=schedule).value_at("GFP", 149.0)
        assert off_tight < off_leaky
