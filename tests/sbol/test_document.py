"""Tests for SBOL documents (transcriptional units and interactions)."""

import pytest

from repro.errors import DuplicateIdError, ModelError, UnknownIdError
from repro.sbol import (
    InteractionType,
    ParticipationRole,
    Role,
    SBOLDocument,
    cds,
    promoter,
    protein,
    terminator,
)


def _figure1_document() -> SBOLDocument:
    """The structure of the paper's Figure 1 AND gate."""
    doc = SBOLDocument("and_gate")
    doc.add_components(
        [
            protein("LacI"),
            protein("TetR"),
            protein("CI"),
            protein("GFP"),
            promoter("P1"),
            promoter("P2"),
            promoter("P3"),
            cds("cds_ci_a"),
            cds("cds_ci_b"),
            cds("cds_gfp"),
            terminator("T1"),
            terminator("T2"),
            terminator("T3"),
        ],
    )
    doc.add_unit("tu1", ["P1", "cds_ci_a", "T1"])
    doc.add_unit("tu2", ["P2", "cds_ci_b", "T2"])
    doc.add_unit("tu3", ["P3", "cds_gfp", "T3"])
    doc.add_repression("LacI", "P1")
    doc.add_repression("TetR", "P2")
    doc.add_repression("CI", "P3")
    doc.add_production("cds_ci_a", "CI")
    doc.add_production("cds_ci_b", "CI")
    doc.add_production("cds_gfp", "GFP")
    return doc


@pytest.fixture()
def figure1():
    return _figure1_document()


class TestConstruction:
    def test_duplicate_component_rejected(self, figure1):
        with pytest.raises(DuplicateIdError):
            figure1.add_component(protein("LacI"))

    def test_ensure_component_is_idempotent(self, figure1):
        before = len(figure1.components)
        figure1.ensure_component(protein("LacI"))
        assert len(figure1.components) == before

    def test_ensure_component_role_conflict_rejected(self, figure1):
        with pytest.raises(ModelError):
            figure1.ensure_component(promoter("LacI"))

    def test_unit_requires_known_parts(self, figure1):
        with pytest.raises(UnknownIdError):
            figure1.add_unit("bad", ["P1", "missing_part", "T1"])

    def test_unit_rejects_non_dna_parts(self, figure1):
        with pytest.raises(ModelError):
            figure1.add_unit("bad", ["P1", "LacI", "T1"])

    def test_repression_requires_promoter_target(self, figure1):
        with pytest.raises(ModelError):
            figure1.add_repression("LacI", "cds_gfp")

    def test_production_requires_cds_template(self, figure1):
        with pytest.raises(ModelError):
            figure1.add_production("P1", "GFP")

    def test_unknown_participation_role_rejected(self, figure1):
        with pytest.raises(ModelError):
            figure1.add_interaction(
                "weird",
                InteractionType.INHIBITION,
                [("catalyst", "LacI")],
            )

    def test_unknown_interaction_type_rejected(self, figure1):
        with pytest.raises(ModelError):
            figure1.add_interaction(
                "weird",
                "binding",
                [(ParticipationRole.INHIBITOR, "LacI")],
            )


class TestQueries:
    def test_repressors_of(self, figure1):
        assert figure1.repressors_of("P1") == ["LacI"]
        assert figure1.repressors_of("P3") == ["CI"]

    def test_activators_of_empty(self, figure1):
        assert figure1.activators_of("P1") == []

    def test_product_of_cds(self, figure1):
        assert figure1.product_of_cds("cds_ci_a") == "CI"
        assert figure1.product_of_cds("cds_gfp") == "GFP"

    def test_produced_species(self, figure1):
        assert set(figure1.produced_species()) == {"CI", "GFP"}

    def test_input_species(self, figure1):
        assert set(figure1.input_species()) == {"LacI", "TetR"}

    def test_genetic_component_count(self, figure1):
        # 3 promoters + 3 CDS + 3 terminators
        assert figure1.genetic_component_count() == 9

    def test_components_with_role(self, figure1):
        assert len(figure1.components_with_role(Role.PROMOTER)) == 3

    def test_activation_support(self):
        doc = SBOLDocument("act")
        doc.add_components(
            [protein("LuxR"), protein("GFP"), promoter("pLux"), cds("c"), terminator("t")],
        )
        doc.add_unit("tu", ["pLux", "c", "t"])
        doc.add_activation("LuxR", "pLux")
        doc.add_production("c", "GFP")
        assert doc.activators_of("pLux") == ["LuxR"]
        assert doc.input_species() == ["LuxR"]


class TestValidation:
    def test_valid_document(self, figure1):
        assert figure1.validate() == []

    def test_missing_promoter_reported(self):
        doc = SBOLDocument("d")
        doc.add_components([cds("c"), terminator("t"), protein("X")])
        doc.add_unit("tu", ["c", "t"])
        doc.add_production("c", "X")
        assert any("no promoter" in p for p in doc.validate())

    def test_missing_terminator_reported(self):
        doc = SBOLDocument("d")
        doc.add_components([promoter("p"), cds("c"), protein("X")])
        doc.add_unit("tu", ["p", "c"])
        doc.add_production("c", "X")
        assert any("terminator" in p for p in doc.validate())

    def test_cds_without_product_reported(self):
        doc = SBOLDocument("d")
        doc.add_components([promoter("p"), cds("c"), terminator("t")])
        doc.add_unit("tu", ["p", "c", "t"])
        assert any("no declared protein product" in p for p in doc.validate())

    def test_empty_document_reported(self):
        assert any("no transcriptional units" in p for p in SBOLDocument("d").validate())
