"""Tests for the virtual-laboratory experiment driver."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.vlab import LogicExperiment, custom_protocol, exhaustive_protocol, run_logic_experiment


class TestConfiguration:
    def test_for_circuit(self, and_circuit):
        experiment = LogicExperiment.for_circuit(and_circuit)
        assert experiment.input_species == ["LacI", "TetR"]
        assert experiment.output_species == "GFP"
        assert experiment.input_high == 40.0

    def test_requires_boundary_inputs(self, and_circuit):
        with pytest.raises(ExperimentError):
            LogicExperiment(
                model=and_circuit.model,
                input_species=["CI"],  # produced species, not clamped
                output_species="GFP",
            )

    def test_unknown_species_rejected(self, and_circuit):
        with pytest.raises(ExperimentError):
            LogicExperiment(
                model=and_circuit.model,
                input_species=["LacI", "Missing"],
                output_species="GFP",
            )

    def test_output_equal_input_rejected(self, and_circuit):
        with pytest.raises(ExperimentError):
            LogicExperiment(
                model=and_circuit.model,
                input_species=["LacI", "TetR"],
                output_species="LacI",
            )

    def test_unknown_simulator_rejected(self, and_circuit):
        with pytest.raises(ExperimentError):
            LogicExperiment.for_circuit(and_circuit, simulator="quantum")

    def test_bad_levels_rejected(self, and_circuit):
        with pytest.raises(ExperimentError):
            LogicExperiment(
                model=and_circuit.model,
                input_species=["LacI", "TetR"],
                output_species="GFP",
                input_high=0.0,
            )


class TestRun:
    def test_default_protocol_covers_all_combinations(self, and_gate_log):
        indices = and_gate_log.applied_combination_indices()
        assert set(np.unique(indices)) == {0, 1, 2, 3}
        # Two repeats of 4 combinations, 150 time units each, 1 sample / unit.
        assert and_gate_log.n_samples == 2 * 4 * 150 + 1

    def test_hold_time_recorded(self, and_gate_log):
        assert and_gate_log.hold_time == 150.0

    def test_circuit_name_recorded(self, and_gate_log):
        assert and_gate_log.circuit_name == "and_gate"

    def test_applied_levels_match_protocol(self, and_gate_log):
        applied = and_gate_log.applied_inputs["TetR"]
        assert set(np.unique(applied)) == {0.0, 40.0}

    def test_explicit_protocol(self, not_circuit):
        experiment = LogicExperiment.for_circuit(not_circuit, simulator="ode")
        protocol = custom_protocol([(0,), (1,), (0,)], hold_time=60.0)
        log = experiment.run(protocol=protocol)
        assert log.n_samples == 181
        assert log.output_trace()[100] < 15.0  # input high -> NOT output low

    def test_protocol_input_count_mismatch(self, and_circuit):
        experiment = LogicExperiment.for_circuit(and_circuit, simulator="ode")
        with pytest.raises(ExperimentError):
            experiment.run(protocol=exhaustive_protocol(3, hold_time=10.0))

    def test_total_time_must_cover_protocol(self, not_circuit):
        experiment = LogicExperiment.for_circuit(not_circuit, simulator="ode")
        with pytest.raises(ExperimentError):
            experiment.run(hold_time=100.0, total_time=50.0)

    def test_ode_and_ssa_agree_on_logic_levels(self, not_circuit):
        ssa_log = LogicExperiment.for_circuit(not_circuit, simulator="ssa").run(
            hold_time=120.0,
            rng=5,
        )
        ode_log = LogicExperiment.for_circuit(not_circuit, simulator="ode").run(hold_time=120.0)
        # Settled windows: last 40 units of each 120-unit hold.
        for log in (ssa_log, ode_log):
            output = log.output_trace()
            assert output[80:120].mean() > 25.0   # input low -> high output
            assert output[200:240].mean() < 10.0  # input high -> low output

    def test_seed_reproducibility(self, not_circuit):
        experiment = LogicExperiment.for_circuit(not_circuit, simulator="ssa")
        a = experiment.run(hold_time=80.0, rng=9)
        b = experiment.run(hold_time=80.0, rng=9)
        assert np.array_equal(a.trajectory.data, b.trajectory.data)


class TestRunLogicExperimentWrapper:
    def test_with_circuit(self, not_circuit):
        log = run_logic_experiment(not_circuit, hold_time=60.0, simulator="ode")
        assert log.output_species == "GFP"
        assert log.n_samples == 121

    def test_with_raw_model_requires_species(self, toy_model):
        with pytest.raises(ExperimentError):
            run_logic_experiment(toy_model, hold_time=50.0)

    def test_with_raw_model(self, toy_model):
        log = run_logic_experiment(
            toy_model,
            input_species=["A"],
            output_species="Y",
            hold_time=60.0,
            simulator="ode",
        )
        assert log.input_species == ["A"]
        assert log.n_samples == 121
