"""Tests for simulation data logs."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.stochastic import Trajectory
from repro.vlab import SimulationDataLog


def _make_log(n=8):
    times = np.arange(float(n))
    trajectory = Trajectory.from_dict(
        times,
        {
            "A": np.array([0, 0, 0, 0, 40, 40, 40, 40], dtype=float)[:n],
            "B": np.zeros(n),
            "Y": np.array([30, 32, 31, 29, 2, 1, 3, 2], dtype=float)[:n],
        },
    )
    applied = {
        "A": np.array([0, 0, 0, 0, 40, 40, 40, 40], dtype=float)[:n],
        "B": np.zeros(n),
    }
    return SimulationDataLog(
        trajectory=trajectory,
        input_species=["A", "B"],
        output_species="Y",
        applied_inputs=applied,
        input_high=40.0,
        input_low=0.0,
        hold_time=4.0,
        circuit_name="toy",
    )


class TestConstruction:
    def test_basic_properties(self):
        log = _make_log()
        assert log.n_inputs == 2
        assert log.n_samples == 8
        assert log.recorded_species() == ["A", "B", "Y"]

    def test_output_cannot_be_an_input(self):
        with pytest.raises(AnalysisError):
            SimulationDataLog(
                trajectory=Trajectory.from_dict([0.0], {"A": [1.0]}),
                input_species=["A"],
                output_species="A",
                applied_inputs={"A": np.array([1.0])},
                input_high=40.0,
            )

    def test_missing_species_rejected(self):
        trajectory = Trajectory.from_dict([0.0, 1.0], {"A": [0.0, 1.0]})
        with pytest.raises(AnalysisError):
            SimulationDataLog(
                trajectory=trajectory,
                input_species=["A"],
                output_species="Y",
                applied_inputs={"A": np.zeros(2)},
                input_high=40.0,
            )

    def test_applied_inputs_must_cover_all_inputs(self):
        trajectory = Trajectory.from_dict([0.0, 1.0], {"A": [0.0, 1.0], "Y": [0.0, 0.0]})
        with pytest.raises(AnalysisError):
            SimulationDataLog(
                trajectory=trajectory,
                input_species=["A"],
                output_species="Y",
                applied_inputs={},
                input_high=40.0,
            )

    def test_applied_inputs_length_checked(self):
        trajectory = Trajectory.from_dict([0.0, 1.0], {"A": [0.0, 1.0], "Y": [0.0, 0.0]})
        with pytest.raises(AnalysisError):
            SimulationDataLog(
                trajectory=trajectory,
                input_species=["A"],
                output_species="Y",
                applied_inputs={"A": np.zeros(5)},
                input_high=40.0,
            )

    def test_input_levels_checked(self):
        trajectory = Trajectory.from_dict([0.0], {"A": [0.0], "Y": [0.0]})
        with pytest.raises(AnalysisError):
            SimulationDataLog(
                trajectory=trajectory,
                input_species=["A"],
                output_species="Y",
                applied_inputs={"A": np.zeros(1)},
                input_high=0.0,
            )


class TestDigitalViews:
    def test_applied_digital_inputs(self):
        log = _make_log()
        digital = log.applied_digital_inputs()
        assert digital.shape == (8, 2)
        assert list(digital[:, 0]) == [0, 0, 0, 0, 1, 1, 1, 1]
        assert list(digital[:, 1]) == [0] * 8

    def test_applied_combination_indices(self):
        log = _make_log()
        assert list(log.applied_combination_indices()) == [0, 0, 0, 0, 2, 2, 2, 2]

    def test_measured_digital_inputs(self):
        log = _make_log()
        measured = log.measured_digital_inputs(threshold=15.0)
        assert list(measured[:, 0]) == [0, 0, 0, 0, 1, 1, 1, 1]
        with pytest.raises(AnalysisError):
            log.measured_digital_inputs(threshold=0.0)

    def test_traces(self):
        log = _make_log()
        assert log.output_trace()[0] == 30.0
        assert log.input_trace("A")[5] == 40.0
        with pytest.raises(AnalysisError):
            log.input_trace("Y")


class TestViews:
    def test_slice_time(self):
        log = _make_log()
        part = log.slice_time(4.0, 7.0)
        assert part.n_samples == 4
        assert list(part.applied_inputs["A"]) == [40.0] * 4

    def test_with_output_same_species_is_identity(self):
        log = _make_log()
        assert log.with_output("Y") is log

    def test_with_output_rejects_inputs_and_unknowns(self):
        log = _make_log()
        with pytest.raises(AnalysisError):
            log.with_output("A")
        with pytest.raises(AnalysisError):
            log.with_output("missing")
