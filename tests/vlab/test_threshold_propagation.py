"""Tests for threshold and propagation-delay estimation."""

import pytest

from repro.errors import ThresholdError
from repro.vlab import (
    estimate_propagation_delay,
    estimate_threshold,
    settled_output_levels,
)


class TestSettledLevels:
    def test_not_gate_levels(self, toy_model):
        levels = settled_output_levels(toy_model, ["A"], "Y", simulator="ode")
        assert set(levels) == {"0", "1"}
        assert levels["0"] > 25.0
        assert levels["1"] < 10.0

    def test_and_gate_levels(self, and_circuit):
        levels = settled_output_levels(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
            simulator="ode",
        )
        assert set(levels) == {"00", "01", "10", "11"}
        assert levels["11"] > 25.0
        assert max(levels["00"], levels["01"], levels["10"]) < 10.0

    def test_bad_arguments(self, toy_model):
        with pytest.raises(ThresholdError):
            settled_output_levels(toy_model, ["A"], "Y", simulator="made-up")
        with pytest.raises(ThresholdError):
            settled_output_levels(toy_model, ["A"], "Y", tail_fraction=0.0)


class TestEstimateThreshold:
    def test_threshold_separates_levels(self, and_circuit):
        analysis = estimate_threshold(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
        )
        assert analysis.is_separable()
        assert max(analysis.low_group) < analysis.threshold < min(analysis.high_group)
        # The paper's 15-molecule threshold falls inside the separable band.
        assert analysis.separation > 10.0

    def test_summary_text(self, and_circuit):
        analysis = estimate_threshold(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
        )
        assert "threshold(GFP)" in analysis.summary()

    def test_weak_inputs_fail_estimation(self, and_circuit):
        """With 3-molecule inputs the circuit never switches: no separable levels."""
        with pytest.raises(ThresholdError):
            estimate_threshold(
                and_circuit.model,
                and_circuit.inputs,
                and_circuit.output,
                input_high=3.0,
            )

    def test_stochastic_estimation_close_to_ode(self, not_circuit):
        ode = estimate_threshold(not_circuit.model, not_circuit.inputs, not_circuit.output)
        ssa = estimate_threshold(
            not_circuit.model,
            not_circuit.inputs,
            not_circuit.output,
            simulator="ssa",
            rng=4,
            settle_time=200.0,
        )
        assert ssa.threshold == pytest.approx(ode.threshold, rel=0.35)


class TestPropagationDelay:
    def test_delays_positive_and_bounded(self, and_circuit):
        analysis = estimate_propagation_delay(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
            threshold=15.0,
        )
        assert analysis.delays
        assert 0.0 < analysis.worst_case <= 300.0
        assert analysis.mean_delay <= analysis.worst_case

    def test_recommended_hold_time(self, and_circuit):
        analysis = estimate_propagation_delay(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
            threshold=15.0,
        )
        assert analysis.recommended_hold_time() == pytest.approx(3.0 * analysis.worst_case)
        with pytest.raises(Exception):
            analysis.recommended_hold_time(safety_factor=0.5)

    def test_specific_transition(self, and_circuit):
        analysis = estimate_propagation_delay(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
            threshold=15.0,
            transitions=[("00", "11"), ("11", "00")],
        )
        assert set(analysis.delays) == {("00", "11"), ("11", "00")}

    def test_invalid_threshold_rejected(self, and_circuit):
        with pytest.raises(ThresholdError):
            estimate_propagation_delay(
                and_circuit.model,
                and_circuit.inputs,
                and_circuit.output,
                threshold=0.0,
            )

    def test_falling_slower_than_rising_for_cascade(self, and_circuit):
        """The 11→00 and 00→11 transitions have comparable, finite delays."""
        analysis = estimate_propagation_delay(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
            threshold=15.0,
            transitions=[("00", "11"), ("11", "00")],
        )
        assert all(delay < 200.0 for delay in analysis.delays.values())

    def test_summary_text(self, and_circuit):
        analysis = estimate_propagation_delay(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
            threshold=15.0,
            transitions=[("00", "11")],
        )
        assert "propagation delay" in analysis.summary()
