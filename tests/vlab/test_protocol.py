"""Tests for input stimulus protocols."""

import pytest

from repro.errors import ExperimentError
from repro.vlab import custom_protocol, exhaustive_protocol, gray_code_protocol, random_protocol


class TestExhaustiveProtocol:
    def test_covers_all_combinations_in_binary_order(self):
        protocol = exhaustive_protocol(2, hold_time=100.0)
        assert protocol.combinations == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert protocol.covers_all_combinations()
        assert protocol.total_time == 400.0

    def test_repeats(self):
        protocol = exhaustive_protocol(2, hold_time=50.0, repeats=3)
        assert protocol.n_steps == 12
        assert protocol.total_time == 600.0

    def test_combination_indices(self):
        protocol = exhaustive_protocol(3, hold_time=10.0)
        assert protocol.combination_indices() == list(range(8))

    def test_bad_parameters_rejected(self):
        with pytest.raises(ExperimentError):
            exhaustive_protocol(0, hold_time=10.0)
        with pytest.raises(ExperimentError):
            exhaustive_protocol(2, hold_time=0.0)


class TestGrayCodeProtocol:
    def test_single_bit_flips(self):
        protocol = gray_code_protocol(3, hold_time=10.0)
        assert protocol.covers_all_combinations()
        for previous, current in zip(protocol.combinations, protocol.combinations[1:]):
            flips = sum(a != b for a, b in zip(previous, current))
            assert flips == 1

    def test_starts_at_all_low(self):
        assert gray_code_protocol(2, hold_time=10.0).combinations[0] == (0, 0)


class TestRandomProtocol:
    def test_coverage_guaranteed(self):
        protocol = random_protocol(2, hold_time=10.0, n_steps=6, rng=1)
        assert protocol.covers_all_combinations()
        assert protocol.n_steps == 6

    def test_coverage_impossible_rejected(self):
        with pytest.raises(ExperimentError):
            random_protocol(3, hold_time=10.0, n_steps=4, rng=1)

    def test_without_coverage_requirement(self):
        protocol = random_protocol(3, hold_time=10.0, n_steps=4, rng=1, ensure_coverage=False)
        assert protocol.n_steps == 4

    def test_reproducible(self):
        a = random_protocol(2, hold_time=10.0, n_steps=8, rng=7)
        b = random_protocol(2, hold_time=10.0, n_steps=8, rng=7)
        assert a.combinations == b.combinations


class TestCustomProtocol:
    def test_explicit_sequence(self):
        protocol = custom_protocol([(0, 0), (1, 1), (0, 0)], hold_time=25.0)
        assert protocol.n_inputs == 2
        assert not protocol.covers_all_combinations()

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            custom_protocol([], hold_time=10.0)

    def test_mixed_widths_rejected(self):
        with pytest.raises(ExperimentError):
            custom_protocol([(0, 0), (1,)], hold_time=10.0)


class TestProtocolConversion:
    def test_to_schedule(self):
        protocol = exhaustive_protocol(2, hold_time=100.0)
        schedule = protocol.to_schedule(["LacI", "TetR"], high=40.0, low=0.0)
        assert len(schedule) == 4
        assert schedule.value_at("LacI", 350.0) == 40.0
        assert schedule.value_at("TetR", 150.0) == 40.0
        assert schedule.value_at("TetR", 250.0) == 0.0

    def test_to_schedule_species_count_mismatch(self):
        protocol = exhaustive_protocol(2, hold_time=100.0)
        with pytest.raises(ExperimentError):
            protocol.to_schedule(["only_one"], high=40.0)

    def test_repeat(self):
        protocol = exhaustive_protocol(1, hold_time=10.0).repeat(2)
        assert protocol.n_steps == 4
        with pytest.raises(ExperimentError):
            protocol.repeat(0)
