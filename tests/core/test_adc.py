"""Tests for analog-to-digital conversion."""

import numpy as np
import pytest

from repro.core import analog_to_digital, analog_to_digital_hysteresis, digitize_matrix
from repro.errors import ThresholdError


class TestAnalogToDigital:
    def test_threshold_is_inclusive(self):
        digital = analog_to_digital(np.array([14.9, 15.0, 15.1]), 15.0)
        assert list(digital) == [0, 1, 1]

    def test_dtype_is_small_int(self):
        assert analog_to_digital(np.array([1.0, 20.0]), 15.0).dtype == np.int8

    def test_zero_threshold_rejected(self):
        with pytest.raises(ThresholdError):
            analog_to_digital(np.array([1.0]), 0.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ThresholdError):
            analog_to_digital(np.array([1.0]), -3.0)

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ThresholdError):
            analog_to_digital(np.zeros((3, 2)), 15.0)

    def test_paper_example_glitch_digitisation(self):
        """A brief excursion above threshold becomes a short run of 1s."""
        trace = np.array([2.0, 3.0, 18.0, 17.0, 4.0, 2.0])
        assert list(analog_to_digital(trace, 15.0)) == [0, 0, 1, 1, 0, 0]


class TestHysteresis:
    def test_holds_state_between_thresholds(self):
        trace = np.array([0.0, 20.0, 12.0, 12.0, 5.0, 12.0])
        digital = analog_to_digital_hysteresis(trace, low_threshold=10.0, high_threshold=18.0)
        assert list(digital) == [0, 1, 1, 1, 0, 0]

    def test_starts_high_if_first_sample_high(self):
        digital = analog_to_digital_hysteresis(np.array([30.0, 30.0]), 10.0, 18.0)
        assert list(digital) == [1, 1]

    def test_reduces_chatter_compared_to_single_threshold(self):
        rng = np.random.default_rng(0)
        trace = 15.0 + rng.normal(0, 2.0, size=500)
        single = analog_to_digital(trace, 15.0)
        hysteresis = analog_to_digital_hysteresis(trace, 12.0, 18.0)
        assert np.count_nonzero(np.diff(hysteresis)) < np.count_nonzero(np.diff(single))

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ThresholdError):
            analog_to_digital_hysteresis(np.array([1.0]), 0.0, 10.0)
        with pytest.raises(ThresholdError):
            analog_to_digital_hysteresis(np.array([1.0]), 20.0, 10.0)
        with pytest.raises(ThresholdError):
            analog_to_digital_hysteresis(np.zeros((2, 2)), 5.0, 10.0)


class TestDigitizeMatrix:
    def test_columnwise(self):
        matrix = np.array([[1.0, 20.0], [16.0, 3.0]])
        digital = digitize_matrix(matrix, 15.0)
        assert digital.tolist() == [[0, 1], [1, 0]]

    def test_requires_2d(self):
        with pytest.raises(ThresholdError):
            digitize_matrix(np.array([1.0, 2.0]), 15.0)

    def test_requires_positive_threshold(self):
        with pytest.raises(ThresholdError):
            digitize_matrix(np.zeros((2, 2)), 0.0)
