"""Tests for the paper's two data filters (equations 1 and 2)."""

import pytest

from repro.core import DEFAULT_FOV_UD, FilterConfig, apply_filters
from repro.core.variation import VariationStats
from repro.errors import AnalysisError


def _stats(case_count, high_count, variation_count):
    return VariationStats(
        case_count=case_count,
        high_count=high_count,
        variation_count=variation_count,
    )


class TestFilterConfig:
    def test_paper_default(self):
        assert FilterConfig().fov_ud == DEFAULT_FOV_UD == 0.25

    def test_bad_fov_rejected(self):
        with pytest.raises(AnalysisError):
            FilterConfig(fov_ud=0.0)
        with pytest.raises(AnalysisError):
            FilterConfig(fov_ud=1.5)


class TestPaperFigure2:
    """The AND-gate example of Figure 2(b): combination 00 has a small glitch
    (3 ones, 2 variations over 1850 samples) and combination 11 is properly
    high (1875 ones, 7 variations over 3050 samples)."""

    def setup_method(self):
        self.stats = {
            0: _stats(1850, 3, 2),       # "00"
            1: _stats(2500, 0, 0),       # "01"
            2: _stats(2600, 0, 0),       # "10"
            3: _stats(3050, 1875, 7),    # "11"
        }

    def test_both_filters_give_and_not_xnor(self):
        decisions = apply_filters(self.stats)
        assert not decisions[0].is_high   # the glitch at 00 is rejected
        assert decisions[3].is_high       # 11 is accepted
        assert not decisions[1].is_high and not decisions[2].is_high

    def test_00_rejected_specifically_by_the_majority_filter(self):
        decisions = apply_filters(self.stats)
        assert decisions[0].passes_fov          # 2/1850 < 0.25
        assert not decisions[0].passes_majority  # 3 << 1850/2
        assert decisions[0].rejected_by_majority_only

    def test_majority_filter_alone_reproduces_the_xnor_mistake(self):
        """Disabling the majority filter accepts 00 -> the XNOR misreading."""
        config = FilterConfig(use_majority_filter=False)
        decisions = apply_filters(self.stats, config)
        assert decisions[0].is_high
        assert decisions[3].is_high


class TestPaperFigure3:
    """Figure 3: two streams with the same number of 1s, one stable and one
    highly oscillatory; only the FOV filter can tell them apart."""

    def setup_method(self):
        # 40 ones out of 80 samples in both cases: the stable stream has one
        # contiguous block (1 variation), the oscillatory one alternates.
        self.stats = {
            0: _stats(80, 41, 1),    # stable: passes majority (41 > 40)
            3: _stats(80, 41, 60),   # oscillatory: same highs, many variations
            1: _stats(80, 0, 0),
            2: _stats(80, 0, 0),
        }

    def test_fov_filter_discards_the_oscillatory_case(self):
        decisions = apply_filters(self.stats, FilterConfig(fov_ud=0.5))
        assert decisions[0].is_high
        assert not decisions[3].is_high
        assert decisions[3].rejected_by_fov_only

    def test_without_fov_filter_the_oscillatory_case_sneaks_in(self):
        decisions = apply_filters(self.stats, FilterConfig(use_fov_filter=False))
        assert decisions[3].is_high


class TestFilterEdgeCases:
    def test_never_observed_combination_is_low(self):
        decisions = apply_filters({0: _stats(0, 0, 0)})
        assert not decisions[0].is_high

    def test_never_high_combination_is_low_without_filtering(self):
        decisions = apply_filters({0: _stats(100, 0, 0)})
        assert not decisions[0].is_high
        assert decisions[0].passes_fov

    def test_exactly_half_high_fails_strict_majority(self):
        decisions = apply_filters({0: _stats(100, 50, 1)})
        assert not decisions[0].is_high

    def test_exactly_half_high_passes_lenient_majority(self):
        decisions = apply_filters(
            {0: _stats(100, 50, 1)},
            FilterConfig(majority_strict=False),
        )
        assert decisions[0].is_high

    def test_fov_boundary_is_exclusive(self):
        # FOV_EST must be strictly below FOV_UD to pass (eq. 1 uses '<').
        decisions = apply_filters({0: _stats(100, 80, 25)}, FilterConfig(fov_ud=0.25))
        assert not decisions[0].passes_fov
        decisions = apply_filters({0: _stats(100, 80, 24)}, FilterConfig(fov_ud=0.25))
        assert decisions[0].passes_fov

    def test_disabling_both_filters_accepts_any_ever_high_stream(self):
        config = FilterConfig(use_fov_filter=False, use_majority_filter=False)
        decisions = apply_filters({0: _stats(100, 1, 2)}, config)
        assert decisions[0].is_high
