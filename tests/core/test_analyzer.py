"""Tests of the full Algorithm-1 pipeline on synthetic and simulated data."""

import numpy as np
import pytest

from repro.core import FilterConfig, LogicAnalyzer, analyze_logic
from repro.errors import AnalysisError
from repro.logic import TruthTable


def _synthetic_arrays(truth_hex, n_inputs=2, block=200, high=40.0, noise=3.0, seed=0,
                      transient=5):
    """Block-wise walk through all combinations with settled noisy levels."""
    rng = np.random.default_rng(seed)
    table = TruthTable.from_hex(truth_hex, n_inputs=n_inputs)
    indices = np.repeat(np.arange(2**n_inputs), block)
    bits = ((indices[:, None] >> np.arange(n_inputs - 1, -1, -1)) & 1).astype(float)
    inputs = bits * high
    ideal = np.array([table.outputs[i] for i in indices], dtype=float) * high
    output = np.clip(ideal + rng.normal(0, noise, size=ideal.size), 0, None)
    # Carry the previous block's value into the first `transient` samples of
    # each block, like a real propagation delay.
    for boundary in range(block, len(indices), block):
        output[boundary:boundary + transient] = output[boundary - 1]
    return inputs, output, [f"in{i+1}" for i in range(n_inputs)], table


class TestAnalyzeArrays:
    def test_recovers_and_gate(self):
        inputs, output, names, table = _synthetic_arrays("0x08")
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(inputs, output, names)
        assert result.truth_table.outputs == table.outputs
        assert result.gate_name == "AND"
        assert result.fitness > 95.0

    def test_recovers_three_input_circuit(self):
        inputs, output, names, table = _synthetic_arrays("0x1C", n_inputs=3)
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(inputs, output, names)
        assert result.truth_table.outputs == table.outputs
        assert result.truth_table.to_hex() == "0x1C"

    def test_case_counts_partition_samples(self):
        inputs, output, names, _ = _synthetic_arrays("0x08", block=150)
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(inputs, output, names)
        assert sum(c.case_count for c in result.combinations) == result.n_samples
        assert all(c.case_count == 150 for c in result.combinations)

    def test_verification_hooks(self):
        inputs, output, names, _ = _synthetic_arrays("0x08")
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(
            inputs,
            output,
            names,
            expected="in1 & in2",
        )
        assert result.comparison is not None and result.comparison.matches
        mismatch = result.verify("in1 | in2")
        assert not mismatch.matches

    def test_expected_hex_string(self):
        inputs, output, names, _ = _synthetic_arrays("0x1C", n_inputs=3)
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(
            inputs,
            output,
            names,
            expected="0x1C",
        )
        assert result.comparison.matches

    def test_digital_inputs_flag(self):
        inputs, output, names, table = _synthetic_arrays("0x08")
        digital = (inputs > 0).astype(int)
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(
            digital,
            output,
            names,
            inputs_are_digital=True,
        )
        assert result.truth_table.outputs == table.outputs

    def test_shape_validation(self):
        analyzer = LogicAnalyzer(threshold=15.0)
        with pytest.raises(AnalysisError):
            analyzer.analyze_arrays(np.zeros((10, 2)), np.zeros(5), ["a", "b"])
        with pytest.raises(AnalysisError):
            analyzer.analyze_arrays(np.zeros((10, 2)), np.zeros(10), ["a"])

    def test_unobserved_combinations_reported(self):
        # Only combinations 00 and 11 ever occur.
        inputs = np.array([[0.0, 0.0]] * 50 + [[40.0, 40.0]] * 50)
        output = np.array([2.0] * 50 + [40.0] * 50)
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(inputs, output, ["A", "B"])
        assert set(result.unobserved_combinations) == {"01", "10"}

    def test_combination_lookup(self):
        inputs, output, names, _ = _synthetic_arrays("0x08")
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(inputs, output, names)
        assert result.combination("11").is_high
        assert result.combination(3).is_high
        with pytest.raises(AnalysisError):
            result.combination("44")
        with pytest.raises(AnalysisError):
            result.combination(9)

    def test_analysis_time_recorded(self):
        inputs, output, names, _ = _synthetic_arrays("0x08")
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(inputs, output, names)
        assert result.analysis_time_seconds > 0.0


class TestAnalyzerConfiguration:
    def test_invalid_threshold_rejected(self):
        with pytest.raises(AnalysisError):
            LogicAnalyzer(threshold=0.0)

    def test_invalid_input_source_rejected(self):
        with pytest.raises(AnalysisError):
            LogicAnalyzer(threshold=15.0, input_source="guessed")

    def test_conflicting_fov_specification_rejected(self):
        with pytest.raises(AnalysisError):
            LogicAnalyzer(threshold=15.0, fov_ud=0.1, filter_config=FilterConfig(fov_ud=0.3))

    def test_filter_config_passthrough(self):
        analyzer = LogicAnalyzer(threshold=15.0, filter_config=FilterConfig(fov_ud=0.4))
        assert analyzer.fov_ud == 0.4

    def test_canonical_expression_mode(self):
        inputs, output, names, _ = _synthetic_arrays("0x08")
        analyzer = LogicAnalyzer(threshold=15.0, minimize_expression=False)
        result = analyzer.analyze_arrays(inputs, output, names)
        assert result.expression.to_string() == result.canonical_expression.to_string()


class TestAnalyzeDatalog:
    def test_and_gate_experiment(self, and_gate_log, standard_analyzer, and_circuit):
        result = standard_analyzer.analyze(and_gate_log, expected=and_circuit.expected_table)
        assert result.comparison.matches
        assert result.gate_name == "AND"
        assert result.fitness > 98.0
        assert result.circuit_name == "and_gate"

    def test_cello_0x0b_experiment(self, cello_0x0b_log, standard_analyzer, cello_0x0b):
        result = standard_analyzer.analyze(cello_0x0b_log, expected=cello_0x0b.expected_table)
        assert result.comparison.matches
        assert result.truth_table.to_hex() == "0x0B"
        assert result.high_combination_labels == ["000", "001", "011"]

    def test_intermediate_species_analysis(self, and_gate_log, standard_analyzer):
        """Analysing the intermediate CI species recovers the NAND stage."""
        result = standard_analyzer.analyze(and_gate_log, output_species="CI")
        assert result.gate_name == "NAND"

    def test_measured_input_source_matches_applied(self, and_gate_log, and_circuit):
        applied = LogicAnalyzer(threshold=15.0, input_source="applied").analyze(and_gate_log)
        measured = LogicAnalyzer(threshold=15.0, input_source="measured").analyze(and_gate_log)
        assert applied.truth_table.outputs == measured.truth_table.outputs

    def test_analyze_logic_wrapper(self, and_gate_log):
        result = analyze_logic(and_gate_log, threshold=15.0, expected="LacI & TetR")
        assert result.comparison.matches

    def test_summary_mentions_expression_and_fitness(self, and_gate_log, standard_analyzer):
        result = standard_analyzer.analyze(and_gate_log)
        text = result.summary()
        assert "LacI & TetR" in text
        assert "fitness" in text
