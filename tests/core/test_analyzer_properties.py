"""Property-based tests of Algorithm-1 invariants (no simulation involved)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LogicAnalyzer
from repro.logic import TruthTable


def _clean_arrays(table: TruthTable, block: int, high: float = 40.0):
    """Noise-free, transient-free experiment arrays realising ``table``."""
    n_inputs = table.n_inputs
    indices = np.repeat(np.arange(2**n_inputs), block)
    bits = ((indices[:, None] >> np.arange(n_inputs - 1, -1, -1)) & 1).astype(float)
    inputs = bits * high
    output = np.array([table.outputs[i] for i in indices], dtype=float) * high
    return inputs, output


@given(
    n_inputs=st.integers(min_value=1, max_value=3),
    raw_value=st.integers(min_value=0),
    block=st.integers(min_value=5, max_value=40),
)
@settings(max_examples=80, deadline=None)
def test_clean_data_recovers_any_truth_table(n_inputs, raw_value, block):
    """On noise-free data the algorithm recovers the generating table exactly,
    with fitness exactly 100 % (no output variation at all)."""
    value = raw_value % (2 ** (2**n_inputs))
    table = TruthTable.from_hex(value, n_inputs=n_inputs)
    inputs, output = _clean_arrays(table, block)
    result = LogicAnalyzer(threshold=15.0).analyze_arrays(
        inputs,
        output,
        table.inputs,
    )
    assert result.truth_table.outputs == table.outputs
    assert result.fitness == pytest.approx(100.0)


@given(
    n_inputs=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    noise=st.floats(min_value=0.0, max_value=6.0),
)
@settings(max_examples=50, deadline=None)
def test_fitness_and_counts_are_always_well_formed(n_inputs, seed, noise):
    """Whatever the data looks like, the per-combination statistics are
    internally consistent and the fitness stays within [0, 100]."""
    rng = np.random.default_rng(seed)
    n_samples = 60 * 2**n_inputs
    inputs = rng.choice([0.0, 40.0], size=(n_samples, n_inputs))
    output = np.clip(rng.normal(20.0, 10.0 + noise, size=n_samples), 0.0, None)
    result = LogicAnalyzer(threshold=15.0).analyze_arrays(
        inputs,
        output,
        [f"x{i}" for i in range(n_inputs)],
    )
    assert 0.0 <= result.fitness <= 100.0
    assert sum(c.case_count for c in result.combinations) == n_samples
    for combination in result.combinations:
        assert 0 <= combination.high_count <= combination.case_count
        assert 0 <= combination.variation_count <= max(0, combination.case_count - 1)
        assert 0.0 <= combination.fov_est <= 1.0
        if combination.is_high:
            assert combination.passes_fov and combination.passes_majority


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    block=st.integers(min_value=20, max_value=60),
)
@settings(max_examples=40, deadline=None)
def test_case_counts_invariant_under_sample_permutation(seed, block):
    """Case_I and High_O depend only on which samples belong to which
    combination, not on their order; only Var_O is order-sensitive."""
    rng = np.random.default_rng(seed)
    table = TruthTable.from_hex(0x08, n_inputs=2)
    inputs, output = _clean_arrays(table, block)
    output = np.clip(output + rng.normal(0, 4.0, size=output.shape), 0.0, None)

    analyzer = LogicAnalyzer(threshold=15.0)
    original = analyzer.analyze_arrays(inputs, output, ["A", "B"])

    permutation = rng.permutation(len(output))
    shuffled = analyzer.analyze_arrays(inputs[permutation], output[permutation], ["A", "B"])

    for before, after in zip(original.combinations, shuffled.combinations):
        assert before.case_count == after.case_count
        assert before.high_count == after.high_count


@given(threshold=st.floats(min_value=1.0, max_value=39.0))
@settings(max_examples=40, deadline=None)
def test_any_threshold_between_levels_recovers_the_same_logic(threshold):
    """For well-separated clean levels (0 vs 40 molecules) every threshold
    strictly between them yields the same recovered table."""
    table = TruthTable.from_hex(0x1C, n_inputs=3)
    inputs, output = _clean_arrays(table, block=10)
    result = LogicAnalyzer(threshold=float(threshold)).analyze_arrays(
        inputs,
        output,
        table.inputs,
    )
    assert result.truth_table.outputs == table.outputs
