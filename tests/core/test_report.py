"""Tests for the textual analysis reports."""

import numpy as np

from repro.core import LogicAnalyzer, format_analysis_report, format_case_table, format_suite_table


def _result():
    rng = np.random.default_rng(3)
    indices = np.repeat(np.arange(4), 100)
    bits = ((indices[:, None] >> np.arange(1, -1, -1)) & 1) * 40.0
    output = np.where(indices == 3, 40.0, 2.0) + rng.normal(0, 2.0, size=400)
    return LogicAnalyzer(threshold=15.0).analyze_arrays(
        bits,
        np.clip(output, 0, None),
        ["LacI", "TetR"],
        circuit_name="and_gate",
        expected="LacI & TetR",
    )


class TestCaseTable:
    def test_has_one_row_per_combination(self):
        table = format_case_table(_result())
        lines = [
            line for line in table.splitlines() if line and not line.startswith(("Input", "-"))
        ]
        assert len(lines) == 4

    def test_columns_match_paper_figure(self):
        header = format_case_table(_result()).splitlines()[0]
        for column in ("Case_I", "High_O", "Var_O", "FOV_EST", "Output"):
            assert column in header


class TestAnalysisReport:
    def test_mentions_all_key_artifacts(self):
        text = format_analysis_report(_result())
        assert "Boolean expression" in text
        assert "percentage fitness" in text
        assert "threshold: 15" in text
        assert "LacI & TetR" in text
        assert "verification" in text

    def test_custom_title(self):
        text = format_analysis_report(_result(), title="Figure 2 reproduction")
        assert "Figure 2 reproduction" in text

    def test_warns_about_unobserved_combinations(self):
        inputs = np.array([[0.0, 0.0]] * 60 + [[40.0, 40.0]] * 60)
        output = np.array([2.0] * 60 + [40.0] * 60)
        result = LogicAnalyzer(threshold=15.0).analyze_arrays(inputs, output, ["A", "B"])
        assert "never observed" in format_analysis_report(result)


class TestSuiteTable:
    def test_renders_entries(self):
        entries = [
            {
                "name": "and_gate",
                "n_inputs": 2,
                "n_gates": 2,
                "n_components": 9,
                "expected": "0x08",
                "recovered": "0x08",
                "fitness": 99.9,
                "match": True,
            },
            {
                "name": "cello_0x0b",
                "n_inputs": 3,
                "n_gates": 5,
                "n_components": 15,
                "expected": "0x0B",
                "recovered": "0x1B",
                "fitness": 91.2,
                "match": False,
            },
        ]
        text = format_suite_table(entries)
        assert "and_gate" in text and "cello_0x0b" in text
        assert "OK" in text and "WRONG" in text
