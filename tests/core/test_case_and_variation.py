"""Tests for CaseAnalyzer and VariationAnalyzer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    analyze_cases,
    analyze_all_variations,
    analyze_variation,
    count_high,
    count_variations,
)
from repro.core.variation import VariationStats
from repro.errors import AnalysisError


class TestAnalyzeCases:
    def test_groups_by_combination(self):
        indices = np.array([0, 0, 1, 1, 3, 3, 0])
        output = np.array([0, 0, 1, 1, 1, 0, 1], dtype=np.int8)
        cases = analyze_cases(indices, output, n_inputs=2)
        assert set(cases) == {0, 1, 2, 3}
        assert cases[0].case_count == 3
        assert list(cases[0].output_stream) == [0, 0, 1]
        assert list(cases[1].output_stream) == [1, 1]
        assert cases[2].case_count == 0
        assert not cases[2].observed

    def test_labels_follow_paper_convention(self):
        cases = analyze_cases(np.array([5]), np.array([1], dtype=np.int8), n_inputs=3)
        assert cases[5].label == "101"
        assert cases[0].label == "000"

    def test_streams_preserve_time_order(self):
        indices = np.array([1, 0, 1, 0, 1])
        output = np.array([1, 0, 0, 0, 1], dtype=np.int8)
        cases = analyze_cases(indices, output, n_inputs=1)
        assert list(cases[1].output_stream) == [1, 0, 1]

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_cases(np.array([0, 1]), np.array([0], dtype=np.int8), n_inputs=1)

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_cases(np.array([4]), np.array([0], dtype=np.int8), n_inputs=2)

    def test_case_count_equals_stream_length(self):
        """The paper notes Case_I[i] always equals the output-stream length."""
        rng = np.random.default_rng(1)
        indices = rng.integers(0, 4, size=200)
        output = rng.integers(0, 2, size=200).astype(np.int8)
        for case in analyze_cases(indices, output, 2).values():
            assert case.case_count == len(case.output_stream)


class TestCounts:
    def test_count_high(self):
        assert count_high(np.array([0, 1, 1, 0, 1])) == 3
        assert count_high(np.array([])) == 0

    def test_count_variations(self):
        assert count_variations(np.array([0, 0, 1, 1, 0])) == 2
        assert count_variations(np.array([0, 1, 0, 1])) == 3
        assert count_variations(np.array([1, 1, 1])) == 0
        assert count_variations(np.array([1])) == 0
        assert count_variations(np.array([])) == 0

    def test_paper_figure2_example_counts(self):
        """Figure 2(b): for combination 00 the output stream 0...010...010...0
        has 3 ones and 2 variations?  The paper counts 2 '0-to-1 and 1-to-0'
        events for a glitch of 3 ones; reproduce the glitch shape it shows."""
        stream = np.zeros(1850, dtype=np.int8)
        stream[700:703] = 1  # a single 3-sample glitch
        assert count_high(stream) == 3
        assert count_variations(stream) == 2


class TestVariationStats:
    def test_fraction_of_variation(self):
        stats = VariationStats(case_count=1850, high_count=3, variation_count=2)
        assert stats.fraction_of_variation == pytest.approx(2 / 1850)
        assert stats.high_fraction == pytest.approx(3 / 1850)
        assert stats.ever_high

    def test_empty_case(self):
        stats = VariationStats(case_count=0, high_count=0, variation_count=0)
        assert stats.fraction_of_variation == 0.0
        assert stats.high_fraction == 0.0
        assert not stats.ever_high

    def test_invalid_counts_rejected(self):
        with pytest.raises(AnalysisError):
            VariationStats(case_count=5, high_count=6, variation_count=0)
        with pytest.raises(AnalysisError):
            VariationStats(case_count=-1, high_count=0, variation_count=0)

    def test_analyze_variation(self):
        stats = analyze_variation(np.array([0, 1, 1, 0, 1], dtype=np.int8))
        assert stats.case_count == 5
        assert stats.high_count == 3
        assert stats.variation_count == 3

    def test_analyze_all_variations(self):
        cases = analyze_cases(
            np.array([0, 0, 1, 1]),
            np.array([0, 1, 1, 1], dtype=np.int8),
            n_inputs=1,
        )
        stats = analyze_all_variations(cases)
        assert stats[0].variation_count == 1
        assert stats[1].variation_count == 0


@given(st.lists(st.integers(min_value=0, max_value=1), max_size=300))
@settings(max_examples=80, deadline=None)
def test_variation_count_invariants(bits):
    """Var_O is bounded by both the stream length and 2x the number of 1s +- 1."""
    stream = np.array(bits, dtype=np.int8)
    variations = count_variations(stream)
    highs = count_high(stream)
    assert 0 <= variations <= max(0, len(bits) - 1)
    # Each contiguous run of 1s contributes at most 2 transitions.
    assert variations <= 2 * highs + 1 if highs else variations == 0


@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=400),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_case_counts_sum_to_sample_count(n_inputs, n_samples, rng):
    indices = np.array([rng.randrange(2**n_inputs) for _ in range(n_samples)])
    output = np.array([rng.randrange(2) for _ in range(n_samples)], dtype=np.int8)
    cases = analyze_cases(indices, output, n_inputs)
    assert sum(case.case_count for case in cases.values()) == n_samples
    total_high = sum(count_high(case.output_stream) for case in cases.values())
    assert total_high == int(output.sum())
