"""Tests for Boolean expression construction and the PFoBE fitness metric."""

import pytest

from repro.core import (
    FilterConfig,
    apply_filters,
    build_expression,
    build_truth_table,
    fitness_from_analysis,
    high_combinations,
    percentage_fitness,
)
from repro.core.filters import FilterDecision
from repro.core.variation import VariationStats
from repro.errors import AnalysisError
from repro.logic import Const, TruthTable


def _decision(is_high):
    return FilterDecision(passes_fov=True, passes_majority=is_high, is_high=is_high)


class TestBuildExpression:
    def test_and_gate(self):
        decisions = {
            0: _decision(False),
            1: _decision(False),
            2: _decision(False),
            3: _decision(True),
        }
        expr = build_expression(decisions, ["LacI", "TetR"])
        assert expr.to_string() == "LacI & TetR"

    def test_canonical_vs_minimized(self):
        decisions = {i: _decision(i in (3, 7)) for i in range(8)}
        minimized = build_expression(decisions, ["A", "B", "C"], minimized=True)
        canonical = build_expression(decisions, ["A", "B", "C"], minimized=False)
        assert minimized.to_string() == "B & C"
        assert canonical.to_string() == "~A & B & C | A & B & C"

    def test_all_low_gives_constant_false(self):
        decisions = {i: _decision(False) for i in range(4)}
        assert build_expression(decisions, ["A", "B"]) == Const(False)

    def test_all_high_gives_constant_true(self):
        decisions = {i: _decision(True) for i in range(4)}
        assert build_expression(decisions, ["A", "B"]) == Const(True)

    def test_high_combinations_sorted(self):
        decisions = {
            2: _decision(True),
            0: _decision(True),
            1: _decision(False),
            3: _decision(False),
        }
        assert high_combinations(decisions) == [0, 2]

    def test_truth_table(self):
        decisions = {i: _decision(i == 5) for i in range(8)}
        table = build_truth_table(decisions, ["A", "B", "C"])
        assert isinstance(table, TruthTable)
        assert table.minterms() == [5]

    def test_truth_table_size_mismatch_rejected(self):
        decisions = {i: _decision(False) for i in range(4)}
        with pytest.raises(AnalysisError):
            build_truth_table(decisions, ["A", "B", "C"])


class TestPercentageFitness:
    def test_equation_3_with_paper_numbers(self):
        """Figure 2: only combination 11 survives filtering with FOV 7/3050;
        nc = 4 -> PFoBE = 100 - (7/3050)/4*100 ~ 99.94%."""
        fitness = percentage_fitness([7 / 3050], 4)
        assert fitness == pytest.approx(100.0 - (7 / 3050) / 4 * 100.0)
        assert fitness > 99.9

    def test_no_high_states_gives_perfect_score(self):
        assert percentage_fitness([], 4) == 100.0

    def test_multiple_high_states(self):
        assert percentage_fitness([0.1, 0.3], 8) == pytest.approx(100.0 - 5.0)

    def test_worst_case(self):
        # Every combination high and maximally oscillating.
        assert percentage_fitness([1.0] * 4, 4) == pytest.approx(0.0)

    def test_invalid_arguments(self):
        with pytest.raises(AnalysisError):
            percentage_fitness([0.1], 0)
        with pytest.raises(AnalysisError):
            percentage_fitness([-0.1], 4)


class TestFitnessFromAnalysis:
    def test_only_accepted_high_states_contribute(self):
        stats = {
            0: VariationStats(100, 2, 2),     # rejected (not majority-high)
            1: VariationStats(100, 0, 0),
            2: VariationStats(100, 0, 0),
            3: VariationStats(100, 90, 4),    # accepted, FOV = 0.04
        }
        decisions = apply_filters(stats, FilterConfig())
        fitness = fitness_from_analysis(stats, decisions)
        assert fitness == pytest.approx(100.0 - (0.04 / 4) * 100.0)

    def test_mismatched_keys_rejected(self):
        stats = {0: VariationStats(10, 0, 0)}
        decisions = apply_filters({0: VariationStats(10, 0, 0), 1: VariationStats(10, 0, 0)})
        with pytest.raises(AnalysisError):
            fitness_from_analysis(stats, decisions)
