"""End-to-end integration tests: SBOL → SBML → SSA → Algorithm 1 → verification.

These are scaled-down versions of the benchmark experiments (shorter hold
times, one stochastic repetition) so the whole pipeline is exercised on every
test run without taking minutes.
"""

import pytest

from repro.core import FilterConfig, LogicAnalyzer
from repro.gates import cello_circuit, or_gate_circuit
from repro.io import read_datalog_csv, write_datalog_csv
from repro.logic import identify_gate
from repro.sbml import read_sbml_string, write_sbml_string
from repro.vlab import LogicExperiment, estimate_propagation_delay, estimate_threshold


class TestFigure1AndGatePipeline:
    def test_recovers_and_not_xnor(self, and_gate_log, standard_analyzer, and_circuit):
        result = standard_analyzer.analyze(and_gate_log, expected=and_circuit.expected_table)
        assert result.gate_name == "AND"
        assert result.comparison.matches
        # The initial-transient glitch at combination 00 must have been
        # observed (output momentarily high) yet filtered out.
        combination_00 = result.combination("00")
        assert combination_00.high_count >= 0
        assert not combination_00.is_high

    def test_disabling_the_majority_filter_can_mislead(self, and_circuit):
        """Without eq. (2) the decaying initial transient of the output is
        accepted as a logic-1, which is the XNOR-misreading failure mode the
        paper warns about."""
        experiment = LogicExperiment.for_circuit(and_circuit, simulator="ssa")
        # Start from a pre-loaded output so combination 00 shows a long
        # decaying high transient (like the paper's Figure 2 trace).
        model = and_circuit.model.copy()
        model.set_initial_amount("GFP", 60.0)
        experiment = LogicExperiment(
            model=model,
            input_species=list(and_circuit.inputs),
            output_species=and_circuit.output,
            circuit_name="and_gate_preloaded",
        )
        log = experiment.run(hold_time=60.0, rng=5)
        lenient = LogicAnalyzer(
            threshold=15.0,
            filter_config=FilterConfig(use_majority_filter=False, use_fov_filter=False),
        ).analyze(log)
        strict = LogicAnalyzer(threshold=15.0).analyze(log)
        assert strict.truth_table.outputs == [0, 0, 0, 1]
        assert lenient.truth_table.outputs != strict.truth_table.outputs
        assert lenient.combination("00").high_count > 0

    def test_full_threshold_and_delay_workflow(self, and_circuit):
        """The paper's methodology: estimate threshold and delay first, then
        run the logic experiment with a hold time above the delay."""
        threshold = estimate_threshold(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
        )
        delay = estimate_propagation_delay(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
            threshold=threshold.threshold,
            transitions=[("00", "11"), ("11", "00"), ("01", "11")],
        )
        hold = max(delay.recommended_hold_time(), 90.0)
        log = LogicExperiment.for_circuit(and_circuit).run(hold_time=hold, rng=8)
        result = LogicAnalyzer(threshold=threshold.threshold).analyze(
            log,
            expected=and_circuit.expected_table,
        )
        assert result.comparison.matches


class TestCello0x0bPipeline:
    def test_figure4_shape(self, cello_0x0b_log, standard_analyzer, cello_0x0b):
        result = standard_analyzer.analyze(cello_0x0b_log, expected=cello_0x0b.expected_table)
        assert result.comparison.matches
        assert result.fitness > 95.0
        # The transition into combination 100 arrives from 011 (binary order),
        # so 100 sees a decaying high output that the majority filter removes
        # — the exact effect the paper describes for this circuit.
        combination_100 = result.combination("100")
        assert combination_100.high_count > 0
        assert not combination_100.is_high

    def test_intermediate_gate_analysis(self, cello_0x0b_log, standard_analyzer, cello_0x0b):
        """Analysing an internal repressor recovers that gate's function."""
        internal_net = cello_0x0b.netlist.gates[0].output
        internal_protein = {g.output: g.repressor for g in cello_0x0b.netlist.gates}[internal_net]
        result = standard_analyzer.analyze(cello_0x0b_log, output_species=internal_protein)
        expected = cello_0x0b.netlist.truth_table(internal_net).rename_inputs(cello_0x0b.inputs)
        assert result.verify(expected).matches


class TestOtherSimulatorsEndToEnd:
    @pytest.mark.parametrize("simulator", ["next-reaction", "tau-leap", "ode"])
    def test_or_gate_recovered_with_any_trace_source(self, simulator):
        circuit = or_gate_circuit()
        log = LogicExperiment.for_circuit(circuit, simulator=simulator).run(
            hold_time=120.0,
            rng=13,
        )
        result = LogicAnalyzer(threshold=15.0).analyze(log, expected=circuit.expected_table)
        assert result.comparison.matches
        assert result.gate_name == "OR"


class TestPersistenceRoundtrips:
    def test_sbml_roundtrip_preserves_recovered_logic(self, cello_0x0b):
        """Write the circuit model to SBML, read it back, re-simulate, re-analyse."""
        model = read_sbml_string(write_sbml_string(cello_0x0b.model))
        experiment = LogicExperiment(
            model=model,
            input_species=list(cello_0x0b.inputs),
            output_species=cello_0x0b.output,
            circuit_name="cello_0x0b_roundtrip",
        )
        log = experiment.run(hold_time=150.0, rng=17)
        result = LogicAnalyzer(threshold=15.0).analyze(log, expected="0x0B")
        assert result.comparison.matches

    def test_csv_roundtrip_preserves_analysis(self, and_gate_log, tmp_path, standard_analyzer):
        path = tmp_path / "and.csv"
        write_datalog_csv(and_gate_log, path)
        result = standard_analyzer.analyze(read_datalog_csv(path))
        assert identify_gate(result.truth_table) == "AND"


class TestCello0x04:
    def test_single_minterm_circuit(self):
        circuit = cello_circuit("0x04")
        log = LogicExperiment.for_circuit(circuit).run(hold_time=150.0, rng=21)
        result = LogicAnalyzer(threshold=15.0).analyze(log, expected=circuit.expected_table)
        assert result.comparison.matches
        assert result.high_combination_labels == ["010"]
