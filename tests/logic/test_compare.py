"""Tests for expected-vs-recovered logic comparison."""

import pytest

from repro.errors import AnalysisError
from repro.logic import TruthTable, compare_tables, verify_against_expected


class TestCompareTables:
    def test_match(self):
        a = TruthTable.from_expression("A & B")
        b = TruthTable.from_expression("LacI & TetR")
        comparison = compare_tables(a, b)
        assert comparison.matches
        assert comparison.wrong_states == []
        assert comparison.expected_gate == "AND"
        assert "MATCH" in comparison.summary()

    def test_mismatch_reports_wrong_states(self):
        expected = TruthTable.from_hex("0x0B", n_inputs=3)
        recovered = TruthTable.from_minterm_indices([0, 1, 3, 4], expected.inputs)
        comparison = compare_tables(expected, recovered)
        assert not comparison.matches
        assert comparison.wrong_states == ["100"]
        assert comparison.n_wrong_states == 1
        assert "MISMATCH" in comparison.summary()

    def test_paper_two_wrong_states_scenario(self):
        """Circuit 0x0B at a 40-molecule threshold shows two wrong states."""
        expected = TruthTable.from_hex("0x0B", n_inputs=3)
        recovered = TruthTable.from_minterm_indices([0, 3], expected.inputs)
        recovered.outputs[4] = 1  # one spurious high state
        comparison = compare_tables(expected, recovered)
        assert comparison.n_wrong_states == 2

    def test_input_count_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            compare_tables(
                TruthTable.from_expression("A & B"),
                TruthTable.from_hex("0x0B", n_inputs=3),
            )


class TestVerifyAgainstExpected:
    def test_expressions(self):
        comparison = verify_against_expected("A & B", "A & B")
        assert comparison.matches

    def test_hex_names(self):
        comparison = verify_against_expected("0x0B", "0x0B")
        assert comparison.matches
        assert comparison.expected.n_inputs == 3

    def test_mixed_forms(self):
        recovered = TruthTable.from_minterm_indices([0, 1, 3], ["in1", "in2", "in3"])
        comparison = verify_against_expected("0x0B", recovered)
        assert comparison.matches

    def test_xnor_vs_and_from_the_paper(self):
        """The Figure-2 failure mode: unfiltered data suggests XNOR instead of AND."""
        comparison = verify_against_expected("A & B", "A & B | ~A & ~B")
        assert not comparison.matches
        assert comparison.wrong_states == ["00"]
        assert comparison.expected_gate == "AND"
        assert comparison.recovered_gate == "XNOR"
