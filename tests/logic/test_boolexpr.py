"""Tests for Boolean expressions."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.logic import And, Const, Not, Or, Var, Xor, from_minterms, minterm_string, parse_expr


class TestEvaluation:
    def test_constants(self):
        assert Const(True).evaluate({}) is True
        assert Const(False).evaluate({}) is False

    def test_variable(self):
        assert Var("A").evaluate({"A": 1}) is True
        assert Var("A").evaluate({"A": 0}) is False

    def test_missing_variable_raises(self):
        with pytest.raises(ParseError):
            Var("A").evaluate({})

    def test_not(self):
        assert Not(Var("A")).evaluate({"A": 0}) is True

    def test_and_or(self):
        expr = And((Var("A"), Or((Var("B"), Var("C")))))
        assert expr.evaluate({"A": 1, "B": 0, "C": 1}) is True
        assert expr.evaluate({"A": 1, "B": 0, "C": 0}) is False

    def test_xor_odd_parity(self):
        expr = Xor((Var("A"), Var("B"), Var("C")))
        assert expr.evaluate({"A": 1, "B": 1, "C": 1}) is True
        assert expr.evaluate({"A": 1, "B": 1, "C": 0}) is False

    def test_operator_sugar(self):
        expr = (Var("A") & Var("B")) | ~Var("C")
        assert expr.evaluate({"A": 0, "B": 0, "C": 0}) is True
        assert expr.evaluate({"A": 0, "B": 0, "C": 1}) is False

    def test_nested_flattening(self):
        expr = And((And((Var("A"), Var("B"))), Var("C")))
        assert len(expr.operands) == 3

    def test_variables_in_first_appearance_order(self):
        expr = parse_expr("B & A | B & C")
        assert expr.variables() == ["B", "A", "C"]


class TestRendering:
    def test_to_string_parseable(self):
        source = "A & ~B | C ^ D"
        expr = parse_expr(source)
        again = parse_expr(expr.to_string())
        for bits in itertools.product([0, 1], repeat=4):
            env = dict(zip("ABCD", bits))
            assert expr.evaluate(env) == again.evaluate(env)

    def test_algebraic_style(self):
        expr = parse_expr("A & ~B | ~A & B")
        assert expr.to_algebraic() == "A.B' + A'.B"

    def test_parenthesisation_of_or_inside_and(self):
        expr = And((Var("A"), Or((Var("B"), Var("C")))))
        assert expr.to_string() == "A & (B | C)"

    def test_not_of_compound(self):
        expr = Not(Or((Var("A"), Var("B"))))
        assert expr.to_string() == "~(A | B)"
        assert expr.to_algebraic() == "(A + B)'"

    def test_constants_render(self):
        assert Const(True).to_string() == "1"
        assert Const(False).to_algebraic() == "0"


class TestParser:
    def test_simple(self):
        assert parse_expr("A").evaluate({"A": 1}) is True

    def test_precedence_not_over_and_over_or(self):
        expr = parse_expr("~A & B | C")
        assert expr.evaluate({"A": 0, "B": 1, "C": 0}) is True
        assert expr.evaluate({"A": 1, "B": 1, "C": 0}) is False
        assert expr.evaluate({"A": 1, "B": 0, "C": 1}) is True

    def test_bang_as_not(self):
        assert parse_expr("!A").evaluate({"A": 0}) is True

    def test_parentheses(self):
        expr = parse_expr("~(A | B)")
        assert expr.evaluate({"A": 0, "B": 0}) is True
        assert expr.evaluate({"A": 1, "B": 0}) is False

    def test_constant_literals(self):
        assert parse_expr("1 | A").evaluate({"A": 0}) is True
        assert parse_expr("0 & A").evaluate({"A": 1}) is False

    def test_passthrough_of_existing_expression(self):
        expr = parse_expr("A & B")
        assert parse_expr(expr) is expr

    @pytest.mark.parametrize("text", ["", "   ", "A &", "A | | B", "(A", "A )", "A $ B"])
    def test_malformed_rejected(self, text):
        with pytest.raises(ParseError):
            parse_expr(text)


class TestFromMinterms:
    def test_and_gate(self):
        expr = from_minterms(["A", "B"], [3])
        assert expr.to_string() == "A & B"

    def test_multiple_minterms(self):
        expr = from_minterms(["A", "B"], [0, 3])
        for index, expected in enumerate([1, 0, 0, 1]):
            env = {"A": (index >> 1) & 1, "B": index & 1}
            assert expr.evaluate(env) == bool(expected)

    def test_empty_and_full(self):
        assert from_minterms(["A"], []) == Const(False)
        assert from_minterms(["A"], [0, 1]) == Const(True)

    def test_out_of_range_rejected(self):
        with pytest.raises(ParseError):
            from_minterms(["A", "B"], [4])

    def test_minterm_string(self):
        assert minterm_string(3, 3) == "011"
        assert minterm_string(0, 2) == "00"
        with pytest.raises(ParseError):
            minterm_string(8, 3)


@given(st.integers(min_value=1, max_value=4), st.data())
@settings(max_examples=60, deadline=None)
def test_from_minterms_matches_specification(n_inputs, data):
    """from_minterms() is high exactly on the requested combinations."""
    universe = list(range(2**n_inputs))
    minterms = data.draw(st.sets(st.sampled_from(universe)))
    names = [f"x{i}" for i in range(n_inputs)]
    expr = from_minterms(names, minterms)
    for index in universe:
        bits = [(index >> (n_inputs - 1 - i)) & 1 for i in range(n_inputs)]
        assert expr.evaluate(dict(zip(names, bits))) == (index in minterms)
