"""Tests for named-gate recognition."""

import pytest

from repro.logic import TruthTable, gate_truth_table, identify_gate, is_named_gate


class TestGateTruthTable:
    def test_two_input_families(self):
        assert gate_truth_table("AND", ["A", "B"]).outputs == [0, 0, 0, 1]
        assert gate_truth_table("OR", ["A", "B"]).outputs == [0, 1, 1, 1]
        assert gate_truth_table("NAND", ["A", "B"]).outputs == [1, 1, 1, 0]
        assert gate_truth_table("NOR", ["A", "B"]).outputs == [1, 0, 0, 0]
        assert gate_truth_table("XOR", ["A", "B"]).outputs == [0, 1, 1, 0]
        assert gate_truth_table("XNOR", ["A", "B"]).outputs == [1, 0, 0, 1]

    def test_single_input_families(self):
        assert gate_truth_table("NOT", ["A"]).outputs == [1, 0]
        assert gate_truth_table("BUF", ["A"]).outputs == [0, 1]

    def test_three_input_majority(self):
        table = gate_truth_table("MAJORITY", ["A", "B", "C"])
        assert table.minterms() == [3, 5, 6, 7]

    def test_case_insensitive(self):
        assert gate_truth_table("and", ["A", "B"]).outputs == [0, 0, 0, 1]

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            gate_truth_table("MUX", ["A", "B"])

    def test_minimum_input_count_enforced(self):
        with pytest.raises(ValueError):
            gate_truth_table("MAJORITY", ["A", "B"])


class TestIdentifyGate:
    @pytest.mark.parametrize(
        "expression, name",
        [
            ("A & B", "AND"),
            ("A | B", "OR"),
            ("~(A & B)", "NAND"),
            ("~(A | B)", "NOR"),
            ("A ^ B", "XOR"),
            ("~(A ^ B)", "XNOR"),
            ("A & B & C", "AND"),
            ("~(A | B | C)", "NOR"),
            ("~A", "NOT"),
            ("A", "BUF"),
        ],
    )
    def test_standard_families(self, expression, name):
        assert identify_gate(TruthTable.from_expression(expression)) == name

    def test_constants(self):
        assert identify_gate(TruthTable(["A"], [0, 0])) == "CONST0"
        assert identify_gate(TruthTable(["A", "B"], [1, 1, 1, 1])) == "CONST1"

    def test_majority(self):
        table = TruthTable.from_expression("A & B | B & C | A & C")
        assert identify_gate(table) == "MAJORITY"

    def test_single_input_dependence_of_multi_input_table(self):
        table = TruthTable.from_expression("B", inputs=["A", "B"])
        assert identify_gate(table) == "BUF(B)"
        inverted = TruthTable.from_expression("~A", inputs=["A", "B", "C"])
        assert identify_gate(inverted) == "NOT(A)"

    def test_unnamed_function_returns_none(self):
        assert identify_gate(TruthTable.from_hex("0x1C", n_inputs=3)) is None

    def test_paper_finding_0x0b_at_low_threshold_is_and(self):
        """The paper reports 0x0B behaves as a 3-input AND at a 3-molecule threshold."""
        assert identify_gate(TruthTable.from_minterm_indices([7], ["a", "b", "c"])) == "AND"


class TestIsNamedGate:
    def test_positive(self):
        assert is_named_gate(TruthTable.from_expression("A & B"), "AND")

    def test_negative(self):
        assert not is_named_gate(TruthTable.from_expression("A & B"), "OR")

    def test_unknown_name_is_false(self):
        assert not is_named_gate(TruthTable.from_expression("A & B"), "LATCH")

    def test_wrong_arity_is_false(self):
        assert not is_named_gate(TruthTable.from_expression("A & B"), "MAJORITY")
