"""Tests for truth tables and the Cello hexadecimal naming convention."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.logic import TruthTable, parse_expr


class TestConstruction:
    def test_row_count_enforced(self):
        with pytest.raises(AnalysisError):
            TruthTable(["A", "B"], [0, 1, 1])

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            TruthTable(["A", "A"], [0, 0, 0, 1])

    def test_outputs_normalised_to_bits(self):
        table = TruthTable(["A"], [0, 5])
        assert table.outputs == [0, 1]

    def test_from_function(self):
        table = TruthTable.from_function(lambda a, b: a and not b, ["A", "B"])
        assert table.outputs == [0, 0, 1, 0]

    def test_from_expression(self):
        table = TruthTable.from_expression("A & B | ~A & ~B")
        assert table.outputs == [1, 0, 0, 1]

    def test_from_expression_with_explicit_inputs(self):
        table = TruthTable.from_expression("B", inputs=["A", "B"])
        assert table.outputs == [0, 1, 0, 1]

    def test_from_expression_constant_needs_inputs(self):
        with pytest.raises(AnalysisError):
            TruthTable.from_expression(parse_expr("1"))

    def test_from_minterm_indices(self):
        table = TruthTable.from_minterm_indices([3], ["A", "B"])
        assert table.outputs == [0, 0, 0, 1]
        with pytest.raises(AnalysisError):
            TruthTable.from_minterm_indices([4], ["A", "B"])


class TestHexNaming:
    """The convention: bit i (LSB first) = output of combination index i."""

    def test_0x0b_decodes_to_the_paper_combinations(self):
        table = TruthTable.from_hex("0x0B", inputs=["in1", "in2", "in3"])
        # High at 000, 001 and 011 — in particular at 011, the combination the
        # paper highlights for circuit 0x0B, and low at 100 (the decaying
        # transition the paper filters out).
        assert table.minterms() == [0, 1, 3]
        assert table.output_for("011") == 1
        assert table.output_for("100") == 0

    def test_0x04_single_minterm(self):
        assert TruthTable.from_hex("0x04", n_inputs=3).minterms() == [2]

    def test_0x1c_minterms(self):
        assert TruthTable.from_hex("0x1C", n_inputs=3).minterms() == [2, 3, 4]

    def test_hex_roundtrip(self):
        for value in ("0x0B", "0x04", "0x1C", "0x8E", "0xF0"):
            table = TruthTable.from_hex(value, n_inputs=3)
            assert table.to_hex() == value.upper().replace("X", "x")

    def test_accepts_integer_values(self):
        assert TruthTable.from_hex(0x0B, n_inputs=3).to_hex() == "0x0B"

    def test_two_input_width(self):
        table = TruthTable.from_expression("A & B")
        assert table.to_hex() == "0x08"

    def test_value_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            TruthTable.from_hex(0x1FF, n_inputs=3)


class TestCombinations:
    def test_bits_index_roundtrip(self):
        assert TruthTable.combination_bits(5, 3) == (1, 0, 1)
        assert TruthTable.combination_index((1, 0, 1)) == 5

    def test_output_for_accepts_all_forms(self):
        table = TruthTable.from_expression("A & ~B")
        assert table.output_for(2) == 1
        assert table.output_for("10") == 1
        assert table.output_for((1, 0)) == 1
        assert table.output_for("01") == 0

    def test_output_for_bad_forms_rejected(self):
        table = TruthTable.from_expression("A & B")
        with pytest.raises(AnalysisError):
            table.output_for("2")
        with pytest.raises(AnalysisError):
            table.output_for("101")
        with pytest.raises(AnalysisError):
            table.output_for(7)

    def test_labels(self):
        table = TruthTable.from_expression("A & B")
        assert table.combination_labels() == ["00", "01", "10", "11"]

    def test_minterms_and_maxterms_partition(self):
        table = TruthTable.from_hex("0x1C", n_inputs=3)
        assert sorted(table.minterms() + table.maxterms()) == list(range(8))


class TestComparison:
    def test_equivalent_ignores_names(self):
        a = TruthTable.from_expression("A & B")
        b = TruthTable.from_expression("LacI & TetR")
        assert a.equivalent(b)
        assert a != b  # strict equality does compare names

    def test_differing_combinations(self):
        and_gate = TruthTable.from_expression("A & B")
        xnor = TruthTable.from_expression("A & B | ~A & ~B")
        assert and_gate.differing_combinations(xnor) == ["00"]
        assert and_gate.hamming_distance(xnor) == 1

    def test_input_count_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            TruthTable.from_expression("A & B").differing_combinations(
                TruthTable.from_hex("0x0B", n_inputs=3),
            )

    def test_rename_inputs(self):
        table = TruthTable.from_expression("A & B").rename_inputs(["LacI", "TetR"])
        assert table.inputs == ["LacI", "TetR"]
        with pytest.raises(AnalysisError):
            table.rename_inputs(["only_one"])


class TestConversions:
    def test_to_expression_canonical(self):
        table = TruthTable.from_hex("0x04", n_inputs=3)
        expr = table.to_expression()
        assert TruthTable.from_expression(expr, inputs=table.inputs).outputs == table.outputs

    def test_to_minimized_expression_equivalent(self):
        table = TruthTable.from_hex("0x0B", n_inputs=3)
        minimized = table.to_minimized_expression()
        assert TruthTable.from_expression(minimized, inputs=table.inputs).outputs == table.outputs

    def test_format_contains_all_rows(self):
        text = TruthTable.from_expression("A & B").format(output_name="Y")
        assert "Y" in text
        assert text.count("\n") >= 5


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=0))
@settings(max_examples=80, deadline=None)
def test_hex_roundtrip_property(n_inputs, raw):
    """to_hex / from_hex are mutually inverse for every function."""
    value = raw % (2 ** (2**n_inputs))
    table = TruthTable.from_hex(value, n_inputs=n_inputs)
    again = TruthTable.from_hex(table.to_hex(), inputs=table.inputs)
    assert again.outputs == table.outputs


@given(st.integers(min_value=1, max_value=4), st.data())
@settings(max_examples=60, deadline=None)
def test_combination_bits_roundtrip_property(n_inputs, data):
    index = data.draw(st.integers(min_value=0, max_value=2**n_inputs - 1))
    bits = TruthTable.combination_bits(index, n_inputs)
    assert len(bits) == n_inputs
    assert TruthTable.combination_index(bits) == index
