"""Tests for Quine–McCluskey minimization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.logic import Const, TruthTable, minimize, minimize_truth_table, prime_implicants
from repro.logic.minimize import Implicant, minimal_cover


class TestImplicant:
    def test_pattern_rendering(self):
        implicant = Implicant.from_minterm(5, 3)
        assert implicant.pattern() == "101"

    def test_combination_of_adjacent_minterms(self):
        a = Implicant.from_minterm(5, 3)
        b = Implicant.from_minterm(7, 3)
        assert a.can_combine(b)
        merged = a.combine(b)
        assert merged.pattern() == "1-1"
        assert merged.covers == frozenset({5, 7})
        assert merged.literal_count() == 2

    def test_non_adjacent_cannot_combine(self):
        a = Implicant.from_minterm(0, 3)
        b = Implicant.from_minterm(3, 3)
        assert not a.can_combine(b)

    def test_covers_minterm(self):
        merged = Implicant.from_minterm(5, 3).combine(Implicant.from_minterm(7, 3))
        assert merged.covers_minterm(5)
        assert merged.covers_minterm(7)
        assert not merged.covers_minterm(1)

    def test_to_expression(self):
        merged = Implicant.from_minterm(5, 3).combine(Implicant.from_minterm(7, 3))
        expr = merged.to_expression(["A", "B", "C"])
        assert expr.to_string() == "A & C"


class TestPrimeImplicants:
    def test_textbook_example(self):
        # f(A,B,C,D) = Σ(0,1,2,5,6,7,8,9,10,14) — a classic QM exercise.
        primes = prime_implicants(4, [0, 1, 2, 5, 6, 7, 8, 9, 10, 14])
        patterns = {p.pattern() for p in primes}
        assert "-0-0" in patterns  # B'D'
        assert "--10" in patterns  # CD'
        assert "01-1" in patterns  # A'BD

    def test_overlapping_dontcares_rejected(self):
        with pytest.raises(AnalysisError):
            prime_implicants(2, [1], dont_cares=[1])

    def test_out_of_range_rejected(self):
        with pytest.raises(AnalysisError):
            prime_implicants(2, [5])

    def test_empty(self):
        assert prime_implicants(2, []) == []


class TestMinimize:
    def test_and_gate(self):
        assert minimize(2, [3], variables=["A", "B"]).to_string() == "A & B"

    def test_or_gate(self):
        expr = minimize(2, [1, 2, 3], variables=["A", "B"])
        assert TruthTable.from_expression(expr, ["A", "B"]).outputs == [0, 1, 1, 1]

    def test_redundant_variable_removed(self):
        expr = minimize(3, [3, 7], variables=["A", "B", "C"])
        assert expr.to_string() == "B & C"

    def test_constants(self):
        assert minimize(2, []) == Const(False)
        assert minimize(2, [0, 1, 2, 3]) == Const(True)

    def test_dont_cares_enable_simplification(self):
        # f = Σ(1), d = Σ(3): with the don't-care the answer is just B.
        expr = minimize(2, [1], dont_cares=[3], variables=["A", "B"])
        assert expr.to_string() == "B"

    def test_paper_circuit_0x0b(self):
        expr = minimize(3, [0, 1, 3], variables=["LacI", "TetR", "AraC"])
        table = TruthTable.from_expression(expr, ["LacI", "TetR", "AraC"])
        assert table.minterms() == [0, 1, 3]

    def test_variable_count_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            minimize(3, [1], variables=["A"])

    def test_minimize_truth_table_wrapper(self):
        table = TruthTable.from_hex("0x1C", n_inputs=3)
        expr = minimize_truth_table(table)
        assert TruthTable.from_expression(expr, table.inputs).outputs == table.outputs


class TestMinimalCover:
    def test_cover_covers_everything(self):
        cover = minimal_cover(3, [0, 1, 3, 7])
        for minterm in (0, 1, 3, 7):
            assert any(imp.covers_minterm(minterm) for imp in cover)

    def test_empty_minterms(self):
        assert minimal_cover(3, []) == []

    def test_cover_is_not_larger_than_minterm_count(self):
        minterms = [0, 2, 5, 7]
        assert len(minimal_cover(3, minterms)) <= len(minterms)


@given(st.integers(min_value=1, max_value=4), st.data())
@settings(max_examples=100, deadline=None)
def test_minimization_preserves_the_function(n_inputs, data):
    """The minimized expression computes exactly the original truth table."""
    universe = list(range(2**n_inputs))
    minterms = sorted(data.draw(st.sets(st.sampled_from(universe))))
    names = [f"x{i}" for i in range(n_inputs)]
    expr = minimize(n_inputs, minterms, variables=names)
    table = (
        TruthTable.from_expression(expr, names)
        if minterms and len(minterms) < len(universe)
        else None
    )
    for index in universe:
        bits = dict(zip(names, TruthTable.combination_bits(index, n_inputs)))
        assert expr.evaluate(bits) == (index in minterms)


@given(st.integers(min_value=2, max_value=4), st.data())
@settings(max_examples=60, deadline=None)
def test_minimized_is_never_longer_than_canonical(n_inputs, data):
    """Minimization never produces more literals than the canonical SOP."""
    universe = list(range(2**n_inputs))
    minterms = sorted(
        data.draw(st.sets(st.sampled_from(universe), min_size=1, max_size=len(universe) - 1)),
    )
    names = [f"x{i}" for i in range(n_inputs)]
    minimized = minimize(n_inputs, minterms, variables=names).to_string()
    canonical = TruthTable.from_minterm_indices(minterms, names).to_expression().to_string()
    assert minimized.count("x") <= canonical.count("x")
