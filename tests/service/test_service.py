"""The analysis service: cache, admission policy, and the HTTP frontend.

The service core (:class:`AnalysisService`) is transport-free, so most of
this file exercises it directly with an injected stub runner — backpressure,
coalescing, cache hits and budgets are all contract, not plumbing.  The last
class drives the real HTTP frontend end-to-end over a loopback socket and
pins the acceptance criteria: a served study is bit-identical to a direct
``run_replicate_study`` call, a repeated request is a cache hit visible in
``/v1/stats``, and saturating the in-flight bound yields 429.
"""

import asyncio
import http.client
import json
import threading

import pytest

from repro.analysis import run_replicate_study
from repro.engine import StudySpec, WorkerConnectionError
from repro.errors import EngineError
from repro.search import SearchSpec, run_design_search
from repro.service import AnalysisService, ResultCache, ServiceServer
from repro.service.app import BackpressureError, BudgetError


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", {"value": 1})
        assert cache.get("k") == {"value": 1}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_hit_rate_is_none_before_any_lookup(self):
        assert ResultCache().stats()["hit_rate"] is None

    def test_lru_eviction_under_byte_budget(self):
        payloads = {name: {"name": name} for name in ("a", "b", "c")}
        one_size = len(json.dumps(payloads["a"], sort_keys=True).encode())
        cache = ResultCache(max_bytes=2 * one_size)
        cache.put("a", payloads["a"])
        cache.put("b", payloads["b"])
        cache.get("a")  # refresh "a" → "b" is now least recent
        cache.put("c", payloads["c"])
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats()["evictions"] == 1
        assert cache.bytes_used <= cache.max_bytes

    def test_oversized_payload_not_stored(self):
        cache = ResultCache(max_bytes=8)
        cache.put("k", {"value": "x" * 100})
        assert "k" not in cache and len(cache) == 0

    def test_zero_budget_disables_caching_but_keeps_counters(self):
        cache = ResultCache(max_bytes=0)
        cache.put("k", {"value": 1})
        assert cache.get("k") is None
        assert cache.stats()["misses"] == 1

    def test_replacing_a_key_does_not_double_count(self):
        cache = ResultCache()
        cache.put("k", {"value": 1})
        cache.put("k", {"value": 2})
        assert len(cache) == 1
        assert cache.bytes_used == len(json.dumps({"value": 2}, sort_keys=True).encode())
        cache.clear()
        assert cache.bytes_used == 0 and len(cache) == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(EngineError):
            ResultCache(max_bytes=-1)


def _spec(seed=7, **changes):
    base = StudySpec(circuit="not", n_replicates=2, seed=seed, hold_time=60.0)
    return base.replace(**changes) if changes else base


class _StubRunner:
    """An injectable runner: counts calls, optionally blocks until released."""

    def __init__(self, blocking=False, error=None):
        self.calls = 0
        self.specs = []
        self.error = error
        self._release = threading.Event()
        if not blocking:
            self._release.set()

    def release(self):
        self._release.set()

    def __call__(self, spec, executor):
        self.calls += 1
        self.specs.append(spec)
        assert self._release.wait(timeout=30), "stub runner was never released"
        if self.error is not None:
            raise self.error
        return {"circuit": spec.circuit, "seed": spec.seed}


class TestAnalysisService:
    def test_submit_runs_and_caches(self):
        runner = _StubRunner()

        async def _go():
            service = AnalysisService(runner=runner)
            first = await service.submit(_spec())
            await first.done_event.wait()
            second = await service.submit(_spec())
            return service, first, second

        service, first, second = asyncio.run(_go())
        assert first.status == "done" and not first.cached
        assert first.result == {"circuit": "not", "seed": 7}
        assert second.cached and second.status == "done"
        assert second.result == first.result
        assert second.wall_seconds == 0.0
        assert runner.calls == 1
        stats = service.stats()
        assert stats["cache"]["hits"] == 1 and stats["cache"]["misses"] == 1
        assert stats["studies"]["submitted"] == 2
        assert stats["studies"]["completed"] == 2

    def test_json_and_dict_bodies_accepted(self):
        runner = _StubRunner()

        async def _go():
            service = AnalysisService(runner=runner)
            record = await service.submit(_spec().to_json())
            await record.done_event.wait()
            repeat = await service.submit(_spec().to_dict())
            return record, repeat

        record, repeat = asyncio.run(_go())
        assert record.status == "done"
        assert repeat.cached, "a JSON body and a dict body must share a cache entry"

    def test_malformed_spec_raises_engine_error(self):
        async def _go():
            await AnalysisService(runner=_StubRunner()).submit({"circuit": "not", "oops": 1})

        with pytest.raises(EngineError, match="oops"):
            asyncio.run(_go())

    def test_replicate_budget_enforced(self):
        async def _go():
            service = AnalysisService(runner=_StubRunner(), max_replicates=4)
            await service.submit(_spec(n_replicates=5))

        with pytest.raises(BudgetError, match="at most 4"):
            asyncio.run(_go())

    def test_backpressure_when_inflight_bound_saturated(self):
        runner = _StubRunner(blocking=True)

        async def _go():
            service = AnalysisService(runner=runner, max_inflight=2)
            held = [await service.submit(_spec(seed=s)) for s in (1, 2)]
            assert service.inflight == 2
            with pytest.raises(BackpressureError, match="retry later"):
                await service.submit(_spec(seed=3))
            runner.release()
            for record in held:
                await record.done_event.wait()
            # Capacity is back: the same spec is admitted now.
            late = await service.submit(_spec(seed=3))
            await late.done_event.wait()
            return service, late

        service, late = asyncio.run(_go())
        assert late.status == "done"
        assert service.stats()["studies"]["rejected"] == 1
        assert service.inflight == 0

    def test_identical_inflight_spec_coalesces(self):
        runner = _StubRunner(blocking=True)

        async def _go():
            service = AnalysisService(runner=runner, max_inflight=1)
            leader = await service.submit(_spec())
            follower = await service.submit(_spec())  # same spec → no 429, no dispatch
            assert follower.coalesced and not follower.cached
            runner.release()
            await leader.done_event.wait()
            await follower.done_event.wait()
            return service, leader, follower

        service, leader, follower = asyncio.run(_go())
        assert runner.calls == 1, "a coalesced submission must not dispatch again"
        assert follower.status == "done"
        assert follower.result == leader.result
        assert service.stats()["studies"]["coalesced"] == 1

    def test_failed_study_reports_error_and_is_not_cached(self):
        runner = _StubRunner(error=EngineError("boom"))

        async def _go():
            service = AnalysisService(runner=runner)
            record = await service.submit(_spec())
            await record.done_event.wait()
            retry = await service.submit(_spec())
            await retry.done_event.wait()
            return service, record, retry

        service, record, retry = asyncio.run(_go())
        assert record.status == "error" and record.error == "boom"
        assert not retry.cached, "a failed study must not poison the cache"
        assert service.stats()["studies"]["failed"] == 2

    def test_fabric_loss_is_tagged_and_copied_to_coalesced_followers(self):
        runner = _StubRunner(blocking=True, error=WorkerConnectionError("fabric gone"))

        async def _go():
            service = AnalysisService(runner=runner)
            leader = await service.submit(_spec())
            follower = await service.submit(_spec())
            runner.release()
            await leader.done_event.wait()
            await follower.done_event.wait()
            return leader, follower

        leader, follower = asyncio.run(_go())
        assert leader.status == "error" and leader.error_kind == "fabric"
        assert follower.coalesced and follower.error_kind == "fabric"

    def test_ordinary_failures_are_not_tagged_as_fabric(self):
        runner = _StubRunner(error=EngineError("boom"))

        async def _go():
            service = AnalysisService(runner=runner)
            record = await service.submit(_spec())
            await record.done_event.wait()
            return record

        assert asyncio.run(_go()).error_kind is None

    def test_unseeded_spec_skips_cache_but_counts_inflight(self):
        runner = _StubRunner(blocking=True)

        async def _go():
            service = AnalysisService(runner=runner, max_inflight=1)
            record = await service.submit(_spec(seed=None))
            assert record.cache_key is None
            assert service.inflight == 1
            with pytest.raises(BackpressureError):
                await service.submit(_spec(seed=None))
            runner.release()
            await record.done_event.wait()
            return service, record

        service, record = asyncio.run(_go())
        assert record.status == "done"
        assert service.cache.stats()["entries"] == 0
        assert service.inflight == 0

    def test_admission_limits_validated(self):
        with pytest.raises(EngineError):
            AnalysisService(max_inflight=0)
        with pytest.raises(EngineError):
            AnalysisService(max_replicates=0)


def _search_spec(seed=7, **changes):
    base = SearchSpec(
        function="0x8",
        inputs=("LacI", "TetR"),
        library="diverse",
        max_candidates=4,
        n0=2,
        fixed_replicates=2,
        hold_time=20.0,
        seed=seed,
    )
    return base.replace(**changes) if changes else base


class _StubSearchRunner:
    """Injectable search runner mirroring :class:`_StubRunner`."""

    def __init__(self):
        self.calls = 0

    def __call__(self, spec, executor):
        self.calls += 1
        return {"function": spec.function, "seed": spec.seed}


class TestSearchSubmission:
    """Searches share the service's admission machinery with studies."""

    def test_submit_search_runs_and_caches(self):
        runner = _StubSearchRunner()

        async def _go():
            service = AnalysisService(runner=_StubRunner(), search_runner=runner)
            first = await service.submit_search(_search_spec())
            await first.done_event.wait()
            second = await service.submit_search(_search_spec())
            return first, second

        first, second = asyncio.run(_go())
        assert first.kind == "search"
        assert first.study_id.startswith("search-")
        assert first.status == "done" and not first.cached
        assert first.result == {"function": "0x8", "seed": 7}
        assert second.cached and second.result == first.result
        assert runner.calls == 1

    def test_search_json_body_accepted(self):
        runner = _StubSearchRunner()

        async def _go():
            service = AnalysisService(runner=_StubRunner(), search_runner=runner)
            record = await service.submit_search(_search_spec().to_json())
            await record.done_event.wait()
            return record

        assert asyncio.run(_go()).status == "done"

    def test_search_budget_enforced_over_the_candidate_space(self):
        async def _go():
            service = AnalysisService(
                runner=_StubRunner(),
                search_runner=_StubSearchRunner(),
                max_search_replicates=7,
            )
            await service.submit_search(_search_spec())  # 4 candidates x 2 = 8

        with pytest.raises(BudgetError, match="at most 7"):
            asyncio.run(_go())

    def test_searches_and_studies_share_the_inflight_bound(self):
        study_runner = _StubRunner(blocking=True)

        async def _go():
            service = AnalysisService(
                runner=study_runner,
                search_runner=_StubSearchRunner(),
                max_inflight=1,
            )
            held = await service.submit(_spec())
            with pytest.raises(BackpressureError):
                await service.submit_search(_search_spec())
            study_runner.release()
            await held.done_event.wait()
            late = await service.submit_search(_search_spec())
            await late.done_event.wait()
            return late

        assert asyncio.run(_go()).status == "done"

    def test_search_records_are_not_studies(self):
        async def _go():
            service = AnalysisService(
                runner=_StubRunner(),
                search_runner=_StubSearchRunner(),
            )
            study = await service.submit(_spec())
            search = await service.submit_search(_search_spec())
            await study.done_event.wait()
            await search.done_event.wait()
            return service, study, search

        service, study, search = asyncio.run(_go())
        assert study.kind == "study" and search.kind == "search"
        assert service.get(study.study_id).kind == "study"
        assert service.get(search.study_id).kind == "search"
        assert study.to_response()["kind"] == "study"
        assert search.to_response()["kind"] == "search"

    def test_search_limit_validated_and_reported(self):
        with pytest.raises(EngineError):
            AnalysisService(max_search_replicates=0)
        service = AnalysisService(runner=_StubRunner(), max_search_replicates=123)
        assert service.stats()["limits"]["max_search_replicates"] == 123


def _request(port, method, path, body=None):
    """One HTTP request against the loopback service; returns (status, headers, json)."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        payload = None if body is None else json.dumps(body)
        connection.request(method, path, body=payload)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), json.loads(response.read())
    finally:
        connection.close()


class TestHttpService:
    """The real frontend over a loopback socket (port 0 → ephemeral)."""

    def _serve(self, exercise, **service_kwargs):
        """Start a server, run blocking ``exercise(port)`` on a thread, stop."""

        async def _go():
            server = ServiceServer(host="127.0.0.1", port=0, **service_kwargs)
            await server.start()
            try:
                return await asyncio.to_thread(exercise, server.address[1])
            finally:
                await server.stop()

        return asyncio.run(_go())

    def test_end_to_end_cache_hit_and_bit_identity(self):
        spec = _spec()

        def exercise(port):
            status, _, health = _request(port, "GET", "/v1/healthz")
            assert status == 200 and health == {"status": "ok"}

            status, _, first = _request(port, "POST", "/v1/studies?wait=1", spec.to_dict())
            assert status == 200, first
            assert first["status"] == "done" and not first["cached"]

            status, _, second = _request(port, "POST", "/v1/studies?wait=1", spec.to_dict())
            assert status == 200 and second["cached"]
            assert second["result"] == first["result"]

            status, _, fetched = _request(port, "GET", f"/v1/studies/{first['id']}")
            assert status == 200 and fetched["result"] == first["result"]

            status, _, stats = _request(port, "GET", "/v1/stats")
            assert status == 200
            assert stats["cache"]["hits"] == 1 and stats["cache"]["misses"] == 1
            assert stats["studies"]["submitted"] == 2
            return first["result"]

        served = self._serve(exercise, workers=1)
        direct = run_replicate_study(spec).to_payload()
        assert {k: v for k, v in served.items() if k != "engine"} == {
            k: v for k, v in direct.items() if k != "engine"
        }, "the service must answer bit-identically to run_replicate_study"

    def test_backpressure_maps_to_429_with_retry_after(self):
        runner = _StubRunner(blocking=True)

        def exercise(port):
            status, _, first = _request(port, "POST", "/v1/studies", _spec(seed=1).to_dict())
            assert status == 200 and first["status"] == "running"
            status, headers, body = _request(port, "POST", "/v1/studies", _spec(seed=2).to_dict())
            assert status == 429, body
            assert headers.get("Retry-After") == "1"
            runner.release()
            status, _, done = _request(port, "POST", "/v1/studies?wait=1", _spec(seed=1).to_dict())
            assert status == 200 and done["status"] == "done"

        self._serve(exercise, runner=runner, max_inflight=1)

    def test_error_mapping(self):
        def exercise(port):
            status, _, body = _request(port, "POST", "/v1/studies", {"circuit": "not", "oops": 1})
            assert status == 400 and "oops" in body["error"]

            status, _, body = _request(
                port, "POST", "/v1/studies", _spec(n_replicates=9).to_dict()
            )
            assert status == 413 and "at most 4" in body["error"]

            status, _, body = _request(port, "GET", "/v1/studies/study-999999")
            assert status == 404

            status, _, body = _request(port, "DELETE", "/v1/healthz")
            assert status == 405

            status, _, body = _request(port, "GET", "/v1/nope")
            assert status == 404

        self._serve(exercise, runner=_StubRunner(), max_replicates=4)

    def test_fabric_loss_maps_to_503_with_retry_after(self):
        """Losing the worker fabric mid-study is a server-side transient."""
        runner = _StubRunner(error=WorkerConnectionError("no workers joined"))

        def exercise(port):
            status, headers, body = _request(port, "POST", "/v1/studies?wait=1", _spec().to_dict())
            assert status == 503, body
            assert headers.get("Retry-After") == "5"
            assert body["status"] == "error" and "no workers joined" in body["error"]

            # The record keeps answering 503 on GET, and the service is alive.
            status, headers, fetched = _request(port, "GET", f"/v1/studies/{body['id']}")
            assert status == 503 and headers.get("Retry-After") == "5"
            assert fetched["error"] == body["error"]
            status, _, health = _request(port, "GET", "/v1/healthz")
            assert status == 200 and health == {"status": "ok"}

        self._serve(exercise, runner=runner)

    def test_non_fabric_study_errors_do_not_map_to_503(self):
        runner = _StubRunner(error=EngineError("boom"))

        def exercise(port):
            status, headers, body = _request(port, "POST", "/v1/studies?wait=1", _spec().to_dict())
            assert status == 200, body
            assert body["status"] == "error" and body["error"] == "boom"
            assert "Retry-After" not in headers

        self._serve(exercise, runner=runner)

    def test_search_routes_end_to_end(self):
        """POST /v1/search answers bit-identically to run_design_search."""
        spec = _search_spec(max_candidates=3)

        def exercise(port):
            status, _, first = _request(port, "POST", "/v1/search?wait=1", spec.to_dict())
            assert status == 200, first
            assert first["kind"] == "search" and first["status"] == "done"
            assert first["id"].startswith("search-")

            status, _, second = _request(port, "POST", "/v1/search?wait=1", spec.to_dict())
            assert status == 200 and second["cached"]
            assert second["result"] == first["result"]

            status, _, fetched = _request(port, "GET", f"/v1/search/{first['id']}")
            assert status == 200 and fetched["result"] == first["result"]
            return first["result"]

        served = self._serve(exercise, workers=1)
        direct = run_design_search(spec).to_payload()
        assert {k: v for k, v in served.items() if k != "engine"} == {
            k: v for k, v in direct.items() if k != "engine"
        }, "the service must answer bit-identically to run_design_search"

    def test_search_and_study_namespaces_are_disjoint(self):
        def exercise(port):
            status, _, study = _request(port, "POST", "/v1/studies?wait=1", _spec().to_dict())
            assert status == 200
            status, _, search = _request(
                port, "POST", "/v1/search?wait=1", _search_spec().to_dict()
            )
            assert status == 200

            # A study id is not fetchable as a search, and vice versa.
            status, _, _body = _request(port, "GET", f"/v1/search/{study['id']}")
            assert status == 404
            status, _, _body = _request(port, "GET", f"/v1/studies/{search['id']}")
            assert status == 404

        self._serve(exercise, runner=_StubRunner(), search_runner=_StubSearchRunner())

    def test_search_budget_maps_to_413(self):
        def exercise(port):
            status, _, body = _request(port, "POST", "/v1/search", _search_spec().to_dict())
            assert status == 413 and "at most 7" in body["error"]

            status, _, body = _request(port, "POST", "/v1/search", {"function": "0x8", "oops": 1})
            assert status == 400 and "oops" in body["error"]

        self._serve(
            exercise,
            runner=_StubRunner(),
            search_runner=_StubSearchRunner(),
            max_search_replicates=7,
        )
