"""Tests for the engine's asyncio execution layer (engine/aio.py)."""

import asyncio

import numpy as np
import pytest

from repro.analysis import arun_replicate_study, run_replicate_study
from repro.engine import (
    AsyncEnsembleExecutor,
    ProcessPoolEnsembleExecutor,
    aiter_ensemble,
    arun_ensemble,
    gather_studies,
    replicate_jobs,
    run_ensemble,
)
from repro.engine.jobs import SimulationJob
from repro.errors import EngineError
from repro.stochastic.events import InputSchedule


@pytest.fixture()
def ode_job(and_circuit):
    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs), [(0, 0), (1, 1)], 30.0, 40.0
    )
    return SimulationJob(model=and_circuit.model, t_end=60.0, simulator="ode", schedule=schedule)


@pytest.fixture()
def ssa_job(and_circuit):
    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs), [(0, 0), (1, 1)], 40.0, 40.0
    )
    return SimulationJob(model=and_circuit.model, t_end=80.0, simulator="ssa", schedule=schedule)


class TestAsyncDelivery:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_arun_matches_sync_bit_for_bit(self, ssa_job, workers):
        """The acceptance contract: async trajectories are bit-identical to the
        sync path, on both the serial and pool executors."""
        sync = run_ensemble(replicate_jobs(ssa_job, 4, seed=11), workers=workers)
        as_run = asyncio.run(arun_ensemble(replicate_jobs(ssa_job, 4, seed=11), workers=workers))
        assert len(as_run) == 4
        for index, (_, expected) in enumerate(sync):
            assert np.array_equal(as_run.trajectory(index).times, expected.times)
            assert np.array_equal(as_run.trajectory(index).data, expected.data)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_aiter_matches_sync_bit_for_bit(self, ssa_job, workers):
        sync = run_ensemble(replicate_jobs(ssa_job, 4, seed=11), workers=workers)

        async def _collect():
            collected = {}
            async for index, _, trajectory in aiter_ensemble(
                replicate_jobs(ssa_job, 4, seed=11), workers=workers
            ):
                collected[index] = trajectory
            return collected

        streamed = asyncio.run(_collect())
        assert sorted(streamed) == [0, 1, 2, 3]
        for index, (_, expected) in enumerate(sync):
            assert np.array_equal(streamed[index].data, expected.data)

    def test_aiter_ordered_delivers_in_submission_order(self, ode_job):
        async def _indices(ordered):
            return [
                index
                async for index, _, _ in aiter_ensemble(
                    replicate_jobs(ode_job, 6, seed=3), workers=2, ordered=ordered
                )
            ]

        assert asyncio.run(_indices(True)) == [0, 1, 2, 3, 4, 5]
        assert sorted(asyncio.run(_indices(False))) == [0, 1, 2, 3, 4, 5]

    def test_arun_reduce_keeps_summaries(self, ode_job):
        result = asyncio.run(
            arun_ensemble(
                replicate_jobs(ode_job, 4, seed=7),
                workers=1,
                reduce=lambda index, job, trajectory: float(trajectory.data.sum()),
            )
        )
        assert result.is_reduced
        assert result.trajectories is None
        assert len(result.reduced) == 4
        sync = run_ensemble(
            replicate_jobs(ode_job, 4, seed=7),
            workers=1,
            reduce=lambda index, job, trajectory: float(trajectory.data.sum()),
        )
        assert result.reduced == sync.reduced

    def test_arun_accepts_async_reducer(self, ode_job):
        async def _reduce(index, job, trajectory):
            await asyncio.sleep(0)
            return index * 10

        result = asyncio.run(
            arun_ensemble(replicate_jobs(ode_job, 3, seed=1), workers=1, reduce=_reduce)
        )
        assert result.reduced == [0, 10, 20]

    def test_progress_fires_once_per_completed_run(self, ode_job):
        seen = []

        async def _go():
            async for _ in aiter_ensemble(
                replicate_jobs(ode_job, 3, seed=2),
                workers=1,
                progress=lambda done, total, job: seen.append((done, total)),
            ):
                pass

        asyncio.run(_go())
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_empty_batch_rejected(self):
        async def _go():
            async for _ in aiter_ensemble([]):
                pass

        with pytest.raises(EngineError):
            asyncio.run(_go())
        with pytest.raises(EngineError):
            asyncio.run(arun_ensemble([]))

    def test_loop_stays_responsive_during_pool_batch(self, ode_job):
        """The point of the async layer: other coroutines keep running while a
        pool batch executes."""
        ticks = []

        async def _ticker(stop):
            while not stop.is_set():
                ticks.append(1)
                await asyncio.sleep(0.005)

        async def _go():
            stop = asyncio.Event()
            ticker = asyncio.create_task(_ticker(stop))
            await arun_ensemble(replicate_jobs(ode_job, 6, seed=1), workers=2)
            stop.set()
            await ticker

        asyncio.run(_go())
        assert len(ticks) > 3


class TestAsyncExecutorLifecycle:
    def test_needs_exactly_one_of_workers_or_executor(self):
        with pytest.raises(EngineError):
            AsyncEnsembleExecutor()
        with pytest.raises(EngineError):
            AsyncEnsembleExecutor(workers=2, executor=ProcessPoolEnsembleExecutor(2))

    def test_owned_pool_opens_and_closes_with_context(self, ode_job):
        async def _go():
            async with AsyncEnsembleExecutor(workers=2) as executor:
                assert executor.is_open
                first = await arun_ensemble(replicate_jobs(ode_job, 2, seed=1), executor=executor)
                pool = executor.sync_executor._pool
                second = await arun_ensemble(replicate_jobs(ode_job, 2, seed=2), executor=executor)
                assert executor.sync_executor._pool is pool  # one persistent pool
                return executor, first, second

        executor, first, second = asyncio.run(_go())
        assert not executor.is_open
        assert first.stats.n_jobs == second.stats.n_jobs == 2

    def test_wrapped_executor_lifecycle_stays_with_caller(self, ode_job):
        mine = ProcessPoolEnsembleExecutor(2)

        async def _go():
            async with AsyncEnsembleExecutor(executor=mine) as facade:
                await arun_ensemble(replicate_jobs(ode_job, 2, seed=1), executor=facade)

        asyncio.run(_go())
        assert mine.is_open  # the facade did not close what it does not own
        mine.close()

    def test_warm_cache_across_async_batches(self, ode_job):
        """Two async batches on one facade-owned pool: the second is pure hits."""

        async def _go():
            async with AsyncEnsembleExecutor(workers=1) as executor:
                first = await arun_ensemble(replicate_jobs(ode_job, 3, seed=1), executor=executor)
                second = await arun_ensemble(replicate_jobs(ode_job, 3, seed=2), executor=executor)
            return first, second

        first, second = asyncio.run(_go())
        assert first.stats.cache_misses == 1
        assert first.stats.cache_hits == 2
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hits == 3


class TestGatherStudies:
    def test_gather_shares_one_warm_pool_across_studies(self, and_circuit):
        """≥3 studies on one shared executor: after a warm-up study, every
        gathered study reports warm-cache hits only — and their per-study
        statistics stay their own despite running concurrently."""
        n = 3

        def _study(executor):
            return run_replicate_study(
                and_circuit, n_replicates=n, hold_time=80.0, rng=21, executor=executor
            )

        async def _go():
            with ProcessPoolEnsembleExecutor(1) as executor:
                warmup = await asyncio.to_thread(_study, executor)
                studies = await gather_studies([_study, _study, _study], executor=executor)
            return warmup, studies

        warmup, studies = asyncio.run(_go())
        assert warmup.stats.cache_misses == 1
        assert len(studies) == 3
        for study in studies:
            assert study.stats.cache_misses == 0
            assert study.stats.cache_hits == n
            assert study.fitness_values == warmup.fitness_values  # same seed, same pool

    def test_gather_accepts_async_studies(self, ode_job):
        async def _study(executor):
            return await arun_ensemble(replicate_jobs(ode_job, 2, seed=4), executor=executor)

        results = asyncio.run(gather_studies([_study, _study], workers=2))
        assert len(results) == 2
        assert all(result.stats.n_jobs == 2 for result in results)

    def test_gather_preserves_study_order(self, ode_job):
        def _make(tag):
            def _study(executor):
                run_ensemble(replicate_jobs(ode_job, 1, seed=tag), executor=executor)
                return tag

            return _study

        results = asyncio.run(gather_studies([_make(1), _make(2), _make(3)], workers=2))
        assert results == [1, 2, 3]

    def test_gather_return_exceptions(self):
        def _boom(executor):
            raise ValueError("study exploded")

        def _fine(executor):
            return "ok"

        results = asyncio.run(
            gather_studies([_boom, _fine], return_exceptions=True),
        )
        assert isinstance(results[0], ValueError)
        assert results[1] == "ok"

    def test_failing_study_lets_siblings_finish_before_raising(self, ode_job):
        """Thread-borne studies cannot be cancelled, so the shared pool must
        stay alive until every sibling settles — only then does the first
        failure propagate."""
        finished = []

        def _boom(executor):
            raise ValueError("study exploded")

        def _slow(executor):
            result = run_ensemble(replicate_jobs(ode_job, 2, seed=6), executor=executor)
            finished.append(result.stats.n_jobs)
            return result

        with pytest.raises(ValueError, match="study exploded"):
            asyncio.run(gather_studies([_boom, _slow], workers=2))
        assert finished == [2]  # the sibling ran to completion on a live pool

    def test_gather_on_default_serial_executor(self, ode_job):
        """No executor, no workers: studies share one serial executor (and the
        thread-safe process-wide compiled-model cache) without interference."""

        def _study(executor):
            return run_ensemble(replicate_jobs(ode_job, 2, seed=8), executor=executor)

        results = asyncio.run(gather_studies([_study, _study, _study]))
        assert len(results) == 3
        for result in results:
            assert np.array_equal(result.trajectory(0).data, results[0].trajectory(0).data)
            assert result.stats.cache_hits + result.stats.cache_misses == 2

    def test_gather_needs_at_least_one_study(self):
        with pytest.raises(EngineError):
            asyncio.run(gather_studies([]))


class TestAsyncStudyEntryPoints:
    def test_arun_replicate_study_matches_sync(self, and_circuit):
        sync = run_replicate_study(and_circuit, n_replicates=3, hold_time=80.0, rng=5)
        as_run = asyncio.run(
            arun_replicate_study(and_circuit, n_replicates=3, hold_time=80.0, rng=5)
        )
        assert as_run.fitness_values == sync.fitness_values
        assert as_run.recovery_rate == sync.recovery_rate

    def test_aestimate_threshold_matches_sync(self, toy_model):
        from repro.vlab import aestimate_threshold, estimate_threshold

        kwargs = dict(
            input_species=["A"],
            output_species="Y",
            settle_time=120.0,
            simulator="ode",
        )
        sync = estimate_threshold(toy_model, **kwargs)
        as_run = asyncio.run(aestimate_threshold(toy_model, **kwargs))
        assert as_run.threshold == sync.threshold
        assert as_run.levels == sync.levels

    def test_athreshold_sweep_matches_sync(self, and_circuit):
        from repro.analysis import athreshold_sweep, threshold_sweep

        kwargs = dict(thresholds=[15.0], hold_time=80.0, simulator="ode")
        sync = threshold_sweep(and_circuit, **kwargs)
        as_run = asyncio.run(athreshold_sweep(and_circuit, **kwargs))
        assert [e.result.truth_table.outputs for e in as_run] == [
            e.result.truth_table.outputs for e in sync
        ]

    def test_concurrent_replicate_studies_inside_one_loop(self, and_circuit):
        """The web-service shape: several requests' studies awaited together,
        multiplexed over one shared pool, each reporting its own stats."""

        async def _go():
            with ProcessPoolEnsembleExecutor(2) as executor:
                return await asyncio.gather(
                    arun_replicate_study(
                        and_circuit, n_replicates=2, hold_time=80.0, rng=1, executor=executor
                    ),
                    arun_replicate_study(
                        and_circuit, n_replicates=2, hold_time=80.0, rng=2, executor=executor
                    ),
                )

        first, second = asyncio.run(_go())
        assert first.n_replicates == second.n_replicates == 2
        assert first.stats.cache_hits + first.stats.cache_misses == 2
        assert second.stats.cache_hits + second.stats.cache_misses == 2
