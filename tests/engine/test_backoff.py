"""Unit tests for the shared retry policy (engine/backoff.py).

The coordinator's re-dial loops and the supervisor's restart policy both
lean on this one module, so the schedule itself is pinned here: capped
exponential growth, a hard upper bound even under jitter, deterministic
draws for a seeded RNG, and reset semantics.
"""

import random

import pytest

from repro.engine.backoff import Backoff, BackoffPolicy
from repro.errors import EngineError


class TestBackoffPolicy:
    def test_unjittered_schedule_is_capped_exponential(self):
        policy = BackoffPolicy(initial=0.1, multiplier=2.0, maximum=1.0, jitter=0.0)
        delays = [policy.delay(n) for n in range(6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.0, 1.0])

    def test_jitter_stays_within_the_band_and_never_exceeds_base(self):
        policy = BackoffPolicy(initial=0.5, multiplier=2.0, maximum=8.0, jitter=0.5)
        rng = random.Random(42)
        for attempt in range(12):
            base = policy.base_delay(attempt)
            for _ in range(50):
                delay = policy.delay(attempt, rng=rng)
                assert base * 0.5 <= delay <= base

    def test_seeded_rng_gives_a_deterministic_schedule(self):
        policy = BackoffPolicy()
        first = [policy.delay(n, rng=random.Random(7)) for n in range(5)]
        second = [policy.delay(n, rng=random.Random(7)) for n in range(5)]
        assert first == second

    def test_delays_iterator_matches_delay_by_attempt(self):
        policy = BackoffPolicy(jitter=0.0)
        stream = policy.delays()
        assert [next(stream) for _ in range(4)] == [policy.delay(n) for n in range(4)]

    def test_huge_attempt_counts_do_not_overflow(self):
        policy = BackoffPolicy(initial=0.1, multiplier=10.0, maximum=3.0, jitter=0.0)
        assert policy.delay(10_000) == 3.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial": 0.0},
            {"initial": -1.0},
            {"multiplier": 0.5},
            {"initial": 2.0, "maximum": 1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(EngineError):
            BackoffPolicy(**kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(EngineError):
            BackoffPolicy().delay(-1)


class TestBackoff:
    def test_next_delay_advances_and_reset_rewinds(self):
        backoff = Backoff(BackoffPolicy(initial=0.1, multiplier=2.0, maximum=9.0, jitter=0.0))
        assert backoff.next_delay() == pytest.approx(0.1)
        assert backoff.next_delay() == pytest.approx(0.2)
        assert backoff.attempt == 2
        backoff.reset()
        assert backoff.attempt == 0
        assert backoff.next_delay() == pytest.approx(0.1)

    def test_default_policy_is_the_module_default(self):
        assert Backoff().policy == BackoffPolicy()

    def test_instance_rng_is_used(self):
        policy = BackoffPolicy()
        a = Backoff(policy, rng=random.Random(3))
        b = Backoff(policy, rng=random.Random(3))
        assert [a.next_delay() for _ in range(4)] == [b.next_delay() for _ in range(4)]
