"""Unit tests for the fabric's authenticated handshake (engine/auth.py).

The handshake is the gate in front of pickle-over-TCP, so the tests here pin
its security properties directly on socket pairs, without a full fabric:
mutual success with a shared key, fail-closed on every mismatch shape
(wrong key, keyed vs unkeyed in both directions), reflection resistance via
the role tags, clean rejection of protocol-1 / garbage peers — and, the
acceptance criterion, that **no rejected path ever unpickles a byte**.
"""

import os
import pickle
import socket
import threading

import pytest

from repro.engine import auth
from repro.engine.auth import (
    KEY_ENV,
    ROLE_COORDINATOR,
    ROLE_WORKER,
    AuthenticationError,
    ProtocolError,
    handshake,
    resolve_key,
)
from repro.errors import EngineError


def _pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


def _run_both(coordinator_key, worker_key):
    """Run the handshake on both ends of a socketpair; return (coord_exc, worker_exc)."""
    coord_sock, worker_sock = _pair()
    outcomes = {}

    def side(name, sock, key, role, peer_role):
        try:
            handshake(sock, key, role=role, peer_role=peer_role)
            outcomes[name] = None
        except Exception as error:  # noqa: BLE001 - recorded for assertions
            outcomes[name] = error

    threads = [
        threading.Thread(
            target=side,
            args=("coord", coord_sock, coordinator_key, ROLE_COORDINATOR, ROLE_WORKER),
        ),
        threading.Thread(
            target=side,
            args=("worker", worker_sock, worker_key, ROLE_WORKER, ROLE_COORDINATOR),
        ),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
        assert not thread.is_alive(), "handshake deadlocked"
    coord_sock.close()
    worker_sock.close()
    return outcomes["coord"], outcomes["worker"]


@pytest.fixture
def no_unpickling(monkeypatch):
    """Fail the test if anything is unpickled while the fixture is active."""
    calls = []

    def counting_loads(*args, **kwargs):
        calls.append(args)
        raise AssertionError("pickle.loads called on a handshake-rejected path")

    monkeypatch.setattr(pickle, "loads", counting_loads)
    monkeypatch.setattr(pickle, "load", counting_loads)
    yield calls


class TestMutualHandshake:
    def test_shared_key_succeeds_both_sides(self):
        coord, worker = _run_both(b"sekrit", b"sekrit")
        assert coord is None and worker is None

    def test_unkeyed_both_sides_succeeds(self):
        coord, worker = _run_both(None, None)
        assert coord is None and worker is None

    def test_wrong_key_rejected_both_sides(self, no_unpickling):
        coord, worker = _run_both(b"right", b"wrong")
        assert isinstance(coord, AuthenticationError)
        assert isinstance(worker, AuthenticationError)
        assert no_unpickling == []

    def test_keyed_coordinator_rejects_unkeyed_worker(self, no_unpickling):
        coord, worker = _run_both(b"sekrit", None)
        assert isinstance(coord, AuthenticationError)
        assert isinstance(worker, AuthenticationError)
        assert "plaintext" in str(coord)
        assert no_unpickling == []

    def test_unkeyed_coordinator_rejects_keyed_worker(self, no_unpickling):
        coord, worker = _run_both(None, b"sekrit")
        assert isinstance(coord, AuthenticationError)
        assert KEY_ENV in str(coord)
        assert isinstance(worker, AuthenticationError)
        assert no_unpickling == []

    def test_same_role_is_a_programming_error(self):
        left, right = _pair()
        try:
            with pytest.raises(EngineError, match="roles must differ"):
                handshake(left, b"k", role=ROLE_WORKER, peer_role=ROLE_WORKER)
        finally:
            left.close()
            right.close()


class TestHostilePeers:
    def test_reflection_attack_is_rejected(self, no_unpickling):
        """An attacker echoing our own bytes back must not authenticate.

        The mirror returns a byte-perfect copy of everything we send —
        preamble and digest included.  Without role tags in the MAC input the
        echoed digest would be exactly the answer we expect; with them it is
        an answer to the wrong role and must fail.
        """
        honest, mirror = _pair()
        stop = threading.Event()

        def echo():
            while not stop.is_set():
                try:
                    data = mirror.recv(4096)
                except OSError:
                    return
                if not data:
                    return
                try:
                    mirror.sendall(data)
                except OSError:
                    return

        thread = threading.Thread(target=echo, daemon=True)
        thread.start()
        try:
            with pytest.raises(AuthenticationError, match="wrong fabric key"):
                handshake(honest, b"sekrit", role=ROLE_COORDINATOR, peer_role=ROLE_WORKER)
        finally:
            stop.set()
            honest.close()
            mirror.close()
            thread.join(timeout=5.0)
        assert no_unpickling == []

    def test_protocol_1_style_peer_rejected_before_unpickling(self, no_unpickling):
        """A v1 worker speaks a pickled hello first; v2 must reject on magic."""
        coordinator, v1_worker = _pair()
        v1_hello = pickle.dumps({"type": "hello", "version": 1, "capacity": 1})
        v1_worker.sendall(len(v1_hello).to_bytes(4, "big") + v1_hello)
        try:
            with pytest.raises(ProtocolError, match="protocol-1 peer"):
                handshake(coordinator, None, role=ROLE_COORDINATOR, peer_role=ROLE_WORKER)
        finally:
            coordinator.close()
            v1_worker.close()
        assert no_unpickling == []

    def test_garbage_preamble_rejected(self, no_unpickling):
        coordinator, garbage = _pair()
        garbage.sendall(os.urandom(64))
        try:
            with pytest.raises(ProtocolError, match="bad preamble magic"):
                handshake(coordinator, b"sekrit", role=ROLE_COORDINATOR, peer_role=ROLE_WORKER)
        finally:
            coordinator.close()
            garbage.close()
        assert no_unpickling == []

    def test_peer_hanging_up_mid_handshake_is_a_protocol_error(self, no_unpickling):
        coordinator, flaky = _pair()
        flaky.sendall(b"GLF2")  # magic only, then vanish
        flaky.close()
        try:
            with pytest.raises(ProtocolError, match="mid-handshake"):
                handshake(coordinator, None, role=ROLE_COORDINATOR, peer_role=ROLE_WORKER)
        finally:
            coordinator.close()
        assert no_unpickling == []

    def test_silent_peer_times_out_as_protocol_error(self, no_unpickling):
        coordinator, silent = _pair()
        coordinator.settimeout(0.2)
        try:
            with pytest.raises(ProtocolError, match="went silent"):
                handshake(coordinator, None, role=ROLE_COORDINATOR, peer_role=ROLE_WORKER)
        finally:
            coordinator.close()
            silent.close()
        assert no_unpickling == []


class TestResolveKey:
    def test_explicit_key_str_is_utf8_encoded(self):
        assert resolve_key("sekrit") == b"sekrit"

    def test_explicit_key_bytes_pass_through(self):
        assert resolve_key(b"\x00\xffraw") == b"\x00\xffraw"

    def test_key_file_strips_one_trailing_newline(self, tmp_path):
        path = tmp_path / "fabric.key"
        path.write_bytes(b"deadbeef\n")
        assert resolve_key(key_file=str(path)) == b"deadbeef"

    def test_key_file_strips_crlf(self, tmp_path):
        path = tmp_path / "fabric.key"
        path.write_bytes(b"deadbeef\r\n")
        assert resolve_key(key_file=str(path)) == b"deadbeef"

    def test_env_var_is_the_fallback(self, monkeypatch):
        monkeypatch.setenv(KEY_ENV, "from-env")
        assert resolve_key() == b"from-env"

    def test_explicit_key_beats_env(self, monkeypatch):
        monkeypatch.setenv(KEY_ENV, "from-env")
        assert resolve_key("explicit") == b"explicit"

    def test_use_env_false_ignores_env(self, monkeypatch):
        monkeypatch.setenv(KEY_ENV, "from-env")
        assert resolve_key(use_env=False) is None

    def test_no_key_anywhere_means_unkeyed(self, monkeypatch):
        monkeypatch.delenv(KEY_ENV, raising=False)
        assert resolve_key() is None

    def test_empty_key_rejected(self):
        with pytest.raises(EngineError, match="must not be empty"):
            resolve_key("")

    def test_empty_key_file_rejected(self, tmp_path):
        path = tmp_path / "fabric.key"
        path.write_bytes(b"\n")
        with pytest.raises(EngineError, match="is empty"):
            resolve_key(key_file=str(path))

    def test_missing_key_file_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="cannot read"):
            resolve_key(key_file=str(tmp_path / "nope.key"))

    def test_key_and_key_file_together_rejected(self, tmp_path):
        with pytest.raises(EngineError, match="not both"):
            resolve_key("k", str(tmp_path / "f.key"))


def test_module_is_exported_from_engine():
    import repro.engine as engine

    for name in ("AuthenticationError", "ProtocolError", "resolve_key"):
        assert name in engine.__all__, name
    assert auth.KEY_ENV == "GENLOGIC_FABRIC_KEY"
