"""Tests for the auto-scaling worker supervisor (engine/supervisor.py).

Covers the process-management contract: a supervised fleet joins a
coordinator (including an authenticated one) and executes work, a killed
worker is restarted and rejoins, targets rescale live, and the status
surfaces (dict + HTTP endpoint) report what an operator needs.  The
fault-injection suite (test_chaos.py) covers how the *coordinator* behaves
while all this churn happens.
"""

import json
import os
import signal
import time
import urllib.request

import pytest

from repro.engine import DistributedEnsembleExecutor, WorkerSupervisor
from repro.engine.backoff import BackoffPolicy
from repro.errors import EngineError


def _echo(payload):
    return payload


#: Fast restarts so the kill/restart tests finish in seconds.
FAST_RESTARTS = BackoffPolicy(initial=0.05, multiplier=2.0, maximum=0.5, jitter=0.5)


def _supervised_fabric(n_workers, **kwargs):
    """A listening executor plus a supervisor feeding it ``n_workers``."""
    executor = DistributedEnsembleExecutor(
        listen="127.0.0.1:0",
        min_workers=n_workers,
        connect_timeout=60.0,
        **{k: v for k, v in kwargs.items() if k in ("key",)},
    )
    supervisor = WorkerSupervisor(
        n_workers,
        connect=lambda: (
            "{}:{}".format(*executor.bound_address) if executor.bound_address else None
        ),
        policy=FAST_RESTARTS,
        stable_after=1.0,
        poll_interval=0.05,
        **{k: v for k, v in kwargs.items() if k in ("key",)},
    )
    return executor, supervisor


class TestConstruction:
    def test_needs_exactly_one_wiring(self):
        with pytest.raises(EngineError):
            WorkerSupervisor(1)
        with pytest.raises(EngineError):
            WorkerSupervisor(1, connect="a:1", listen_base="b:2")

    def test_negative_target_rejected(self):
        with pytest.raises(EngineError):
            WorkerSupervisor(-1, connect="a:1")

    def test_addresses_only_in_listen_mode(self):
        supervisor = WorkerSupervisor(2, connect="a:1")
        with pytest.raises(EngineError):
            supervisor.addresses

    def test_listen_mode_addresses_are_consecutive_ports(self):
        supervisor = WorkerSupervisor(3, listen_base="127.0.0.1:9100")
        assert supervisor.addresses == ["127.0.0.1:9100", "127.0.0.1:9101", "127.0.0.1:9102"]


class TestSupervisedFabric:
    def test_supervised_workers_join_and_execute(self):
        executor, supervisor = _supervised_fabric(2)
        with supervisor:
            with executor:
                futures = [executor.submit(_echo, n) for n in range(8)]
                assert sorted(f.result(timeout=60.0) for f in futures) == list(range(8))
                status = supervisor.status()
                assert status["alive"] == 2
                assert status["mode"] == "connect"
            supervisor.stop()  # before executor teardown races a restart

    def test_killed_worker_is_restarted_and_rejoins(self):
        executor, supervisor = _supervised_fabric(1)
        with supervisor:
            with executor:
                assert executor.submit(_echo, "warm").result(timeout=60.0) == "warm"
                supervisor.wait_for_alive(1)
                victim_pid = supervisor.status()["workers"][0]["pid"]
                os.kill(victim_pid, signal.SIGKILL)
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    status = supervisor.status()
                    if status["restarts_total"] >= 1 and status["alive"] >= 1:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("supervisor never restarted the killed worker")
                # The replacement re-joins the fabric and serves work.
                assert executor.submit(_echo, "again").result(timeout=60.0) == "again"
            supervisor.stop()

    def test_authenticated_supervised_fabric_executes(self):
        executor, supervisor = _supervised_fabric(1, key="sup-secret")
        with supervisor:
            with executor:
                assert executor.authenticated
                assert executor.submit(_echo, 11).result(timeout=60.0) == 11
                assert supervisor.status()["authenticated"] is True
            supervisor.stop()


class TestScaling:
    def test_set_target_scales_down_then_up(self):
        executor, supervisor = _supervised_fabric(2)
        with supervisor:
            with executor:
                supervisor.wait_for_alive(2)
                supervisor.set_target(0)
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline and supervisor.status()["alive"] > 0:
                    time.sleep(0.05)
                assert supervisor.status()["alive"] == 0
                assert supervisor.target == 0
                supervisor.set_target(1)
                supervisor.wait_for_alive(1)
                assert executor.submit(_echo, 5).result(timeout=60.0) == 5
            supervisor.stop()


class TestStatusSurfaces:
    def test_status_shape_and_executor_health_attachment(self):
        executor, supervisor = _supervised_fabric(1)
        with supervisor:
            with executor:
                supervisor.attach_executor(executor)
                supervisor.wait_for_alive(1)
                assert executor.submit(_echo, 3).result(timeout=60.0) == 3
                status = supervisor.status()
                assert set(status) >= {
                    "target",
                    "mode",
                    "alive",
                    "restarts_total",
                    "workers",
                    "fabric",
                }
                worker = status["workers"][0]
                assert worker["alive"] is True and worker["pid"] is not None
                fabric = status["fabric"]
                assert fabric["queue_depth"] == 0
                assert fabric["tasks_completed"] >= 1
                assert fabric["workers"][0]["tasks_per_second"] >= 0.0
            supervisor.stop()

    def test_http_status_endpoint_serves_the_snapshot(self):
        supervisor = WorkerSupervisor(0, connect="127.0.0.1:1")
        with supervisor:
            host, port = supervisor.serve_status()
            with urllib.request.urlopen(f"http://{host}:{port}/status", timeout=10.0) as reply:
                assert reply.status == 200
                document = json.loads(reply.read())
            assert document["target"] == 0
            assert document["workers"] == []
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://{host}:{port}/nope", timeout=10.0)
            with pytest.raises(EngineError):
                supervisor.serve_status()
