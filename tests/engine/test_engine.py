"""Tests for the ensemble execution engine: jobs, executors, cache, APIs."""

import numpy as np
import pytest

from repro.engine import (
    CompiledModelCache,
    EnsembleResult,
    ProcessPoolEnsembleExecutor,
    SerialExecutor,
    SimulationJob,
    default_cache,
    get_executor,
    map_over_parameters,
    replicate_jobs,
    run_ensemble,
    run_job,
)
from repro.engine.jobs import EnsembleStats
from repro.errors import EngineError, SimulationError
from repro.stochastic import (
    CANONICAL_SIMULATORS,
    SIMULATOR_ALIASES,
    SIMULATORS,
    canonical_simulator_name,
    fan_out_seeds,
    resolve_simulator,
    simulate_ssa,
    spawn_rngs,
)
from repro.stochastic.events import InputSchedule
from repro.vlab import LogicExperiment


@pytest.fixture()
def and_job(and_circuit):
    """A short seeded SSA job on the AND gate."""
    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs),
        [(0, 0), (1, 1)],
        40.0,
        40.0,
    )
    return SimulationJob(
        model=and_circuit.model,
        t_end=80.0,
        simulator="ssa",
        schedule=schedule,
    )


class TestSimulatorRegistry:
    def test_direct_is_a_documented_alias_of_ssa(self):
        assert canonical_simulator_name("direct") == "ssa"
        assert SIMULATOR_ALIASES["direct"] == "ssa"
        assert resolve_simulator("direct") is simulate_ssa

    def test_normalization_is_case_and_space_insensitive(self):
        assert canonical_simulator_name("  SSA ") == "ssa"
        assert canonical_simulator_name("Tau-Leap") == "tau-leap"

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(SimulationError, match="quantum"):
            canonical_simulator_name("quantum")

    def test_flat_mapping_is_derived_from_one_source_of_truth(self):
        for alias, target in SIMULATOR_ALIASES.items():
            assert SIMULATORS[alias] is CANONICAL_SIMULATORS[target]
        for name, fn in CANONICAL_SIMULATORS.items():
            assert SIMULATORS[name] is fn


class TestSeedFanOut:
    def test_matches_spawn_rngs_for_int_roots(self):
        seeds = fan_out_seeds(42, 3)
        via_seeds = [np.random.default_rng(s).random(5) for s in seeds]
        via_spawn = [g.random(5) for g in spawn_rngs(42, 3)]
        for a, b in zip(via_seeds, via_spawn):
            assert np.array_equal(a, b)

    def test_matches_spawn_rngs_for_generator_roots(self):
        seeds = fan_out_seeds(np.random.default_rng(7), 3)
        via_seeds = [np.random.default_rng(s).random(5) for s in seeds]
        via_spawn = [g.random(5) for g in spawn_rngs(np.random.default_rng(7), 3)]
        for a, b in zip(via_seeds, via_spawn):
            assert np.array_equal(a, b)

    def test_children_are_picklable_and_independent(self):
        import pickle

        seeds = fan_out_seeds(3, 4)
        assert len({np.random.default_rng(s).random() for s in seeds}) == 4
        for seed in seeds:
            pickle.loads(pickle.dumps(seed))

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            fan_out_seeds(1, -1)

    def test_numpy_integer_seeds_are_deterministic(self):
        first = fan_out_seeds(np.int64(42), 2)
        second = fan_out_seeds(np.int64(42), 2)
        for a, b in zip(first, second):
            assert np.array_equal(
                np.random.default_rng(a).random(4),
                np.random.default_rng(b).random(4),
            )
        # np.int64 and plain int roots agree.
        int_children = fan_out_seeds(42, 2)
        assert np.array_equal(
            np.random.default_rng(first[0]).random(4),
            np.random.default_rng(int_children[0]).random(4),
        )

    def test_seedsequence_roots_spawn_directly(self):
        root_a, root_b = np.random.SeedSequence(42).spawn(2)
        stream_a = np.random.default_rng(fan_out_seeds(root_a, 1)[0]).random(4)
        stream_b = np.random.default_rng(fan_out_seeds(root_b, 1)[0]).random(4)
        stream_int = np.random.default_rng(fan_out_seeds(42, 1)[0]).random(4)
        # Sibling roots (and the raw int root) all fan to distinct streams.
        assert not np.array_equal(stream_a, stream_b)
        assert not np.array_equal(stream_a, stream_int)

    def test_propagation_phases_do_not_share_streams(self, and_circuit):
        """With an int seed and SSA, the settled-levels batch and the
        transition batch must be deterministic yet mutually independent."""
        from repro.vlab import estimate_propagation_delay

        kwargs = dict(
            input_species=and_circuit.inputs,
            output_species=and_circuit.output,
            threshold=15.0,
            settle_time=120.0,
            observation_time=120.0,
            simulator="ssa",
            rng=11,
        )
        first = estimate_propagation_delay(and_circuit.model, **kwargs)
        second = estimate_propagation_delay(and_circuit.model, **kwargs)
        assert first.delays == second.delays  # deterministic per seed

    def test_propagation_accepts_seedsequence_rng(self, and_circuit):
        from repro.vlab import estimate_propagation_delay

        root = np.random.SeedSequence(3)
        analysis = estimate_propagation_delay(
            and_circuit.model,
            and_circuit.inputs,
            and_circuit.output,
            threshold=15.0,
            settle_time=100.0,
            observation_time=100.0,
            simulator="ssa",
            rng=root,
            transitions=[("00", "11")],
        )
        assert analysis.delays


class TestSimulationJob:
    def test_alias_is_canonicalized_at_construction(self, and_circuit):
        job = SimulationJob(model=and_circuit.model, t_end=10.0, simulator="direct")
        assert job.simulator == "ssa"

    def test_invalid_settings_rejected(self, and_circuit):
        with pytest.raises(EngineError):
            SimulationJob(model=and_circuit.model, t_end=0.0)
        with pytest.raises(EngineError):
            SimulationJob(model=and_circuit.model, t_end=1.0, sample_interval=0.0)
        with pytest.raises(SimulationError):
            SimulationJob(model=and_circuit.model, t_end=1.0, simulator="bogus")

    def test_frozen_overrides_are_order_independent(self, and_circuit):
        a = SimulationJob(
            model=and_circuit.model,
            t_end=1.0,
            parameter_overrides={"x": 1.0, "y": 2.0},
        )
        b = SimulationJob(
            model=and_circuit.model,
            t_end=1.0,
            parameter_overrides={"y": 2.0, "x": 1.0},
        )
        assert a.frozen_overrides() == b.frozen_overrides()


class TestExecutorParity:
    def test_serial_and_process_pool_are_bit_identical(self, and_job):
        jobs_serial = replicate_jobs(and_job, 3, seed=20170654)
        jobs_parallel = replicate_jobs(and_job, 3, seed=20170654)
        serial = run_ensemble(jobs_serial, workers=1)
        parallel = run_ensemble(jobs_parallel, workers=2)
        assert serial.stats.executor == "serial"
        assert parallel.stats.executor == "process-pool"
        for (_, a), (_, b) in zip(serial, parallel):
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.data, b.data)

    def test_results_come_back_in_submission_order(self, and_job):
        jobs = replicate_jobs(and_job, 4, seed=5, tags=["a", "b", "c", "d"])
        result = run_ensemble(jobs, workers=2)
        assert result.tags() == ["a", "b", "c", "d"]

    def test_generator_seed_rejected_by_process_pool(self, and_job):
        job = replicate_jobs(and_job, 1, seed=1)[0]
        job.seed = np.random.default_rng(1)
        with pytest.raises(EngineError, match="picklable seeds"):
            ProcessPoolEnsembleExecutor(2).run_jobs([job])

    def test_get_executor_selection(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(4), ProcessPoolEnsembleExecutor)
        assert get_executor(4).workers == 4
        with pytest.raises(EngineError):
            ProcessPoolEnsembleExecutor(0)

    def test_progress_hook_fires_once_per_job(self, and_job):
        seen = []
        jobs = replicate_jobs(and_job, 3, seed=9)
        run_ensemble(jobs, workers=1, progress=lambda done, total, job: seen.append((done, total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]


class TestReplicateStudyParity:
    def test_identical_statistics_serial_vs_parallel(self, and_circuit):
        from repro.analysis import run_replicate_study

        serial = run_replicate_study(
            and_circuit,
            n_replicates=3,
            hold_time=100.0,
            rng=77,
            jobs=1,
        )
        parallel = run_replicate_study(
            and_circuit,
            n_replicates=3,
            hold_time=100.0,
            rng=77,
            jobs=2,
        )
        assert serial.fitness_values == parallel.fitness_values
        assert serial.recovery_rate == parallel.recovery_rate
        assert serial.combination_agreement() == parallel.combination_agreement()
        assert [r.truth_table.outputs for r in serial.results] == [
            r.truth_table.outputs for r in parallel.results
        ]
        assert parallel.stats is not None
        assert parallel.stats.executor == "process-pool"


class TestCompiledModelCache:
    def test_sweep_compiles_the_model_once(self, and_circuit):
        from repro.analysis import threshold_sweep

        cache = default_cache()
        cache.clear()
        threshold_sweep(
            and_circuit,
            thresholds=[10.0, 15.0, 20.0],
            hold_time=60.0,
            rng=1,
            simulator="ode",
        )
        assert cache.misses == 1
        assert cache.hits == 2

    def test_cache_hit_returns_same_compiled_object(self, and_circuit):
        cache = CompiledModelCache()
        first = cache.get(and_circuit.model)
        second = cache.get(and_circuit.model)
        assert first is second
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_overrides_are_part_of_the_key(self, toy_model):
        cache = CompiledModelCache()
        plain = cache.get(toy_model)
        overridden = cache.get(toy_model, (("kd", 0.5),))
        assert plain is not overridden
        assert overridden.constants["kd"] == 0.5
        assert cache.misses == 2

    def test_in_place_model_edits_invalidate_the_entry(self, and_circuit):
        cache = CompiledModelCache()
        model = and_circuit.model.copy()
        before = cache.get(model)
        model.set_initial_amount(and_circuit.output, 60.0)
        after = cache.get(model)
        assert before is not after
        assert after.initial_state[after.index[and_circuit.output]] == 60.0

    def test_compiled_model_input_with_overrides_recompiles(self, toy_model):
        from repro.stochastic import compile_model

        cache = CompiledModelCache()
        compiled = compile_model(toy_model)
        assert cache.get(compiled) is compiled
        overridden = cache.get(compiled, (("kd", 0.5),))
        assert overridden is not compiled
        assert overridden.constants["kd"] == 0.5

    def test_parallel_stats_report_worker_cache(self, and_circuit):
        schedule = InputSchedule.from_combinations(
            list(and_circuit.inputs),
            [(1, 1)],
            30.0,
            40.0,
        )
        template = SimulationJob(
            model=and_circuit.model,
            t_end=30.0,
            simulator="ode",
            schedule=schedule,
        )
        result = run_ensemble(replicate_jobs(template, 4, seed=2), workers=2)
        # Each worker compiles once; everything else is a worker-cache hit.
        assert result.stats.cache_hits + result.stats.cache_misses == 4
        assert 1 <= result.stats.cache_misses <= 2

    def test_lru_eviction_bounds_the_cache(self, toy_model):
        cache = CompiledModelCache(max_entries=2)
        models = [toy_model.copy() for _ in range(3)]
        for model in models:
            cache.get(model)
        assert len(cache) == 2


class TestBatchApis:
    def test_run_job_equals_direct_simulation(self, and_job):
        job = replicate_jobs(and_job, 1, seed=4)[0]
        from repro.stochastic import compile_model

        direct = simulate_ssa(
            compile_model(and_job.model),
            job.t_end,
            schedule=job.schedule,
            rng=np.random.default_rng(job.seed),
        )
        via_engine = run_job(replicate_jobs(and_job, 1, seed=4)[0])
        assert np.array_equal(direct.data, via_engine.data)

    def test_empty_batch_rejected(self):
        with pytest.raises(EngineError):
            run_ensemble([])

    def test_replicate_jobs_preserves_template_tag(self, and_job):
        and_job.tag = {"hold_time": 40.0}
        clones = replicate_jobs(and_job, 2, seed=1)
        assert all(job.tag == {"hold_time": 40.0} for job in clones)

    def test_replicate_jobs_validation(self, and_job):
        with pytest.raises(EngineError):
            replicate_jobs(and_job, 0)
        with pytest.raises(EngineError):
            replicate_jobs(and_job, 2, tags=["only-one"])

    def test_map_over_parameters_tags_and_caches(self, toy_model):
        template = SimulationJob(model=toy_model, t_end=20.0, simulator="ode")
        cache = CompiledModelCache()
        result = map_over_parameters(
            template,
            [{"kd": 0.1}, {"kd": 0.5}, {"kd": 0.1}],
            seed=3,
            cache=cache,
        )
        assert result.tags() == [{"kd": 0.1}, {"kd": 0.5}, {"kd": 0.1}]
        # Two distinct override sets -> two compiles, third run hits the cache.
        assert result.stats.cache_misses == 2
        assert result.stats.cache_hits == 1
        # A stronger kd decays the output harder.
        weak, strong = result.trajectory(0), result.trajectory(1)
        assert strong["Y"][-1] < weak["Y"][-1]

    def test_map_over_parameters_empty_grid_rejected(self, toy_model):
        template = SimulationJob(model=toy_model, t_end=5.0, simulator="ode")
        with pytest.raises(EngineError):
            map_over_parameters(template, [])

    def test_ensemble_result_shape_mismatch_rejected(self, and_job):
        stats = EnsembleStats(n_jobs=1, executor="serial", workers=1, wall_seconds=0.1)
        with pytest.raises(EngineError):
            EnsembleResult(jobs=[and_job], trajectories=[], stats=stats)

    def test_stats_summary_mentions_throughput(self, and_job):
        result = run_ensemble(replicate_jobs(and_job, 2, seed=1))
        assert "runs/s" in result.summary()
        assert result.stats.runs_per_second > 0


class TestExperimentJobApi:
    def test_run_and_job_paths_are_identical(self, and_circuit):
        experiment = LogicExperiment.for_circuit(and_circuit, simulator="ssa")
        direct = experiment.run(hold_time=60.0, rng=123)
        job = experiment.job(hold_time=60.0, seed=123)
        via_job = experiment.datalog_from(job, run_job(job))
        assert np.array_equal(direct.trajectory.data, via_job.trajectory.data)
        assert direct.hold_time == via_job.hold_time

    def test_job_carries_hold_time_meta(self, and_circuit):
        experiment = LogicExperiment.for_circuit(and_circuit)
        job = experiment.job(hold_time=75.0)
        assert job.meta == {"hold_time": 75.0}
        assert job.tag is None

    def test_datalog_from_survives_custom_replicate_tags(self, and_circuit):
        """Caller tags live on .tag; .meta (hold_time) must be preserved."""
        experiment = LogicExperiment.for_circuit(and_circuit, simulator="ode")
        template = experiment.job(hold_time=40.0)
        clones = replicate_jobs(template, 2, seed=1, tags=["first", "second"])
        result = run_ensemble(clones)
        logs = [experiment.datalog_from(job, traj) for job, traj in result]
        assert result.tags() == ["first", "second"]
        assert all(log.hold_time == 40.0 for log in logs)
