"""StudySpec: canonicalization, serialization, and cache-key stability.

The service's content-addressed cache is only sound if the key is (a) stable
— same study described twice, in the same or another process, yields the
same digest — and (b) sensitive — any field that can change the result
changes the digest.  These tests pin both directions.
"""

import pickle
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.engine.spec import STUDY_SPEC_SCHEMA, StudySpec, canonical_workers
from repro.errors import EngineError
from repro.gates.circuits import and_gate_circuit


@pytest.fixture
def spec():
    return StudySpec(circuit="and", n_replicates=3, seed=11, hold_time=80.0)


class TestCanonicalization:
    def test_frozen_and_hashable(self, spec):
        with pytest.raises(Exception):
            spec.n_replicates = 9
        assert spec == StudySpec(circuit="and", n_replicates=3, seed=11, hold_time=80.0)
        assert hash(spec) == hash(spec.replace())

    def test_simulator_aliases_canonicalize(self):
        a = StudySpec(circuit="and", simulator="ssa")
        b = StudySpec(circuit="and", simulator="gillespie")
        assert a.simulator == b.simulator == "ssa"
        assert a == b

    def test_overrides_sort_and_freeze(self):
        a = StudySpec(circuit="and", overrides={"b": 2.0, "a": 1.0})
        b = StudySpec(circuit="and", overrides=[("a", 1.0), ("b", 2.0)])
        assert a.overrides == b.overrides == (("a", 1.0), ("b", 2.0))
        with pytest.raises(EngineError):
            StudySpec(circuit="and", overrides=[("a", 1.0), ("a", 2.0)])

    def test_validation(self):
        with pytest.raises(EngineError):
            StudySpec(circuit="")
        with pytest.raises(EngineError):
            StudySpec(circuit="and", n_replicates=0)
        with pytest.raises(EngineError):
            StudySpec(circuit="and", hold_time=-1.0)
        with pytest.raises(EngineError):
            StudySpec(circuit="and", schema=STUDY_SPEC_SCHEMA + 1)

    def test_for_circuit_attaches_the_instance(self):
        circuit = and_gate_circuit()
        spec = StudySpec.for_circuit(circuit, seed=1)
        assert spec.circuit == circuit.name
        assert spec.resolve_circuit() is circuit
        assert spec.replace(workers=2).resolve_circuit() is circuit


class TestSerialization:
    def test_json_round_trip(self, spec):
        clone = StudySpec.from_json(spec.to_json())
        assert clone == spec

    def test_unknown_fields_rejected(self):
        with pytest.raises(EngineError, match="thresold"):
            StudySpec.from_dict({"circuit": "and", "thresold": 10.0})
        with pytest.raises(EngineError, match="circuit"):
            StudySpec.from_dict({"n_replicates": 3})
        with pytest.raises(EngineError, match="malformed"):
            StudySpec.from_json("{not json")

    def test_pickle_round_trip_drops_memoized_state(self, spec):
        spec.resolve_circuit()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert "_circuit" not in clone.__dict__


class TestCacheKeyStability:
    def test_same_study_built_twice_same_key(self, spec):
        again = StudySpec(circuit="and", n_replicates=3, seed=11, hold_time=80.0)
        assert spec.cache_key() == again.cache_key()

    def test_live_circuit_and_name_agree(self, spec):
        by_object = StudySpec.for_circuit(
            and_gate_circuit(), n_replicates=3, seed=11, hold_time=80.0
        )
        assert by_object.cache_key() == spec.cache_key()

    @pytest.mark.parametrize(
        "change",
        [
            {"seed": 12},
            {"n_replicates": 4},
            {"threshold": 16.0},
            {"fov_ud": 0.3},
            {"hold_time": 81.0},
            {"repeats": 2},
            {"simulator": "ode"},
            {"sample_interval": 2.0},
            {"overrides": (("kd_GFP", 0.1),)},
            {"circuit": "or"},
        ],
    )
    def test_any_result_determining_field_changes_the_key(self, spec, change):
        assert spec.replace(**change).cache_key() != spec.cache_key()

    @pytest.mark.parametrize(
        "change",
        [{"workers": 8}, {"batch_size": 16}, {"analysis_jobs": 4}],
    )
    def test_execution_knobs_do_not_change_the_key(self, spec, change):
        assert spec.replace(**change).cache_key() == spec.cache_key()

    def test_key_stable_across_json_and_pickle_round_trips(self, spec):
        key = spec.cache_key()
        assert StudySpec.from_json(spec.to_json()).cache_key() == key
        assert pickle.loads(pickle.dumps(spec)).cache_key() == key

    def test_unseeded_spec_has_no_key(self):
        with pytest.raises(EngineError, match="seed"):
            StudySpec(circuit="and").cache_key()

    def test_key_stable_across_a_worker_process(self, spec):
        """Parent- and worker-side keys agree (the cross-process contract).

        The service parent and a fabric worker must derive the same key from
        the same spec without talking to each other; a fresh interpreter is
        the strictest version of that.
        """
        src = Path(__file__).resolve().parents[2] / "src"
        script = (
            "import pickle, sys;"
            "spec = pickle.loads(sys.stdin.buffer.read());"
            "print(spec.cache_key())"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            input=pickle.dumps(spec),
            capture_output=True,
            env={"PYTHONPATH": str(src)},
            timeout=120,
        )
        assert result.returncode == 0, result.stderr.decode()
        assert result.stdout.decode().strip() == spec.cache_key()


class TestCanonicalWorkers:
    def test_workers_wins_and_jobs_warns(self):
        assert canonical_workers(4, None) == 4
        assert canonical_workers(None, None, default=2) == 2
        with pytest.warns(DeprecationWarning):
            assert canonical_workers(None, 3) == 3

    def test_conflicting_values_rejected(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(EngineError):
                canonical_workers(2, 3)
            assert canonical_workers(3, 3) == 3
