"""Batch grouping, the batch transports, and the shared-memory lifetime contract.

The engine-level half of the lockstep-batching tests: how jobs pack into
groups, how batch results cross each transport (inline objects, binary frame
bytes, shared-memory segments), and — the part that can silently rot a
machine — that ``/dev/shm`` holds no leaked ``glt_*`` segments after decode,
after an abandoned stream, or after a worker dies mid-batch.
"""

import dataclasses
import glob
import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.engine import (
    DistributedEnsembleExecutor,
    ProcessPoolEnsembleExecutor,
    SerialExecutor,
    batch_job_groups,
    iter_ensemble,
    replicate_jobs,
    run_ensemble,
)
from repro.engine.core import (
    batch_job_payloads,
    decode_batch_result,
    discard_batch_segment,
    simulate_batch_payload,
)
from repro.engine.jobs import SimulationJob
from repro.errors import EngineError
from repro.stochastic.events import InputSchedule


def _shm_segments():
    return sorted(os.path.basename(p) for p in glob.glob("/dev/shm/glt_*"))


@pytest.fixture(autouse=True)
def _isolate_parent_worker_caches():
    """Restore the parent-process worker-side caches after every test.

    ``simulate_batch_payload`` is the *worker* entry point; calling it
    in-process warms this process's module-level worker caches, and
    fork-started pools inherit parent memory — without this isolation a
    later test's "fresh" pool would start warm and its cold-compile
    assertions would fail.
    """
    import repro.engine.cache as cache_module

    names = ("_WORKER_CACHE", "_WORKER_MODELS", "_WORKER_KERNELS", "_WORKER_BLOBS_SEEN")
    saved = {name: dict(getattr(cache_module, name)) for name in names}
    yield
    for name, value in saved.items():
        current = getattr(cache_module, name)
        current.clear()
        current.update(value)


@pytest.fixture(scope="module")
def template(and_circuit):
    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs), [(0, 0), (1, 1)], 30.0, 30.0
    )
    return SimulationJob(
        model=and_circuit.model, t_end=60.0, simulator="ssa", schedule=schedule
    )


class TestGrouping:
    def test_replicates_pack_into_ceil_div_groups(self, template):
        jobs = replicate_jobs(template, 7, seed=1)
        groups = batch_job_groups(jobs, 3)
        assert groups == [[0, 1, 2], [3, 4, 5], [6]]

    def test_configuration_change_closes_the_group(self, template):
        jobs = replicate_jobs(template, 4, seed=1)
        jobs[2] = dataclasses.replace(jobs[2], t_end=45.0)
        groups = batch_job_groups(jobs, 4)
        assert groups == [[0, 1], [2], [3]]

    def test_different_schedule_objects_do_not_batch(self, template, and_circuit):
        jobs = replicate_jobs(template, 2, seed=1)
        other_schedule = InputSchedule.from_combinations(
            list(and_circuit.inputs), [(0, 0), (1, 1)], 30.0, 30.0
        )
        jobs[1] = dataclasses.replace(jobs[1], schedule=other_schedule)
        assert batch_job_groups(jobs, 2) == [[0], [1]]

    def test_nonpositive_batch_size_rejected(self, template):
        with pytest.raises(EngineError):
            batch_job_groups(replicate_jobs(template, 2, seed=1), 0)

    def test_generator_seeds_rejected_for_remote_transports(self, template):
        jobs = [
            dataclasses.replace(job, seed=np.random.default_rng(3))
            for job in replicate_jobs(template, 2, seed=1)
        ]
        groups = batch_job_groups(jobs, 2)
        with pytest.raises(EngineError, match="picklable seeds"):
            batch_job_payloads(jobs, groups, transport="frame")

    def test_unknown_transport_rejected(self, template):
        jobs = replicate_jobs(template, 2, seed=1)
        with pytest.raises(EngineError, match="transport"):
            batch_job_payloads(jobs, batch_job_groups(jobs, 2), transport="carrier-pigeon")


class TestTransports:
    @pytest.mark.parametrize("transport", ["inline", "frame", "shm"])
    def test_round_trip_matches_serial_baseline(self, template, transport):
        jobs = replicate_jobs(template, 3, seed=17)
        baseline = run_ensemble(jobs, workers=1)
        payloads = batch_job_payloads(jobs, batch_job_groups(jobs, 3), transport=transport)
        assert len(payloads) == 1
        packed, cache_hit = simulate_batch_payload(payloads[0])
        trajectories = decode_batch_result(packed)
        assert isinstance(cache_hit, bool)
        assert len(trajectories) == 3
        for index, trajectory in enumerate(trajectories):
            expected = baseline.trajectory(index)
            assert np.array_equal(trajectory.times, expected.times)
            assert np.array_equal(trajectory.data, expected.data)
        # Whatever the transport allocated, decode released it.
        assert _shm_segments() == []

    def test_unknown_result_kind_rejected(self):
        with pytest.raises(EngineError, match="kind"):
            decode_batch_result({"kind": "telegram"})


class TestSharedMemoryLifetime:
    def test_decode_unlinks_the_segment(self, template):
        jobs = replicate_jobs(template, 2, seed=5)
        payloads = batch_job_payloads(jobs, batch_job_groups(jobs, 2), transport="shm")
        packed, _ = simulate_batch_payload(payloads[0])
        assert packed["kind"] == "shm"
        assert packed["shm_name"] in _shm_segments()
        decode_batch_result(packed)
        assert _shm_segments() == []

    def test_discard_sweeps_an_undecoded_segment(self, template):
        """The abandoned-batch path: the worker wrote its segment but no one
        ever decoded the result — the sweep must remove it by name."""
        jobs = replicate_jobs(template, 2, seed=5)
        payloads = batch_job_payloads(jobs, batch_job_groups(jobs, 2), transport="shm")
        packed, _ = simulate_batch_payload(payloads[0])
        assert _shm_segments() == [packed["shm_name"]]
        discard_batch_segment(payloads[0]["shm_name"])
        assert _shm_segments() == []

    def test_discard_is_idempotent_for_never_created_segments(self):
        discard_batch_segment("glt_never_created")
        discard_batch_segment("glt_never_created")

    def test_worker_death_mid_batch_leaves_no_segment_behind(self, template):
        """A worker that dies *after* writing its segment but before the
        parent decodes: the parent's by-name sweep is all the cleanup there
        is, and it must suffice — no ``/dev/shm`` entry may outlive it."""
        jobs = replicate_jobs(template, 2, seed=5)
        payloads = batch_job_payloads(jobs, batch_job_groups(jobs, 2), transport="shm")

        context = multiprocessing.get_context("spawn")
        worker = context.Process(target=_run_payload_then_die, args=(payloads[0],))
        worker.start()
        worker.join(timeout=120)
        assert worker.exitcode == 0
        # The worker hard-exited without its resource tracker unlinking the
        # segment (it unregistered after writing — the parent owns the unlink).
        assert _shm_segments() == [payloads[0]["shm_name"]]
        discard_batch_segment(payloads[0]["shm_name"])
        assert _shm_segments() == []

    def test_abandoned_pool_stream_sweeps_its_segments(self, template):
        """Breaking out of a batched pool stream must leave ``/dev/shm`` clean:
        undecoded in-flight batches are swept when the stream closes."""
        jobs = replicate_jobs(template, 8, seed=9)
        with ProcessPoolEnsembleExecutor(2) as executor:
            stream = iter_ensemble(jobs, executor=executor, batch_size=2, ordered=True)
            for index, _, _ in stream:
                break  # leaves ~3 batches undecoded or in flight
            stream.close()
            assert _shm_segments() == []

    def test_exhausted_pool_run_leaves_no_segments(self, template):
        jobs = replicate_jobs(template, 5, seed=3)
        with ProcessPoolEnsembleExecutor(2) as executor:
            run_ensemble(jobs, executor=executor, batch_size=2)
        assert _shm_segments() == []


class TestDistributedBatchFaults:
    def test_worker_death_mid_batch_frame_requeues_bit_identical(self, template):
        """Kill a fabric worker while lockstep batches (frame transport) are
        in flight: the coordinator requeues the dead worker's batches on the
        survivor, the study comes out bit-identical to serial, and no
        ``/dev/shm`` segment outlives the run."""
        jobs = replicate_jobs(template, 12, seed=33)
        baseline = run_ensemble(jobs, workers=1)
        with DistributedEnsembleExecutor.loopback(2) as executor:
            executor.open()
            victim = executor._processes[0]

            def _kill_soon():
                time.sleep(0.1)
                victim.kill()

            threading.Thread(target=_kill_soon, daemon=True).start()
            result = run_ensemble(jobs, executor=executor, batch_size=3)
            assert victim.poll() is not None, "the victim outlived the batch"
        for index, (_, expected) in enumerate(baseline):
            assert np.array_equal(result.trajectory(index).times, expected.times)
            assert np.array_equal(result.trajectory(index).data, expected.data)
        assert _shm_segments() == []


def _run_payload_then_die(payload):
    """Subprocess body: execute the batch, then exit without any cleanup —
    ``os._exit`` skips atexit hooks, finalizers and the resource tracker's
    orderly shutdown, approximating a crash right after the result was ready."""
    simulate_batch_payload(payload)
    os._exit(0)


class TestStatisticsInvariant:
    def test_pool_batches_account_every_job_once(self, template):
        jobs = replicate_jobs(template, 7, seed=21)
        with ProcessPoolEnsembleExecutor(2) as executor:
            result = run_ensemble(jobs, executor=executor, batch_size=3)
        assert result.stats.cache_hits + result.stats.cache_misses == len(jobs)

    def test_serial_batches_account_every_job_once(self, template):
        jobs = replicate_jobs(template, 5, seed=21)
        result = run_ensemble(jobs, executor=SerialExecutor(), batch_size=2)
        assert result.stats.cache_hits + result.stats.cache_misses == len(jobs)
