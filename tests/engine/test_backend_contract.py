"""Backend conformance suite: the executor contract, asserted across every transport.

One parametrized module proves that serial, process-pool, distributed-loopback
and the asyncio facade all honour the engine contract — so a future backend
gets the whole contract for free by adding one fixture param:

* **bit-identity** — the same job list (seeds fanned out before dispatch)
  produces byte-for-byte identical trajectories on every backend;
* **ordering** — ``ordered=True`` streams deliver in submission order,
  ``ordered=False`` covers every index exactly once;
* **statistics** — every run is accounted to exactly one cache hit or miss;
* **cancel-on-failure** — a raising ``map`` payload propagates its exception,
  cancels the not-yet-windowed remainder, and leaves the executor usable.

The run-path tests are additionally parametrized over ``batch_size`` ∈ {1, 3}
— 4 replicates at batch 3 makes the last lockstep batch a partial one — so
every backend proves the whole contract (bit-identity included) through the
batched dispatch/transport path too.

The distributed backend here is a *real* TCP fabric (listen + two spawned
``genlogic worker --connect`` subprocesses); only the machines are local.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.engine import (
    DistributedEnsembleExecutor,
    ProcessPoolEnsembleExecutor,
    SerialExecutor,
    WorkerSupervisor,
    arun_ensemble,
    iter_ensemble,
    replicate_jobs,
    run_ensemble,
)
from repro.engine.aio import aiter_ensemble
from repro.engine.jobs import SimulationJob
from repro.stochastic.events import InputSchedule

BACKENDS = [
    "serial",
    "process-pool",
    "distributed-loopback",
    "distributed-supervised",
    "async-facade",
]


class _Backend:
    """Uniform driver over one executor kind (sync APIs or the async facade)."""

    def __init__(self, name, executor=None):
        self.name = name
        self.executor = executor
        self.is_async = name == "async-facade"
        #: The async layer has no generic ``map`` surface.
        self.supports_map = not self.is_async

    def materialize(self, jobs, batch_size=1):
        if self.is_async:
            return asyncio.run(
                arun_ensemble(jobs, executor=self.executor, batch_size=batch_size)
            )
        return run_ensemble(jobs, executor=self.executor, batch_size=batch_size)

    def stream(self, jobs, ordered=True, batch_size=1):
        """``[(index, trajectory), ...]`` in delivery order."""
        if self.is_async:

            async def _collect():
                collected = []
                async for index, _, trajectory in aiter_ensemble(
                    jobs, executor=self.executor, ordered=ordered, batch_size=batch_size
                ):
                    collected.append((index, trajectory))
                return collected

            return asyncio.run(_collect())
        stream = iter_ensemble(
            jobs, executor=self.executor, ordered=ordered, batch_size=batch_size
        )
        return [(index, trajectory) for index, _, trajectory in stream]

    def map(self, fn, payloads):
        return self.executor.map(fn, payloads)


@pytest.fixture(scope="module", params=BACKENDS)
def backend(request):
    """One opened backend per transport; torn down after the module."""
    if request.param == "serial":
        yield _Backend("serial", SerialExecutor())
    elif request.param == "process-pool":
        with ProcessPoolEnsembleExecutor(2) as executor:
            yield _Backend("process-pool", executor)
    elif request.param == "distributed-loopback":
        with DistributedEnsembleExecutor.loopback(2) as executor:
            yield _Backend("distributed-loopback", executor)
    elif request.param == "distributed-supervised":
        # The hardened deployment shape: an authenticated listening fabric
        # whose workers are owned by the auto-restarting supervisor.  The
        # whole contract must hold on it unchanged.
        executor = DistributedEnsembleExecutor(
            listen="127.0.0.1:0",
            min_workers=2,
            connect_timeout=60.0,
            key="conformance-secret",
        )
        supervisor = WorkerSupervisor(
            2,
            connect=lambda: (
                "{}:{}".format(*executor.bound_address) if executor.bound_address else None
            ),
            key="conformance-secret",
        )
        supervisor.start()
        try:
            executor.open()
            yield _Backend("distributed-supervised", executor)
        finally:
            supervisor.stop()  # before the executor: a teardown must not race a restart
            executor.close()
    else:
        with ProcessPoolEnsembleExecutor(2) as executor:
            yield _Backend("async-facade", executor)


@pytest.fixture(scope="module", params=[1, 3], ids=["batch1", "batch3"])
def batch_size(request):
    """Dispatch granularity: 1 = the classic path, 3 = lockstep batches.

    The job list holds 4 replicates, so batch 3 exercises a batch count that
    does not divide the replicate count (one full batch + one partial).
    """
    return request.param


@pytest.fixture(scope="module")
def ssa_jobs(and_circuit):
    """A seeded SSA batch (stochastic, so any divergence shows at bit level)."""
    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs), [(0, 0), (1, 1)], 40.0, 40.0
    )
    template = SimulationJob(
        model=and_circuit.model, t_end=80.0, simulator="ssa", schedule=schedule
    )
    return replicate_jobs(template, 4, seed=11)


@pytest.fixture(scope="module")
def serial_baseline(ssa_jobs):
    """What every backend must reproduce exactly."""
    return run_ensemble(ssa_jobs, workers=1)


class TestBitIdentity:
    def test_materialized_matches_serial_bit_for_bit(
        self, backend, ssa_jobs, serial_baseline, batch_size
    ):
        result = backend.materialize(ssa_jobs, batch_size=batch_size)
        assert len(result) == len(serial_baseline)
        for index, (_, expected) in enumerate(serial_baseline):
            assert np.array_equal(result.trajectory(index).times, expected.times)
            assert np.array_equal(result.trajectory(index).data, expected.data)

    @pytest.mark.parametrize("ordered", [True, False])
    def test_streamed_matches_serial_bit_for_bit(
        self, backend, ssa_jobs, serial_baseline, ordered, batch_size
    ):
        for index, trajectory in backend.stream(
            ssa_jobs, ordered=ordered, batch_size=batch_size
        ):
            expected = serial_baseline.trajectory(index)
            assert np.array_equal(trajectory.times, expected.times)
            assert np.array_equal(trajectory.data, expected.data)


class TestOrdering:
    def test_ordered_stream_delivers_in_submission_order(self, backend, ssa_jobs, batch_size):
        indices = [
            index
            for index, _ in backend.stream(ssa_jobs, ordered=True, batch_size=batch_size)
        ]
        assert indices == list(range(len(ssa_jobs)))

    def test_completion_order_stream_covers_every_index_once(
        self, backend, ssa_jobs, batch_size
    ):
        indices = [
            index
            for index, _ in backend.stream(ssa_jobs, ordered=False, batch_size=batch_size)
        ]
        assert sorted(indices) == list(range(len(ssa_jobs)))


class TestStatistics:
    def test_every_run_is_accounted_to_the_cache_counters(self, backend, ssa_jobs, batch_size):
        result = backend.materialize(ssa_jobs, batch_size=batch_size)
        assert result.stats.n_jobs == len(ssa_jobs)
        assert result.stats.cache_hits + result.stats.cache_misses == len(ssa_jobs)
        assert result.stats.wall_seconds > 0


def _log_or_fail(payload):
    """Conformance map payload: append a marker line, or blow up."""
    action, path = payload
    if action == "fail":
        raise ValueError("payload exploded")
    time.sleep(0.05)
    with open(path, "a") as handle:
        handle.write("ran\n")
    return action


def _double(payload):
    return payload * 2


class TestMapContract:
    def test_map_preserves_payload_order(self, backend):
        if not backend.supports_map:
            pytest.skip("the async facade exposes no generic map")
        assert backend.map(_double, list(range(12))) == [n * 2 for n in range(12)]

    def test_failing_payload_propagates_and_cancels_the_tail(self, backend, tmp_path):
        """The cancel-on-failure contract: the raising payload's exception
        reaches the caller, payloads beyond the in-flight window never run,
        and the executor stays usable for the next batch."""
        if not backend.supports_map:
            pytest.skip("the async facade exposes no generic map")
        marker = tmp_path / "ran.txt"
        payloads = [("fail", str(marker))] + [("log", str(marker))] * 12
        with pytest.raises(ValueError, match="payload exploded"):
            backend.map(_log_or_fail, payloads)
        # Results are still in flight when the failure lands, so anything the
        # window had already dispatched may have run — but no more than that.
        window = 2 * backend.executor.capacity
        ran = marker.read_text().count("ran") if marker.exists() else 0
        assert ran <= window
        # The executor survived the failed batch.
        assert backend.map(_double, [1, 2, 3]) == [2, 4, 6]
