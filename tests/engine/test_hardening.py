"""Regression tests for the engine bugfix sweep.

Covers: windowed + cancel-on-failure ``map``, LRU (not FIFO) worker-model
eviction, per-iteration batch cache statistics, the ``transform`` stream's
yielded shape, the cache module's ``__all__``, and parallel analysis fan-out
in replicate studies.
"""

import time

import pytest

import repro.engine.cache as cache_module
from repro.engine import (
    CompiledModelCache,
    ProcessPoolEnsembleExecutor,
    SerialExecutor,
    iter_ensemble,
    replicate_jobs,
)
from repro.engine.cache import model_blob, worker_model_from_blob
from repro.engine.jobs import SimulationJob


def _log_or_fail(payload):
    """Worker-side map payload: append a line to a file, or blow up."""
    action, path = payload
    if action == "fail":
        raise RuntimeError("payload exploded")
    time.sleep(0.05)
    with open(path, "a") as handle:
        handle.write("ran\n")
    return action


def _double(payload):
    return payload * 2


@pytest.fixture()
def ode_job(and_circuit):
    from repro.stochastic.events import InputSchedule

    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs), [(0, 0), (1, 1)], 30.0, 40.0
    )
    return SimulationJob(model=and_circuit.model, t_end=60.0, simulator="ode", schedule=schedule)


class TestHardenedMap:
    def test_map_preserves_order_with_windowed_submission(self):
        """Many more payloads than the 2×workers window, order still exact."""
        with ProcessPoolEnsembleExecutor(2) as executor:
            results = executor.map(_double, list(range(20)))
        assert results == [payload * 2 for payload in range(20)]

    def test_map_progress_counts_every_payload(self):
        seen = []
        with ProcessPoolEnsembleExecutor(2) as executor:
            executor.map(_double, list(range(10)), progress=lambda d, t, i: seen.append((d, t)))
        assert [done for done, _ in sorted(seen)] == list(range(1, 11))
        assert all(total == 10 for _, total in seen)

    def test_failing_payload_cancels_outstanding_futures(self, tmp_path):
        """A raising payload must not leave the whole batch grinding on: only
        payloads inside the in-flight window may have reached a worker."""
        marker = tmp_path / "ran.txt"
        payloads = [("fail", str(marker))] + [("log", str(marker))] * 12
        executor = ProcessPoolEnsembleExecutor(1)
        try:
            with pytest.raises(RuntimeError, match="payload exploded"):
                executor.map(_log_or_fail, payloads)
        finally:
            executor.close()  # waits for whatever was genuinely in flight
        ran = marker.read_text().count("ran") if marker.exists() else 0
        # window = 2 * workers = 2: at most the windowed payloads ran; the
        # other 10+ were cancelled before ever reaching the pool's queue.
        assert ran <= 2

    def test_serial_map_unaffected(self):
        assert SerialExecutor().map(_double, [1, 2, 3]) == [2, 4, 6]


class TestWorkerModelLRU:
    def test_hot_fingerprint_survives_eviction(self, monkeypatch):
        """Eviction must be LRU: a fingerprint re-used on every batch outlives
        stale ones (the old FIFO behaviour evicted by insertion order)."""
        monkeypatch.setattr(cache_module, "_WORKER_MODELS_MAX", 2)
        monkeypatch.setattr(cache_module, "_WORKER_MODELS", {})
        blob_a, fp_a = model_blob({"model": "a"})
        blob_b, fp_b = model_blob({"model": "b"})
        blob_c, fp_c = model_blob({"model": "c"})
        worker_model_from_blob(fp_a, blob_a)
        worker_model_from_blob(fp_b, blob_b)
        # Touch a: it is now the most recently used entry.
        assert worker_model_from_blob(fp_a, blob_a) == {"model": "a"}
        worker_model_from_blob(fp_c, blob_c)
        assert fp_a in cache_module._WORKER_MODELS  # hot entry survived
        assert fp_b not in cache_module._WORKER_MODELS  # coldest was evicted
        assert fp_c in cache_module._WORKER_MODELS

    def test_unknown_fingerprint_deserializes_once(self, monkeypatch):
        monkeypatch.setattr(cache_module, "_WORKER_MODELS", {})
        blob, fingerprint = model_blob({"model": "x"})
        first = worker_model_from_blob(fingerprint, blob)
        second = worker_model_from_blob(fingerprint, blob)
        assert first is second  # same canonical instance, one pickle.loads


class TestPerIterationBatchStats:
    def test_interleaved_pool_streams_keep_their_own_stats(self, ode_job):
        """Opening a second stream on a shared executor must not clobber the
        first stream's counters (exactly the gather_studies pattern)."""
        with ProcessPoolEnsembleExecutor(1) as executor:
            first = iter_ensemble(replicate_jobs(ode_job, 3, seed=1), executor=executor)
            next(first)  # first stream is mid-flight...
            second = iter_ensemble(replicate_jobs(ode_job, 3, seed=2), executor=executor)
            list(second)  # ...while the second runs start to finish...
            list(first)  # ...and the first finishes afterwards.
        assert first.stats.cache_hits + first.stats.cache_misses == 3
        assert second.stats.cache_hits + second.stats.cache_misses == 3
        # One worker, one model: exactly one compile across both streams.
        total_misses = first.stats.cache_misses + second.stats.cache_misses
        assert total_misses == 1

    def test_interleaved_serial_streams_keep_their_own_stats(self, ode_job):
        """The serial path used to report a cache-counter delta, which went
        wrong the moment two streams interleaved on one cache."""
        cache = CompiledModelCache()
        first = iter_ensemble(
            replicate_jobs(ode_job, 3, seed=1), executor=SerialExecutor(), cache=cache
        )
        next(first)
        second = iter_ensemble(
            replicate_jobs(ode_job, 3, seed=2), executor=SerialExecutor(), cache=cache
        )
        list(second)
        list(first)
        assert first.stats.cache_misses == 1
        assert first.stats.cache_hits == 2
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hits == 3

    def test_legacy_snapshot_reflects_last_finished_batch(self, ode_job):
        with ProcessPoolEnsembleExecutor(1) as executor:
            list(iter_ensemble(replicate_jobs(ode_job, 2, seed=1), executor=executor))
            list(iter_ensemble(replicate_jobs(ode_job, 3, seed=2), executor=executor))
            assert executor.last_cache_hits == 3
            assert executor.last_cache_misses == 0


class TestTransformShape:
    def test_transform_yields_bare_mapped_values(self, ode_job):
        """A transform stream's items are exactly fn's return value — not the
        (index, job, trajectory) triples its class once promised."""
        stream = iter_ensemble(replicate_jobs(ode_job, 3, seed=5), workers=1)
        derived = stream.transform(lambda index, job, trajectory: index * 10)
        first = next(derived)
        assert first == 0
        assert not isinstance(first, tuple)
        assert list(derived) == [10, 20]

    def test_transform_can_yield_tuples_of_its_own(self, ode_job):
        stream = iter_ensemble(replicate_jobs(ode_job, 2, seed=5), workers=1)
        derived = stream.transform(
            lambda index, job, trajectory: (index, float(trajectory.times[-1]))
        )
        items = list(derived)
        assert [index for index, _ in items] == [0, 1]


class TestCacheModuleExports:
    def test_all_covers_the_worker_side_entry_points(self):
        assert "model_blob" in cache_module.__all__
        assert "worker_model_from_blob" in cache_module.__all__
        for name in cache_module.__all__:
            assert hasattr(cache_module, name)


class TestAnalysisFanOut:
    def test_analysis_jobs_matches_streamed_path(self, and_circuit):
        """run_replicate_study(analysis_jobs=N) routes the analysis through the
        engine's generic map path; recovered results must be identical."""
        from repro.analysis import run_replicate_study

        streamed = run_replicate_study(and_circuit, n_replicates=3, hold_time=80.0, rng=13)
        fanned = run_replicate_study(
            and_circuit, n_replicates=3, hold_time=80.0, rng=13, analysis_jobs=2
        )
        assert fanned.fitness_values == streamed.fitness_values
        assert fanned.recovery_rate == streamed.recovery_rate
        assert [r.truth_table.outputs for r in fanned.results] == [
            r.truth_table.outputs for r in streamed.results
        ]

    def test_analysis_fan_out_reuses_shared_executor(self, and_circuit):
        from repro.analysis import run_replicate_study

        with ProcessPoolEnsembleExecutor(2) as executor:
            study = run_replicate_study(
                and_circuit,
                n_replicates=3,
                hold_time=80.0,
                rng=13,
                executor=executor,
                analysis_jobs=2,
            )
            assert executor.is_open  # lifecycle stays with the caller
        assert study.n_replicates == 3
