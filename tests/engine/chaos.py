"""Fault-injecting TCP proxy for exercising the distributed fabric.

:class:`ChaosProxy` sits between a dialing coordinator and a listening
``genlogic worker``, forwarding bytes both ways while injecting one
configured :class:`Fault` per direction: cut the stream mid-frame, corrupt
a frame's length prefix, delay a frame, or blackhole (silently swallow)
traffic from a trigger point on.  The pumps understand the protocol-2
stream shape — a fixed-size raw handshake prefix followed by 4-byte
length-prefixed frames — so a fault can target an exact handshake offset
(``at_bytes=``) or an exact frame index (``frame=``, ``offset=``) instead
of a brittle hand-counted byte position.

Whole-proxy switches model coarser failures: :meth:`ChaosProxy.blackhole`
freezes every live connection in both directions without closing anything
(the "hung worker" a heartbeat must catch), :meth:`ChaosProxy.cut_all`
hard-closes every proxied connection at once.

Test infrastructure only — imported by test_chaos.py, never by product
code.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.auth import _DIGEST_BYTES, _PREAMBLE_BYTES

__all__ = [
    "Fault",
    "ChaosProxy",
    "PLAINTEXT_HANDSHAKE_BYTES",
    "KEYED_HANDSHAKE_BYTES",
]

#: Raw (never length-prefixed) bytes each direction sends before its first
#: pickled frame: the preamble alone in trusted-network mode, preamble +
#: HMAC digest + verdict byte when a fabric key is configured.
PLAINTEXT_HANDSHAKE_BYTES = _PREAMBLE_BYTES
KEYED_HANDSHAKE_BYTES = _PREAMBLE_BYTES + _DIGEST_BYTES + 1

_ACTIONS = ("cut", "corrupt", "delay", "blackhole")


@dataclass(frozen=True)
class Fault:
    """One injected fault, applied to a single direction of each connection.

    ``action``:

    * ``"cut"`` — forward up to the trigger, then hard-close both sockets
      (truncates whatever frame straddles the trigger);
    * ``"corrupt"`` — overwrite the 4 bytes at the trigger with ``0xFF``
      (point it at a frame's length prefix to forge a 4 GiB claim);
    * ``"delay"`` — pause the direction ``delay`` seconds at the trigger,
      then resume forwarding untouched;
    * ``"blackhole"`` — forward up to the trigger, then silently swallow
      everything after it while both sockets stay open.

    The trigger is either an absolute stream offset (``at_bytes=``, useful
    for mid-handshake faults) or frame-relative: ``frame=k, offset=o``
    fires ``o`` bytes into the k-th length-prefixed frame after the raw
    handshake (``offset=0`` is the frame's own length prefix).
    """

    action: str
    at_bytes: Optional[int] = None
    frame: Optional[int] = None
    offset: int = 0
    delay: float = 0.0

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r} (one of {_ACTIONS})")
        if (self.at_bytes is None) == (self.frame is None):
            raise ValueError("a Fault needs exactly one trigger: at_bytes= or frame=")


class ChaosProxy:
    """A TCP proxy in front of one upstream address, with per-direction faults.

    ``client_to_upstream`` faults what the dialing coordinator sends,
    ``upstream_to_client`` faults what the worker answers.  Faults apply to
    every proxied connection independently (each connection re-arms them).
    ``handshake_bytes`` tells the frame parser how much leading raw
    handshake to skip per direction before counting frames — pass
    :data:`KEYED_HANDSHAKE_BYTES` when the fabric runs with a key.
    """

    def __init__(
        self,
        upstream: str,
        *,
        client_to_upstream: Optional[Fault] = None,
        upstream_to_client: Optional[Fault] = None,
        handshake_bytes: int = PLAINTEXT_HANDSHAKE_BYTES,
    ):
        host, separator, port = upstream.rpartition(":")
        if not separator:
            raise ValueError(f"upstream address {upstream!r} is not host:port")
        self._upstream = (host, int(port))
        self._c2u = client_to_upstream
        self._u2c = upstream_to_client
        self.handshake_bytes = int(handshake_bytes)
        self._stop = threading.Event()
        self._blackholed = threading.Event()
        self._lock = threading.Lock()
        self._pairs: List[Tuple[socket.socket, socket.socket]] = []
        self.connections = 0
        self.faults_fired = 0
        self._server = socket.create_server(("127.0.0.1", 0))
        self._server.settimeout(0.2)
        self._port = self._server.getsockname()[1]
        self._threads: List[threading.Thread] = []
        self._start_thread(self._accept_loop, "chaos-accept")

    # -- wiring ----------------------------------------------------------------
    @property
    def endpoint(self) -> str:
        """The ``host:port`` a coordinator should dial instead of the worker."""
        return f"127.0.0.1:{self._port}"

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def blackhole(self) -> None:
        """From now on, swallow every byte in both directions of every
        connection — sockets stay open, nothing moves (a hung worker)."""
        self._blackholed.set()

    def cut_all(self) -> None:
        """Hard-close every live proxied connection, both ends at once."""
        with self._lock:
            pairs = list(self._pairs)
        for pair in pairs:
            self._close_pair(pair)

    def close(self) -> None:
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass
        self.cut_all()
        for thread in self._threads:
            thread.join(timeout=2.0)

    # -- internals -------------------------------------------------------------
    def _start_thread(self, target, name: str, *args) -> None:
        thread = threading.Thread(target=target, args=args, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                client, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(self._upstream, timeout=5.0)
            except OSError:
                _close_quietly(client)
                continue
            for sock in (client, upstream):
                sock.settimeout(0.2)
                try:
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:
                    pass
            pair = (client, upstream)
            with self._lock:
                self._pairs.append(pair)
                self.connections += 1
            self._start_thread(self._pump, "chaos-c2u", client, upstream, self._c2u, pair)
            self._start_thread(self._pump, "chaos-u2c", upstream, client, self._u2c, pair)

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        fault: Optional[Fault],
        pair: Tuple[socket.socket, socket.socket],
    ) -> None:
        # Every byte seen is kept so frame boundaries can be resolved lazily;
        # fine for tests, whose streams are small.
        stream = bytearray()
        forwarded = 0
        trigger = fault.at_bytes if fault is not None and fault.at_bytes is not None else None
        fired = False
        while not self._stop.is_set():
            try:
                chunk = src.recv(65536)
            except socket.timeout:
                continue
            except OSError:
                break
            if not chunk:
                # Clean EOF from src: half-close dst so the peer sees it too,
                # while the opposite direction keeps flowing.
                try:
                    dst.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
                return
            stream += chunk
            swallowing = self._blackholed.is_set() or (
                fault is not None and fired and fault.action == "blackhole"
            )
            if swallowing:
                forwarded = len(stream)
                continue
            if fault is not None and not fired and trigger is None:
                trigger = self._frame_trigger(stream, fault)
            try:
                if fault is not None and not fired and trigger is not None:
                    # "corrupt" needs its whole 4-byte window buffered before
                    # firing; the others fire as soon as the trigger is reached.
                    armed_at = trigger + 4 if fault.action == "corrupt" else trigger
                    if len(stream) >= armed_at:
                        if trigger > forwarded:
                            dst.sendall(bytes(stream[forwarded:trigger]))
                            forwarded = trigger
                        fired = True
                        with self._lock:
                            self.faults_fired += 1
                        if fault.action == "cut":
                            self._close_pair(pair)
                            return
                        if fault.action == "corrupt":
                            stream[trigger:trigger + 4] = b"\xff\xff\xff\xff"
                        elif fault.action == "delay":
                            time.sleep(fault.delay)
                        elif fault.action == "blackhole":
                            forwarded = len(stream)
                            continue
                limit = len(stream)
                if fault is not None and not fired and trigger is not None:
                    # Armed but not fired (e.g. "corrupt" still buffering its
                    # 4-byte window): never forward past the trigger untouched.
                    limit = min(limit, trigger)
                if forwarded < limit:
                    dst.sendall(bytes(stream[forwarded:limit]))
                    forwarded = limit
            except OSError:
                break

    def _frame_trigger(self, stream: bytearray, fault: Fault) -> Optional[int]:
        """Resolve a frame-relative trigger to an absolute stream offset.

        Needs the length prefixes of every earlier frame to have arrived;
        returns ``None`` until they have.  Those prefixes all sit *before*
        the trigger, so nothing past it is ever forwarded unfaulted while
        the trigger is still unresolved.
        """
        position = self.handshake_bytes
        for _ in range(fault.frame):
            if len(stream) < position + 4:
                return None
            (length,) = struct.unpack(">I", bytes(stream[position:position + 4]))
            position += 4 + length
        return position + fault.offset

    def _close_pair(self, pair: Tuple[socket.socket, socket.socket]) -> None:
        for sock in pair:
            _close_quietly(sock)


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
