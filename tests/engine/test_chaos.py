"""Fault-injection suite for the distributed fabric (chaos.py harness).

Every test here puts a :class:`chaos.ChaosProxy` between a dialing
coordinator and a real in-thread ``genlogic worker`` and injects one wire
fault, asserting the coordinator degrades *gracefully*: rejected
connections raise :class:`ProtocolError` without unpickling a byte the
peer sent, truncated or blackholed workers are retired and their in-flight
tasks requeued on survivors (bit-identical results, no double delivery),
delayed frames are just slow, and a fabric with no workers left fails
loudly with :class:`WorkerConnectionError` only after ``regrow_timeout`` —
it never hangs.
"""

import pickle
import threading
import time

import numpy as np
import pytest

from chaos import ChaosProxy, Fault
from repro.engine import (
    DistributedEnsembleExecutor,
    WorkerConnectionError,
    replicate_jobs,
    run_ensemble,
)
from repro.engine.auth import ProtocolError
from repro.engine.jobs import SimulationJob
from repro.engine.worker import run_worker
from repro.stochastic.events import InputSchedule


@pytest.fixture(autouse=True)
def _isolate_parent_worker_caches():
    """Restore the parent-process worker-side caches after every test.

    The in-thread workers warm this process's module-level caches; without
    isolation a later test's "fresh" fork-started pool would start warm.
    """
    import repro.engine.cache as cache_module

    names = ("_WORKER_CACHE", "_WORKER_MODELS", "_WORKER_KERNELS", "_WORKER_BLOBS_SEEN")
    saved = {name: dict(getattr(cache_module, name)) for name in names}
    yield
    for name, value in saved.items():
        current = getattr(cache_module, name)
        current.clear()
        current.update(value)


@pytest.fixture()
def no_unpickling(monkeypatch):
    """Fail the test if anything is unpickled; returns the recorded calls."""
    calls = []

    def _forbidden(*args, **kwargs):
        calls.append(args)
        raise AssertionError("pickle.loads reached on a rejected-connection path")

    monkeypatch.setattr(pickle, "loads", _forbidden)
    monkeypatch.setattr(pickle, "load", _forbidden)
    return calls


@pytest.fixture()
def ssa_job(and_circuit):
    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs), [(0, 0), (1, 1)], 40.0, 40.0
    )
    return SimulationJob(model=and_circuit.model, t_end=80.0, simulator="ssa", schedule=schedule)


def _double(n):
    return 2 * n


def _slow_double(n):
    time.sleep(0.05)
    return 2 * n


class _WorkerThread:
    """A real ``genlogic worker --listen`` running on a thread in this process."""

    def __init__(self, *, max_sessions=1, key=None):
        self._ready = threading.Event()
        self._bound = {}

        def _on_ready(address):
            self._bound["address"] = address
            self._ready.set()

        self.thread = threading.Thread(
            target=run_worker,
            kwargs={
                "listen": "127.0.0.1:0",
                "max_sessions": max_sessions,
                "on_ready": _on_ready,
                "key": key,
            },
            daemon=True,
        )
        self.thread.start()
        assert self._ready.wait(timeout=10.0), "worker never bound its listen socket"

    @property
    def address(self):
        return "{}:{}".format(*self._bound["address"])

    def join(self, timeout=10.0):
        self.thread.join(timeout=timeout)


class TestProxyPassthrough:
    def test_faultless_proxy_is_invisible_to_the_fabric(self):
        worker = _WorkerThread()
        with ChaosProxy(worker.address) as proxy:
            with DistributedEnsembleExecutor(connect=[proxy.endpoint]) as executor:
                assert executor.map(_double, [0, 1, 2, 3]) == [0, 2, 4, 6]
                health = executor.health()
                assert health["links_dropped"] == 0
                assert health["tasks_requeued"] == 0
            assert proxy.connections == 1
            assert proxy.faults_fired == 0
        worker.join()


class TestHandshakeFaults:
    def test_corrupt_hello_length_prefix_rejected_before_unpickling(self, no_unpickling):
        """A forged 4 GiB length prefix on the worker's hello frame must be
        refused before the coordinator allocates or unpickles anything."""
        worker = _WorkerThread()
        # Frame 0 after the handshake is the hello; offset 0 is its prefix.
        fault = Fault(action="corrupt", frame=0, offset=0)
        with ChaosProxy(worker.address, upstream_to_client=fault) as proxy:
            executor = DistributedEnsembleExecutor(connect=[proxy.endpoint], connect_timeout=10.0)
            try:
                with pytest.raises(ProtocolError, match="refusing to\n?\\s*allocate"):
                    executor.open()
            finally:
                executor.close()
            assert proxy.faults_fired == 1
        assert no_unpickling == []
        worker.join()

    @pytest.mark.parametrize("offset", [2, 20, 36])
    def test_connection_dropped_mid_preamble_rejected(self, offset, no_unpickling):
        """Losing the peer at any byte of the raw preamble is a clean
        ProtocolError, not a hang and not an unpickling attempt."""
        worker = _WorkerThread()
        fault = Fault(action="cut", at_bytes=offset)
        with ChaosProxy(worker.address, upstream_to_client=fault) as proxy:
            executor = DistributedEnsembleExecutor(connect=[proxy.endpoint], connect_timeout=10.0)
            try:
                with pytest.raises(ProtocolError, match="mid-handshake"):
                    executor.open()
            finally:
                executor.close()
        assert no_unpickling == []
        worker.join()

    def test_rejected_probe_does_not_burn_a_session_slot(self):
        """A hostile probe turned away at the handshake must not consume the
        worker's --max-sessions budget: the rightful coordinator still gets
        served afterwards."""
        worker = _WorkerThread(max_sessions=1, key=b"chaos-secret")
        with pytest.raises(ProtocolError):
            with DistributedEnsembleExecutor(
                connect=[worker.address], connect_timeout=10.0, key="wrong-secret"
            ) as executor:
                executor.open()
        with DistributedEnsembleExecutor(
            connect=[worker.address], key="chaos-secret"
        ) as executor:
            assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
        worker.join()

    @pytest.mark.parametrize("offset", [45, 69])
    def test_keyed_handshake_dropped_at_digest_and_verdict_stages(self, offset, no_unpickling):
        """On an authenticated fabric, cutting mid-digest (offset 45) or
        before the verdict byte (offset 69) rejects cleanly too."""
        worker = _WorkerThread(key=b"chaos-secret")
        fault = Fault(action="cut", at_bytes=offset)
        with ChaosProxy(worker.address, upstream_to_client=fault) as proxy:
            executor = DistributedEnsembleExecutor(
                connect=[proxy.endpoint], connect_timeout=10.0, key="chaos-secret"
            )
            try:
                with pytest.raises(ProtocolError, match="mid-handshake"):
                    executor.open()
            finally:
                executor.close()
        assert no_unpickling == []
        worker.join()


class TestDataPathFaults:
    def test_truncated_result_frame_requeues_to_survivor(self):
        """A worker whose result frame is cut mid-body is retired; its task
        reruns on the survivor and every result is delivered exactly once."""
        survivor = _WorkerThread()
        victim = _WorkerThread()
        # w2c frame 0 is the hello; frame 1 is the victim's first result,
        # cut 6 bytes in (4-byte prefix + 2 body bytes).
        fault = Fault(action="cut", frame=1, offset=6)
        with ChaosProxy(victim.address, upstream_to_client=fault) as proxy:
            with DistributedEnsembleExecutor(
                connect=[survivor.address, proxy.endpoint],
                # Pings would shift the w2c frame numbering; keep them out.
                heartbeat_interval=30.0,
                heartbeat_timeout=120.0,
            ) as executor:
                assert executor.map(_slow_double, list(range(8))) == [2 * n for n in range(8)]
                health = executor.health()
                assert health["links_dropped"] == 1
                assert health["tasks_requeued"] >= 1
                # Exactly one result frame per task reached the coordinator.
                assert health["tasks_completed"] == 8
            assert proxy.faults_fired == 1
        survivor.join()
        victim.join()

    def test_delayed_result_frame_is_slow_but_not_dead(self):
        """A delay below the heartbeat timeout must not retire the worker."""
        worker = _WorkerThread()
        fault = Fault(action="delay", frame=1, offset=0, delay=0.8)
        with ChaosProxy(worker.address, upstream_to_client=fault) as proxy:
            with DistributedEnsembleExecutor(
                connect=[proxy.endpoint],
                heartbeat_interval=1.0,
                heartbeat_timeout=5.0,
            ) as executor:
                started = time.monotonic()
                assert executor.map(_double, [21]) == [42]
                assert time.monotonic() - started >= 0.75
                assert executor.health()["links_dropped"] == 0
        worker.join()

    def test_blackholed_worker_detected_by_heartbeat_bit_identical_results(self, ssa_job):
        """The acceptance criterion: a hung (blackholed) worker is detected
        within the heartbeat timeout, its tasks complete on the survivor,
        and the study is bit-identical to a serial run."""
        serial = run_ensemble(replicate_jobs(ssa_job, 6, seed=21))
        survivor = _WorkerThread()
        victim = _WorkerThread()
        with ChaosProxy(victim.address) as proxy:
            with DistributedEnsembleExecutor(
                connect=[survivor.address, proxy.endpoint],
                heartbeat_interval=0.2,
                heartbeat_timeout=0.8,
            ) as executor:
                executor.open()
                proxy.blackhole()  # the victim hangs: alive socket, nothing moves
                started = time.monotonic()
                distributed = run_ensemble(replicate_jobs(ssa_job, 6, seed=21), executor=executor)
                elapsed = time.monotonic() - started
                health = executor.health()
            # Detection is heartbeat-driven (sub-second here), not a TCP
            # timeout minutes away; the whole study finishes promptly.
            assert elapsed < 20.0
            assert health["links_dropped"] == 1
            assert health["tasks_requeued"] >= 1
            assert len(health["workers"]) == 1
        for index in range(6):
            assert np.array_equal(
                distributed.trajectory(index).data, serial.trajectory(index).data
            )
        survivor.join()


class TestWorkerlessFabric:
    def test_fails_after_regrow_timeout_never_hangs(self):
        """With every worker gone and none coming back, a queued batch fails
        with WorkerConnectionError once regrow_timeout expires — the
        coordinator re-dials with backoff in between, and never hangs."""
        worker = _WorkerThread(max_sessions=1)
        with ChaosProxy(worker.address) as proxy:
            with DistributedEnsembleExecutor(
                connect=[proxy.endpoint],
                connect_timeout=10.0,
                regrow_timeout=1.0,
            ) as executor:
                executor.open()
                proxy.cut_all()  # the one worker is gone for good (max_sessions=1)
                worker.join()
                started = time.monotonic()
                with pytest.raises(WorkerConnectionError, match="no workers joined"):
                    executor.map(_double, [1, 2, 3])
                elapsed = time.monotonic() - started
            assert 0.9 <= elapsed < 8.0
