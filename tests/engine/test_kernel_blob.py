"""Compiled-propensity serialization through the worker blob cache."""

import pickle

import numpy as np
import pytest

from repro.engine import ProcessPoolEnsembleExecutor, SerialExecutor, SimulationJob, run_ensemble
from repro.engine.cache import (
    KernelArtifact,
    kernel_artifact_for_blob,
    model_blob,
    model_fingerprint,
    register_worker_kernel,
    worker_compiled,
    worker_model_from_blob,
)
from repro.stochastic import kernel_source_for
from repro.stochastic.codegen import KERNEL_FORMAT


def _fresh_model(sid: str):
    """A unique-content model per test so worker-global caches never collide."""
    from repro.sbml import Model

    model = Model(sid)
    model.add_species("A", boundary_condition=True, initial_amount=8.0)
    model.add_species("Y")
    model.add_parameter("kmax", 4.0)
    model.add_parameter("K", 10.0)
    model.add_parameter("n", 2.5)
    model.add_parameter("kd", 0.1)
    model.add_reaction(
        "production_Y",
        products=[("Y", 1.0)],
        modifiers=["A"],
        kinetic_law="kmax * hill_rep(A, K, n)",
    )
    model.add_reaction("degradation_Y", reactants=[("Y", 1.0)], kinetic_law="kd * Y")
    return model


class TestBlobEnvelope:
    def test_fingerprint_is_the_model_content_hash(self):
        model = _fresh_model("blob_fp")
        blob_plain, fp_plain = model_blob(model)
        blob_kernels, fp_kernels = model_blob(model, {(): "source"})
        # The fingerprint covers the model alone: attaching kernels must not
        # shift worker-side cache keys.
        assert fp_plain == fp_kernels == model_fingerprint(model)
        assert blob_plain != blob_kernels

    def test_worker_round_trips_the_model(self):
        model = _fresh_model("blob_round_trip")
        blob, fingerprint = model_blob(model, {(): kernel_source_for(model)})
        restored = worker_model_from_blob(fingerprint, blob)
        assert restored.sid == model.sid
        assert restored.reaction_ids() == model.reaction_ids()
        # Same fingerprint again: the memoized instance comes back.
        assert worker_model_from_blob(fingerprint, blob) is restored

    def test_legacy_raw_pickle_blob_still_accepted(self):
        model = _fresh_model("blob_legacy")
        raw = pickle.dumps(model)
        restored = worker_model_from_blob(model_fingerprint(model), raw)
        assert restored.sid == model.sid


class TestWorkerKernelExec:
    def test_worker_compiled_execs_the_shipped_source(self):
        model = _fresh_model("blob_exec")
        source = kernel_source_for(model)
        blob, fingerprint = model_blob(model, {(): source})
        restored = worker_model_from_blob(fingerprint, blob)
        compiled, hit = worker_compiled(restored, fingerprint, ())
        assert not hit
        assert compiled.kernel is not None
        assert compiled.kernel.source == source
        _, hit_again = worker_compiled(restored, fingerprint, ())
        assert hit_again

    def test_override_kernels_are_keyed_separately(self):
        model = _fresh_model("blob_overrides")
        overrides = (("kmax", 8.0),)
        blob, fingerprint = model_blob(
            model,
            {
                (): kernel_source_for(model),
                overrides: kernel_source_for(model, dict(overrides)),
            },
        )
        restored = worker_model_from_blob(fingerprint, blob)
        plain, _ = worker_compiled(restored, fingerprint, ())
        overridden, _ = worker_compiled(restored, fingerprint, overrides)
        assert plain.constants["kmax"] == 4.0
        assert overridden.constants["kmax"] == 8.0
        state = plain.state_from_dict({"A": 0.0})
        assert overridden.propensities(state)[0] == 2.0 * plain.propensities(state)[0]

    def test_stale_kernel_falls_back_to_ast_compile(self):
        model = _fresh_model("blob_stale")
        bogus = kernel_source_for(model).replace(
            f"KERNEL_FORMAT = {KERNEL_FORMAT}",
            "KERNEL_FORMAT = 9999",
        )
        blob, fingerprint = model_blob(model, {(): bogus})
        restored = worker_model_from_blob(fingerprint, blob)
        compiled, _ = worker_compiled(restored, fingerprint, ())
        # The run still works; the kernel just got rebuilt from the model.
        state = compiled.state_from_dict({"A": 8.0})
        assert np.all(np.isfinite(compiled.propensities(state)))
        assert compiled.kernel is None or compiled.kernel.source != bogus

    def test_payload_attached_kernel_registration(self):
        # The executor attaches each payload's own kernel artifact; the
        # worker registers it before compiling (the sweep-friendly carrier).
        model = _fresh_model("blob_register")
        fingerprint = model_fingerprint(model)
        artifact = kernel_artifact_for_blob(model, fingerprint, ())
        register_worker_kernel(fingerprint, (), artifact)
        compiled, _ = worker_compiled(model, fingerprint, ())
        assert compiled.kernel is not None
        assert compiled.kernel.source == artifact.source
        register_worker_kernel(fingerprint, (), None)  # no-op by contract

    def test_parent_side_artifact_memo_is_stable(self):
        model = _fresh_model("blob_memo")
        fingerprint = model_fingerprint(model)
        first = kernel_artifact_for_blob(model, fingerprint, ())
        second = kernel_artifact_for_blob(model, fingerprint, ())
        assert first is second  # memo hit returns the cached artifact
        assert first.source == kernel_source_for(model)

    def test_worker_execs_shipped_bytecode(self):
        model = _fresh_model("blob_bytecode")
        fingerprint = model_fingerprint(model)
        artifact = kernel_artifact_for_blob(model, fingerprint, ())
        assert isinstance(artifact, KernelArtifact)
        blob, _ = model_blob(model, {(): artifact})
        restored = worker_model_from_blob(fingerprint, blob)
        compiled, _ = worker_compiled(restored, fingerprint, ())
        assert compiled.kernel is not None
        assert compiled.kernel.source == artifact.source

    def test_foreign_bytecode_magic_falls_back_to_source(self):
        model = _fresh_model("blob_magic")
        fingerprint = model_fingerprint(model)
        source = kernel_source_for(model)
        alien = KernelArtifact(source=source, magic=b"\x00\x00\x00\x00", bytecode=b"junk")
        blob, _ = model_blob(model, {(): alien})
        restored = worker_model_from_blob(fingerprint, blob)
        compiled, _ = worker_compiled(restored, fingerprint, ())
        # The bytecode is ignored (wrong interpreter magic) but the source
        # still loads, so the kernel is there either way.
        assert compiled.kernel is not None
        assert compiled.kernel.source == source


class TestPoolParityWithKernels:
    @pytest.mark.parametrize("overrides", [None, {"kd": 0.2}])
    def test_pool_matches_serial_bit_for_bit(self, overrides):
        from repro.stochastic import fan_out_seeds

        model = _fresh_model("blob_pool")
        seeds = fan_out_seeds(20170658, 4)
        jobs = [
            SimulationJob(
                model=model,
                t_end=40.0,
                simulator="ssa",
                parameter_overrides=overrides,
                seed=seed,
                tag=i,
            )
            for i, seed in enumerate(seeds)
        ]
        serial = run_ensemble(jobs, executor=SerialExecutor())
        with ProcessPoolEnsembleExecutor(2) as pool:
            pooled = run_ensemble(jobs, executor=pool)
        for left, right in zip(serial.trajectories, pooled.trajectories):
            assert np.array_equal(left.data, right.data)
