"""Regression tests: abandoned streams must close engine-created executors.

When a caller abandons ``iter_ensemble`` / ``aiter_ensemble`` mid-iteration,
the ephemeral executor the engine built from ``workers=N`` must be closed by
the stream's ``close()`` / the generator's ``aclose()`` — deterministically,
not whenever garbage collection happens to run.  Exhaustion already
guaranteed cleanup; these tests pin the abandonment paths.
"""

import asyncio

import pytest

from repro.engine import iter_ensemble, replicate_jobs
from repro.engine.aio import aiter_ensemble
from repro.engine.jobs import SimulationJob
from repro.stochastic.events import InputSchedule


@pytest.fixture()
def ode_job(and_circuit):
    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs), [(0, 0), (1, 1)], 30.0, 40.0
    )
    return SimulationJob(model=and_circuit.model, t_end=60.0, simulator="ode", schedule=schedule)


@pytest.fixture()
def tracked_executors(monkeypatch):
    """Every executor the engine creates from workers=N, for leak assertions."""
    import repro.engine.aio as aio
    import repro.engine.api as api
    from repro.engine.executors import get_executor as original

    created = []

    def tracking(workers=1):
        executor = original(workers)
        created.append(executor)
        return executor

    monkeypatch.setattr(api, "get_executor", tracking)
    monkeypatch.setattr(aio, "get_executor", tracking)
    return created


class TestSyncStreamAbandonment:
    def test_close_mid_iteration_closes_ephemeral_pool(self, ode_job, tracked_executors):
        stream = iter_ensemble(replicate_jobs(ode_job, 6, seed=1), workers=2)
        next(stream)  # mid-flight: results in the window, futures pending
        stream.close()
        assert len(tracked_executors) == 1
        assert not tracked_executors[0].is_open
        assert stream.stats is not None  # abandonment still finalizes stats

    def test_with_block_break_closes_ephemeral_pool(self, ode_job, tracked_executors):
        with iter_ensemble(replicate_jobs(ode_job, 6, seed=1), workers=2) as stream:
            for _item in stream:
                break
        assert not tracked_executors[0].is_open

    def test_close_before_first_result_closes_ephemeral_pool(self, ode_job, tracked_executors):
        stream = iter_ensemble(replicate_jobs(ode_job, 4, seed=1), workers=2)
        stream.close()
        assert not tracked_executors[0].is_open

    def test_transform_close_closes_source_executor(self, ode_job, tracked_executors):
        stream = iter_ensemble(replicate_jobs(ode_job, 4, seed=1), workers=2)
        derived = stream.transform(lambda index, job, trajectory: index)
        next(derived)
        derived.close()
        assert not tracked_executors[0].is_open

    def test_caller_provided_executor_survives_abandonment(self, ode_job):
        from repro.engine import ProcessPoolEnsembleExecutor

        with ProcessPoolEnsembleExecutor(2) as executor:
            stream = iter_ensemble(replicate_jobs(ode_job, 6, seed=1), executor=executor)
            next(stream)
            stream.close()
            assert executor.is_open  # lifecycle stays with the caller


class TestAsyncStreamAbandonment:
    def test_aclose_mid_iteration_closes_ephemeral_pool(self, ode_job, tracked_executors):
        async def _go():
            stream = aiter_ensemble(replicate_jobs(ode_job, 6, seed=1), workers=2)
            await anext(stream)
            await stream.aclose()

        asyncio.run(_go())
        assert len(tracked_executors) == 1
        assert not tracked_executors[0].is_open

    def test_never_started_generator_creates_nothing(self, ode_job, tracked_executors):
        async def _go():
            stream = aiter_ensemble(replicate_jobs(ode_job, 4, seed=1), workers=2)
            await stream.aclose()

        asyncio.run(_go())
        # The executor is built lazily on the first pull, so an unstarted
        # generator has nothing to leak.
        assert tracked_executors == []

    def test_aclosing_break_closes_ephemeral_pool(self, ode_job, tracked_executors):
        from contextlib import aclosing

        async def _go():
            async with aclosing(
                aiter_ensemble(replicate_jobs(ode_job, 6, seed=1), workers=2)
            ) as stream:
                async for _item in stream:
                    break

        asyncio.run(_go())
        assert not tracked_executors[0].is_open
