"""Tests for the engine's streamed delivery and persistent executor lifecycle."""

import numpy as np
import pytest

from repro.engine import (
    ProcessPoolEnsembleExecutor,
    SerialExecutor,
    SimulationJob,
    iter_ensemble,
    replicate_jobs,
    run_ensemble,
)
from repro.errors import EngineError
from repro.stochastic.events import InputSchedule


@pytest.fixture()
def ode_job(and_circuit):
    """A short deterministic ODE job on the AND gate (fast, exactly comparable)."""
    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs), [(0, 0), (1, 1)], 30.0, 40.0
    )
    return SimulationJob(model=and_circuit.model, t_end=60.0, simulator="ode", schedule=schedule)


@pytest.fixture()
def ssa_job(and_circuit):
    """A short seeded SSA job on the AND gate (stochastic, bit-level sensitive)."""
    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs), [(0, 0), (1, 1)], 40.0, 40.0
    )
    return SimulationJob(model=and_circuit.model, t_end=80.0, simulator="ssa", schedule=schedule)


class TestStreamedDelivery:
    def test_serial_stream_arrives_in_submission_order(self, ode_job):
        jobs = replicate_jobs(ode_job, 5, seed=3)
        stream = iter_ensemble(jobs, workers=1)
        indices = [index for index, _, _ in stream]
        assert indices == [0, 1, 2, 3, 4]

    def test_pool_ordered_stream_arrives_in_submission_order(self, ode_job):
        jobs = replicate_jobs(ode_job, 6, seed=3)
        stream = iter_ensemble(jobs, workers=2, ordered=True)
        indices = [index for index, _, _ in stream]
        assert indices == [0, 1, 2, 3, 4, 5]

    def test_pool_completion_order_stream_covers_every_index(self, ode_job):
        jobs = replicate_jobs(ode_job, 6, seed=3)
        stream = iter_ensemble(jobs, workers=2, ordered=False)
        indices = [index for index, _, _ in stream]
        assert sorted(indices) == [0, 1, 2, 3, 4, 5]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_streamed_matches_materialized_bit_for_bit(self, ssa_job, workers):
        """The acceptance contract: streamed trajectories are bit-identical to
        the materialized path on both the serial and pool executors."""
        materialized = run_ensemble(replicate_jobs(ssa_job, 4, seed=11), workers=workers)
        stream = iter_ensemble(replicate_jobs(ssa_job, 4, seed=11), workers=workers)
        streamed = {index: trajectory for index, _, trajectory in stream}
        assert sorted(streamed) == [0, 1, 2, 3]
        for index, (_, expected) in enumerate(materialized):
            assert np.array_equal(streamed[index].times, expected.times)
            assert np.array_equal(streamed[index].data, expected.data)

    def test_unordered_stream_matches_too(self, ssa_job):
        materialized = run_ensemble(replicate_jobs(ssa_job, 4, seed=11), workers=2)
        stream = iter_ensemble(replicate_jobs(ssa_job, 4, seed=11), workers=2, ordered=False)
        for index, _, trajectory in stream:
            assert np.array_equal(trajectory.data, materialized.trajectory(index).data)

    def test_stats_appear_only_after_exhaustion(self, ode_job):
        jobs = replicate_jobs(ode_job, 3, seed=1)
        stream = iter_ensemble(jobs, workers=1)
        assert stream.stats is None
        assert len(stream) == 3
        list(stream)
        assert stream.stats is not None
        assert stream.stats.n_jobs == 3
        assert stream.stats.executor == "serial"

    def test_early_close_finalizes_stats(self, ode_job):
        jobs = replicate_jobs(ode_job, 4, seed=1)
        with iter_ensemble(jobs, workers=1) as stream:
            next(stream)
        assert stream.stats is not None

    def test_close_before_first_result_still_finalizes(self, ode_job):
        """Abandoning an unstarted stream must finalize stats and close the
        ephemeral executor (a never-started generator skips its finally)."""
        jobs = replicate_jobs(ode_job, 4, seed=1)
        with iter_ensemble(jobs, workers=2) as stream:
            pass
        assert stream.stats is not None
        assert stream.stats.n_jobs == 4

    def test_transform_close_before_first_result_finalizes_source(self, ode_job):
        jobs = replicate_jobs(ode_job, 3, seed=1)
        stream = iter_ensemble(jobs, workers=1)
        derived = stream.transform(lambda index, job, trajectory: index)
        derived.close()
        assert derived.stats is not None

    def test_progress_fires_once_per_completed_run(self, ode_job):
        seen = []
        jobs = replicate_jobs(ode_job, 3, seed=2)
        stream = iter_ensemble(
            jobs, workers=1, progress=lambda done, total, job: seen.append((done, total))
        )
        list(stream)
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_empty_batch_rejected(self):
        with pytest.raises(EngineError):
            iter_ensemble([])

    def test_transform_shares_stats_and_jobs(self, ode_job):
        jobs = replicate_jobs(ode_job, 3, seed=5)
        stream = iter_ensemble(jobs, workers=1)
        derived = stream.transform(lambda index, job, trajectory: index * 10)
        assert derived.stats is None
        assert list(derived) == [0, 10, 20]
        assert derived.stats is stream.stats
        assert derived.jobs is stream.jobs


class TestReducedResults:
    def test_reduce_keeps_summaries_not_trajectories(self, ode_job):
        result = run_ensemble(
            replicate_jobs(ode_job, 4, seed=7),
            workers=1,
            reduce=lambda index, job, trajectory: float(trajectory.data.sum()),
        )
        assert result.is_reduced
        assert result.trajectories is None
        assert len(result.reduced) == 4
        assert all(isinstance(value, float) for value in result.reduced)
        assert result.stats.n_jobs == 4

    def test_reduced_summaries_sit_at_their_job_index(self, ode_job):
        result = run_ensemble(
            replicate_jobs(ode_job, 4, seed=7),
            workers=2,
            reduce=lambda index, job, trajectory: index,
        )
        assert result.reduced == [0, 1, 2, 3]

    def test_reduce_matches_materialized_values(self, ssa_job):
        materialized = run_ensemble(replicate_jobs(ssa_job, 3, seed=9), workers=1)
        reduced = run_ensemble(
            replicate_jobs(ssa_job, 3, seed=9),
            workers=1,
            reduce=lambda index, job, trajectory: float(trajectory.data.sum()),
        )
        assert reduced.reduced == [float(t.data.sum()) for t in materialized.trajectories]

    def test_map_over_parameters_supports_executor_and_reduce(self, toy_model):
        from repro.engine import map_over_parameters

        template = SimulationJob(model=toy_model, t_end=20.0, simulator="ode")
        with ProcessPoolEnsembleExecutor(2) as executor:
            result = map_over_parameters(
                template,
                [{"kd": 0.1}, {"kd": 0.5}],
                seed=3,
                executor=executor,
                reduce=lambda index, job, trajectory: float(trajectory["Y"][-1]),
            )
            assert executor.is_open
        assert result.is_reduced
        # A stronger kd decays the output harder.
        assert result.reduced[1] < result.reduced[0]

    def test_reduced_result_refuses_trajectory_access(self, ode_job):
        result = run_ensemble(
            replicate_jobs(ode_job, 2, seed=1),
            reduce=lambda index, job, trajectory: None,
        )
        with pytest.raises(EngineError, match="reduced"):
            list(result)
        with pytest.raises(EngineError, match="reduced"):
            result.trajectory(0)
        assert result.tags() == [None, None]  # job metadata stays available


class TestExecutorLifecycle:
    def test_serial_executor_is_a_context_manager(self):
        with SerialExecutor() as executor:
            assert isinstance(executor, SerialExecutor)
        executor.close()  # idempotent no-op

    def test_pool_opens_lazily_and_closes_idempotently(self, ode_job):
        executor = ProcessPoolEnsembleExecutor(2)
        assert not executor.is_open
        run_ensemble(replicate_jobs(ode_job, 2, seed=1), executor=executor)
        assert executor.is_open  # caller-provided executors stay open
        executor.close()
        assert not executor.is_open
        executor.close()  # second close is a no-op
        assert not executor.is_open

    def test_context_manager_closes_the_pool(self, ode_job):
        with ProcessPoolEnsembleExecutor(2) as executor:
            run_ensemble(replicate_jobs(ode_job, 2, seed=1), executor=executor)
            assert executor.is_open
        assert not executor.is_open

    def test_closed_executor_reopens_on_next_use(self, ode_job):
        executor = ProcessPoolEnsembleExecutor(2)
        run_ensemble(replicate_jobs(ode_job, 2, seed=1), executor=executor)
        executor.close()
        result = run_ensemble(replicate_jobs(ode_job, 2, seed=1), executor=executor)
        assert result.stats.n_jobs == 2
        executor.close()

    def test_one_pool_survives_across_batches(self, ode_job):
        with ProcessPoolEnsembleExecutor(2) as executor:
            run_ensemble(replicate_jobs(ode_job, 2, seed=1), executor=executor)
            first_pool = executor._pool
            run_ensemble(replicate_jobs(ode_job, 2, seed=2), executor=executor)
            assert executor._pool is first_pool

    def test_second_batch_hits_warm_worker_cache(self, ode_job):
        """One worker, two batches on one pool: batch 1 compiles the model,
        batch 2 is pure warm cache hits."""
        with ProcessPoolEnsembleExecutor(1) as executor:
            first = run_ensemble(replicate_jobs(ode_job, 3, seed=1), executor=executor)
            second = run_ensemble(replicate_jobs(ode_job, 3, seed=2), executor=executor)
        assert first.stats.cache_misses == 1
        assert first.stats.cache_hits == 2
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hits == 3

    def test_ephemeral_executor_used_by_run_ensemble_is_closed(self, ode_job, monkeypatch):
        """run_ensemble closes executors it creates from workers=N itself."""
        import repro.engine.api as api

        created = []
        original = api.get_executor

        def tracking_get_executor(workers=1):
            executor = original(workers)
            created.append(executor)
            return executor

        monkeypatch.setattr(api, "get_executor", tracking_get_executor)
        run_ensemble(replicate_jobs(ode_job, 2, seed=1), workers=2)
        assert len(created) == 1
        assert not created[0].is_open

    def test_propagation_delay_reuses_one_executor_for_both_phases(self, and_circuit):
        """The two batches of estimate_propagation_delay share one live pool,
        so the transition batch runs entirely on warm worker caches."""
        from repro.vlab import estimate_propagation_delay

        with ProcessPoolEnsembleExecutor(1) as executor:
            analysis = estimate_propagation_delay(
                and_circuit.model,
                and_circuit.inputs,
                and_circuit.output,
                threshold=15.0,
                settle_time=100.0,
                observation_time=100.0,
                simulator="ode",
                rng=3,
                executor=executor,
            )
            assert executor.is_open  # left open for the caller
        assert analysis.delays
        # Worker-side statistics of the *last* batch (the transitions): the
        # settle batch already compiled the model in the pool's single worker.
        assert executor.last_cache_misses == 0
        assert executor.last_cache_hits == len(analysis.delays)

    def test_propagation_delay_matches_serial_with_shared_pool(self, and_circuit):
        from repro.vlab import estimate_propagation_delay

        kwargs = dict(
            input_species=and_circuit.inputs,
            output_species=and_circuit.output,
            threshold=15.0,
            settle_time=100.0,
            observation_time=100.0,
            simulator="ssa",
            rng=11,
        )
        serial = estimate_propagation_delay(and_circuit.model, **kwargs)
        pooled = estimate_propagation_delay(and_circuit.model, **kwargs, jobs=2)
        assert serial.delays == pooled.delays

    def test_replicate_study_accepts_shared_executor(self, and_circuit):
        from repro.analysis import run_replicate_study

        with ProcessPoolEnsembleExecutor(2) as executor:
            first = run_replicate_study(
                and_circuit, n_replicates=3, hold_time=100.0, rng=77, executor=executor
            )
            second = run_replicate_study(
                and_circuit, n_replicates=3, hold_time=100.0, rng=77, executor=executor
            )
        assert first.fitness_values == second.fitness_values
        baseline = run_replicate_study(and_circuit, n_replicates=3, hold_time=100.0, rng=77)
        assert baseline.fitness_values == first.fitness_values


class TestExperimentStreaming:
    def test_iter_replicates_streams_datalogs_in_order(self, and_circuit):
        from repro.vlab import LogicExperiment

        experiment = LogicExperiment.for_circuit(and_circuit, simulator="ode")
        stream = experiment.iter_replicates(3, hold_time=40.0, seed=5)
        items = list(stream)
        assert [index for index, _ in items] == [0, 1, 2]
        assert all(log.hold_time == 40.0 for _, log in items)
        assert stream.stats is not None
        assert stream.stats.n_jobs == 3

    def test_iter_replicates_matches_materialized_run(self, and_circuit):
        from repro.engine import run_ensemble as run_materialized
        from repro.vlab import LogicExperiment

        experiment = LogicExperiment.for_circuit(and_circuit, simulator="ssa")
        template = experiment.job(hold_time=60.0)
        materialized = run_materialized(replicate_jobs(template, 2, seed=9))
        stream = experiment.iter_replicates(2, hold_time=60.0, seed=9)
        for (index, log), (_, expected) in zip(stream, materialized):
            assert np.array_equal(log.trajectory.data, expected.data)
