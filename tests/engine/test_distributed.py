"""Tests for the socket-based distributed backend (engine/distributed.py + worker.py).

The conformance suite (test_backend_contract.py) proves the distributed
backend honours the generic executor contract; this module covers what is
specific to the socket transport: the wire framing, address parsing, both
fabric-assembly modes, fault tolerance (worker loss requeue, workerless
timeout, worker survival of poison tasks), study-level end-to-end execution
(the acceptance criterion: ``run_replicate_study`` on a real ≥2-worker
fabric with no study-code changes), and the ``genlogic worker`` CLI.
"""

import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.analysis import run_replicate_study
from repro.engine import (
    DistributedEnsembleExecutor,
    RemoteWorkerError,
    WorkerConnectionError,
    replicate_jobs,
    run_ensemble,
)
from repro.engine.distributed import (
    parse_address,
    parse_dispatch_spec,
    recv_message,
    send_message,
    spawn_worker_process,
)
from repro.engine.jobs import SimulationJob
from repro.engine.worker import run_worker
from repro.errors import EngineError
from repro.stochastic.events import InputSchedule


@pytest.fixture(autouse=True)
def _isolate_parent_worker_caches():
    """Restore the parent-process worker-side caches after every test.

    Some tests here run ``run_worker`` on a thread *inside* the pytest
    process, which warms this process's module-level worker caches
    (``_WORKER_CACHE`` etc.).  Fork-started pools inherit parent memory, so
    without this isolation a later test's "fresh" pool would start warm and
    its cold-compile assertions would fail.
    """
    import repro.engine.cache as cache_module

    names = ("_WORKER_CACHE", "_WORKER_MODELS", "_WORKER_KERNELS", "_WORKER_BLOBS_SEEN")
    saved = {name: dict(getattr(cache_module, name)) for name in names}
    yield
    for name, value in saved.items():
        current = getattr(cache_module, name)
        current.clear()
        current.update(value)


@pytest.fixture(scope="module")
def fabric():
    """One real loopback fabric (2 spawned worker processes) for the module."""
    with DistributedEnsembleExecutor.loopback(2) as executor:
        yield executor


@pytest.fixture()
def ssa_job(and_circuit):
    schedule = InputSchedule.from_combinations(
        list(and_circuit.inputs), [(0, 0), (1, 1)], 40.0, 40.0
    )
    return SimulationJob(model=and_circuit.model, t_end=80.0, simulator="ssa", schedule=schedule)


class TestFraming:
    def test_messages_roundtrip_over_a_socketpair(self):
        left, right = socket.socketpair()
        try:
            payload = {"type": "result", "id": 7, "ok": True, "value": [1.0, 2.0]}
            send_message(left, payload)
            send_message(left, {"type": "shutdown"})
            assert recv_message(right) == payload
            assert recv_message(right) == {"type": "shutdown"}
        finally:
            left.close()
            right.close()

    def test_eof_raises_connection_error(self):
        left, right = socket.socketpair()
        left.close()
        try:
            with pytest.raises(ConnectionError):
                recv_message(right)
        finally:
            right.close()


class TestAddressParsing:
    def test_parse_address(self):
        assert parse_address("example.org:7777") == ("example.org", 7777)
        assert parse_address(":7777") == ("0.0.0.0", 7777)

    @pytest.mark.parametrize("bad", ["nohost", "host:notaport", "", "host:"])
    def test_bad_addresses_rejected(self, bad):
        with pytest.raises(EngineError):
            parse_address(bad)

    def test_parse_dispatch_spec(self):
        assert parse_dispatch_spec("a:1, b:2,") == ["a:1", "b:2"]
        with pytest.raises(EngineError):
            parse_dispatch_spec(" , ")
        with pytest.raises(EngineError):
            parse_dispatch_spec("host")


class TestConstruction:
    def test_needs_exactly_one_assembly_mode(self):
        with pytest.raises(EngineError):
            DistributedEnsembleExecutor()
        with pytest.raises(EngineError):
            DistributedEnsembleExecutor(connect=["a:1"], listen="b:2")

    def test_listen_mode_times_out_without_workers(self):
        executor = DistributedEnsembleExecutor(
            listen="127.0.0.1:0", min_workers=1, connect_timeout=0.5
        )
        with pytest.raises(WorkerConnectionError):
            executor.open()
        assert not executor.is_open

    def test_dial_mode_times_out_against_a_dead_address(self):
        executor = DistributedEnsembleExecutor(connect=["127.0.0.1:1"], connect_timeout=0.5)
        with pytest.raises(WorkerConnectionError):
            executor.open()
        assert not executor.is_open


def _sleep_briefly(seconds):
    time.sleep(seconds)
    return seconds


def _kill_this_worker(payload):
    import os

    os._exit(17)


class TestFabricExecution:
    def test_study_runs_end_to_end_with_no_study_code_changes(self, fabric, and_circuit):
        """The acceptance criterion: run_replicate_study on a ≥2-worker TCP
        fabric via executor=, bit-identical to the serial study."""
        serial = run_replicate_study(and_circuit, n_replicates=4, hold_time=80.0, rng=21)
        distributed = run_replicate_study(
            and_circuit, n_replicates=4, hold_time=80.0, rng=21, executor=fabric
        )
        assert distributed.fitness_values == serial.fitness_values
        assert distributed.recovery_rate == serial.recovery_rate
        assert distributed.stats.executor == "distributed"
        assert fabric.is_open  # lifecycle stays with the caller

    def test_worker_caches_stay_warm_across_batches(self, fabric, ssa_job):
        first = run_ensemble(replicate_jobs(ssa_job, 4, seed=5), executor=fabric)
        second = run_ensemble(replicate_jobs(ssa_job, 4, seed=6), executor=fabric)
        assert first.stats.cache_hits + first.stats.cache_misses == 4
        assert second.stats.cache_misses == 0
        assert second.stats.cache_hits == 4

    def test_worker_loss_requeues_in_flight_tasks(self):
        """SIGKILL one of two workers mid-batch: its in-flight tasks are
        requeued and the survivor completes the whole batch."""
        with DistributedEnsembleExecutor.loopback(2) as executor:
            executor.open()
            victim = executor._processes[0]

            def _kill_soon():
                time.sleep(0.25)
                victim.send_signal(signal.SIGKILL)

            threading.Thread(target=_kill_soon, daemon=True).start()
            results = executor.map(_sleep_briefly, [0.1] * 16)
        assert results == [0.1] * 16

    def test_poison_task_fails_batch_not_forever(self):
        """A task that kills every worker it lands on must fail the batch
        once the fabric is workerless past the regrow timeout — not hang."""
        with DistributedEnsembleExecutor.loopback(1) as executor:
            executor.regrow_timeout = 1.5
            with pytest.raises((WorkerConnectionError, RemoteWorkerError)):
                executor.map(_kill_this_worker, [None, None])

    def test_close_mid_batch_settles_every_outstanding_future(self):
        """close() during an active batch must cancel/fail in-flight and
        queued futures — a caller blocked on one must not hang forever."""
        import concurrent.futures

        with DistributedEnsembleExecutor.loopback(1) as executor:
            executor.open()
            slow = executor.submit(_sleep_briefly, 8.0)  # dispatched to the worker
            queued = executor.submit(_sleep_briefly, 8.0)  # waits for a slot
            time.sleep(0.3)
            executor.close()
            for future in (slow, queued):
                with pytest.raises((concurrent.futures.CancelledError, WorkerConnectionError)):
                    future.result(timeout=5.0)

    def test_task_errors_do_not_kill_the_worker(self, fabric):
        with pytest.raises(FileNotFoundError):
            import os

            fabric.map(os.path.getsize, ["/definitely/not/a/file"])
        # Same fabric, same workers: still fully operational.
        assert fabric.map(_sleep_briefly, [0.0, 0.0]) == [0.0, 0.0]

    def test_late_worker_joins_a_listening_fabric(self):
        """A worker that dials in after open() grows the fabric's capacity —
        the reconnect path a replacement worker uses."""
        executor = DistributedEnsembleExecutor(
            listen="127.0.0.1:0", min_workers=1, connect_timeout=60.0
        )
        processes = []
        try:
            host, port = _open_with_first_worker(executor, processes)
            assert executor.capacity == 1
            processes.append(spawn_worker_process(f"{host}:{port}"))
            deadline = time.monotonic() + 30.0
            while executor.capacity < 2:
                assert time.monotonic() < deadline, "second worker never joined"
                time.sleep(0.05)
            assert executor.map(_sleep_briefly, [0.0] * 4) == [0.0] * 4
        finally:
            executor.close()
            for process in processes:
                if process.poll() is None:
                    process.terminate()
                process.wait(timeout=10.0)


def _open_with_first_worker(executor, processes):
    """Open a listen-mode fabric, dialing its first worker once bound."""
    opened = threading.Event()
    error = []

    def _opener():
        try:
            executor.open()
        except Exception as exc:  # pragma: no cover - surfaced by the assert
            error.append(exc)
        finally:
            opened.set()

    thread = threading.Thread(target=_opener, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    while executor.bound_address is None:
        assert time.monotonic() < deadline, "listener never bound"
        time.sleep(0.02)
    host, port = executor.bound_address
    processes.append(spawn_worker_process(f"{host}:{port}"))
    assert opened.wait(timeout=30.0)
    assert not error, error
    return host, port


class TestWorkerEntryPoint:
    def test_run_worker_needs_exactly_one_mode(self):
        with pytest.raises(EngineError):
            run_worker()
        with pytest.raises(EngineError):
            run_worker(connect="a:1", listen="b:2")

    def test_listen_worker_serves_sequential_coordinators(self):
        """One --listen worker serves two coordinator sessions back to back
        (the --dispatch shape), keeping its caches across sessions."""
        ready = threading.Event()
        bound = {}

        def _on_ready(address):
            bound["address"] = address
            ready.set()

        worker = threading.Thread(
            target=run_worker,
            kwargs={"listen": "127.0.0.1:0", "max_sessions": 2, "on_ready": _on_ready},
            daemon=True,
        )
        worker.start()
        assert ready.wait(timeout=10.0)
        host, port = bound["address"]
        address = f"{host}:{port}"
        for _ in range(2):
            with DistributedEnsembleExecutor(connect=[address]) as executor:
                assert executor.map(_sleep_briefly, [0.0, 0.0]) == [0.0, 0.0]
        worker.join(timeout=10.0)
        assert not worker.is_alive()


class TestDispatchCli:
    def test_verify_dispatch_matches_jobs_run(self, tmp_path, capsys):
        """genlogic verify --dispatch against two listening workers produces
        the same study a --jobs run does."""
        from repro.cli import main

        ready = threading.Event()
        bound = {}

        def _on_ready(address):
            bound["address"] = address
            ready.set()

        worker = threading.Thread(
            target=run_worker,
            kwargs={"listen": "127.0.0.1:0", "max_sessions": 1, "on_ready": _on_ready},
            daemon=True,
        )
        worker.start()
        assert ready.wait(timeout=10.0)
        host, port = bound["address"]
        argv = [
            "verify",
            "and",
            "--replicates",
            "3",
            "--hold-time",
            "80",
            "--seed",
            "9",
            "--no-progress",
        ]
        code = main([*argv, "--dispatch", f"{host}:{port}"])
        dispatched = capsys.readouterr().out
        baseline_code = main(argv)
        baseline = capsys.readouterr().out
        assert code == baseline_code
        # Same recovery/fitness lines; only the engine summary line differs.
        assert dispatched.splitlines()[0] == baseline.splitlines()[0]
        assert "distributed" in dispatched
        worker.join(timeout=10.0)

    def test_dispatch_excludes_jobs(self, capsys):
        from repro.cli import main

        code = main(
            ["verify", "and", "--replicates", "2", "--jobs", "2", "--dispatch", "h:1"],
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_worker_subcommand_validates_flags(self, capsys):
        from repro.cli import main

        assert main(["worker", "--connect", "h:1", "--max-sessions", "2"]) == 2
        capsys.readouterr()
        assert main(["worker", "--connect", "h:1", "--capacity", "0"]) == 2


class TestBitIdentityAcrossFabricShapes:
    def test_dial_out_fabric_matches_serial(self, ssa_job):
        """The --dispatch shape (coordinator dials listening workers) is
        bit-identical to serial too."""
        ready = threading.Event()
        bound = {}

        def _on_ready(address):
            bound["address"] = address
            ready.set()

        worker = threading.Thread(
            target=run_worker,
            kwargs={"listen": "127.0.0.1:0", "max_sessions": 1, "on_ready": _on_ready},
            daemon=True,
        )
        worker.start()
        assert ready.wait(timeout=10.0)
        host, port = bound["address"]
        serial = run_ensemble(replicate_jobs(ssa_job, 3, seed=13))
        with DistributedEnsembleExecutor(connect=[f"{host}:{port}"]) as executor:
            dialed = run_ensemble(replicate_jobs(ssa_job, 3, seed=13), executor=executor)
        for index in range(3):
            assert np.array_equal(dialed.trajectory(index).data, serial.trajectory(index).data)
        worker.join(timeout=10.0)
