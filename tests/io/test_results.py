"""Tests for JSON result serialization."""

import json

import numpy as np
import pytest

from repro.core import LogicAnalyzer
from repro.errors import ParseError
from repro.io import load_result_dict, result_to_dict, result_to_json, save_result_json


@pytest.fixture(scope="module")
def result():
    rng = np.random.default_rng(11)
    indices = np.repeat(np.arange(4), 80)
    inputs = ((indices[:, None] >> np.arange(1, -1, -1)) & 1) * 40.0
    output = np.clip(np.where(indices == 3, 40.0, 2.0) + rng.normal(0, 2, 320), 0, None)
    analyzer = LogicAnalyzer(threshold=15.0)
    return analyzer.analyze_arrays(
        inputs,
        output,
        ["LacI", "TetR"],
        expected="LacI & TetR",
        circuit_name="and_gate",
    )


class TestResultToDict:
    def test_core_fields(self, result):
        payload = result_to_dict(result)
        assert payload["circuit_name"] == "and_gate"
        assert payload["expression"] == "LacI & TetR"
        assert payload["truth_table_hex"] == "0x08"
        assert payload["threshold"] == 15.0
        assert payload["fov_ud"] == 0.25
        assert len(payload["combinations"]) == 4
        assert payload["fitness_percent"] > 95.0

    def test_verification_block(self, result):
        payload = result_to_dict(result)
        assert payload["verification"]["matches"] is True
        assert payload["verification"]["expected_hex"] == "0x08"

    def test_json_serialisable(self, result):
        text = result_to_json(result)
        parsed = json.loads(text)
        assert parsed["gate_name"] == "AND"

    def test_combination_entries_have_paper_columns(self, result):
        payload = result_to_dict(result)
        combination = payload["combinations"][3]
        for key in ("case_count", "high_count", "variation_count", "fov_est", "is_high"):
            assert key in combination


class TestSaveAndLoad:
    def test_roundtrip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result_json(result, path)
        loaded = load_result_dict(path)
        assert loaded["expression"] == "LacI & TetR"

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ParseError):
            load_result_dict(path)
