"""Tests for CSV serialization of trajectories and data logs."""

import io

import numpy as np
import pytest

from repro.errors import ParseError
from repro.io import read_datalog_csv, read_trajectory_csv, write_datalog_csv, write_trajectory_csv
from repro.stochastic import Trajectory


class TestTrajectoryCsv:
    def test_roundtrip_via_file(self, tmp_path):
        trajectory = Trajectory.from_dict(
            np.arange(5.0),
            {"A": np.arange(5.0), "Y": np.arange(5.0) * 2},
        )
        path = tmp_path / "trace.csv"
        write_trajectory_csv(trajectory, path)
        again = read_trajectory_csv(path)
        assert again.species == ["A", "Y"]
        assert np.allclose(again.data, trajectory.data)
        assert np.allclose(again.times, trajectory.times)

    def test_roundtrip_via_handles(self):
        trajectory = Trajectory.from_dict([0.0, 1.0], {"X": [3.0, 4.0]})
        buffer = io.StringIO()
        write_trajectory_csv(trajectory, buffer)
        again = read_trajectory_csv(io.StringIO(buffer.getvalue()))
        assert np.allclose(again["X"], [3.0, 4.0])

    def test_missing_time_column_rejected(self):
        with pytest.raises(ParseError):
            read_trajectory_csv(io.StringIO("foo,bar\n1,2\n"))


class TestDatalogCsv:
    def test_roundtrip(self, and_gate_log, tmp_path):
        path = tmp_path / "log.csv"
        write_datalog_csv(and_gate_log, path)
        again = read_datalog_csv(path)
        assert again.input_species == and_gate_log.input_species
        assert again.output_species == and_gate_log.output_species
        assert again.input_high == and_gate_log.input_high
        assert again.hold_time == and_gate_log.hold_time
        assert again.circuit_name == and_gate_log.circuit_name
        assert np.allclose(again.trajectory.data, and_gate_log.trajectory.data)
        for species in and_gate_log.input_species:
            assert np.allclose(again.applied_inputs[species], and_gate_log.applied_inputs[species])

    def test_roundtrip_preserves_analysis_outcome(self, and_gate_log, tmp_path):
        from repro.core import LogicAnalyzer

        path = tmp_path / "log.csv"
        write_datalog_csv(and_gate_log, path)
        again = read_datalog_csv(path)
        analyzer = LogicAnalyzer(threshold=15.0)
        assert (
            analyzer.analyze(again).truth_table.outputs
            == analyzer.analyze(and_gate_log).truth_table.outputs
        )

    def test_missing_metadata_rejected(self):
        with pytest.raises(ParseError):
            read_datalog_csv(io.StringIO("time,A\n0,1\n"))

    def test_missing_time_column_rejected(self):
        text = "#meta:inputs=A\n#meta:output=Y\nfoo,A,Y,applied:A\n0,1,2,0\n"
        with pytest.raises(ParseError):
            read_datalog_csv(io.StringIO(text))
