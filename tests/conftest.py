"""Shared fixtures.

Expensive artefacts (assembled circuits, seeded stochastic experiment logs)
are session-scoped: many test modules read them, none mutates them.
"""

from __future__ import annotations

import pytest

from repro.core import LogicAnalyzer
from repro.gates import and_gate_circuit, cello_circuit, default_library, not_gate_circuit
from repro.sbml import Model
from repro.vlab import LogicExperiment


@pytest.fixture()
def toy_model() -> Model:
    """A minimal one-gate (NOT) reaction network built by hand.

    Input ``A`` (boundary) represses production of ``Y``; ``Y`` degrades.
    """
    model = Model("toy_not")
    model.add_compartment("cell")
    model.add_species("A", boundary_condition=True)
    model.add_species("Y")
    model.add_parameter("kmax", 4.0)
    model.add_parameter("K", 10.0)
    model.add_parameter("n", 2.5)
    model.add_parameter("kd", 0.1)
    model.add_reaction(
        "production_Y",
        products=[("Y", 1.0)],
        modifiers=["A"],
        kinetic_law="kmax * hill_rep(A, K, n)",
    )
    model.add_reaction("degradation_Y", reactants=[("Y", 1.0)], kinetic_law="kd * Y")
    return model


@pytest.fixture(scope="session")
def library():
    return default_library()


@pytest.fixture(scope="session")
def and_circuit():
    """The paper's Figure-1 AND gate, assembled once per test session."""
    return and_gate_circuit()


@pytest.fixture(scope="session")
def not_circuit():
    return not_gate_circuit()


@pytest.fixture(scope="session")
def cello_0x0b():
    """Cello circuit 0x0B (the paper's Figure 4 headline circuit)."""
    return cello_circuit("0x0B")


@pytest.fixture(scope="session")
def and_gate_log():
    """A seeded SSA experiment log of the AND gate (two sweeps, 150 tu holds)."""
    experiment = LogicExperiment.for_circuit(and_gate_circuit(), simulator="ssa")
    return experiment.run(hold_time=150.0, repeats=2, rng=20170654)


@pytest.fixture(scope="session")
def cello_0x0b_log():
    """A seeded SSA experiment log of circuit 0x0B (one sweep, 200 tu holds)."""
    circuit = cello_circuit("0x0B")
    experiment = LogicExperiment.for_circuit(circuit, simulator="ssa")
    return experiment.run(hold_time=200.0, repeats=1, rng=20170655)


@pytest.fixture(scope="session")
def standard_analyzer():
    """The paper's analysis settings: threshold 15 molecules, FOV_UD 0.25."""
    return LogicAnalyzer(threshold=15.0, fov_ud=0.25)
