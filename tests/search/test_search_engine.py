"""Tests for the design-space search engine.

Three properties carry the layer:

* **determinism** — one seeded spec produces a bit-identical frontier payload
  on every executor backend and batch size (the ``engine`` timing block and
  the spec's execution knobs are explicitly outside result identity);
* **refinement soundness** — the racing allocator's replicates for any
  candidate are a *prefix* of the replicates a fixed exhaustive run gives the
  same candidate, so adaptive allocation can never change a candidate's
  values, only how many of them were spent;
* **the acceptance bar** — on a 200-candidate space with kinetic variants the
  racing allocator recovers the same top-5 set as exhaustive fixed-N while
  spending at most half of its replicates.
"""

import pytest

from repro.engine import (
    DistributedEnsembleExecutor,
    ProcessPoolEnsembleExecutor,
    SerialExecutor,
)
from repro.errors import EngineError
from repro.search import SearchSpec, run_design_search


def small_spec(**overrides):
    """A tiny seeded search: 6 candidates, enough for structure tests."""
    fields = {
        "function": "0x8",
        "inputs": ("LacI", "TetR"),
        "library": "diverse",
        "max_candidates": 6,
        "n0": 2,
        "refine_step": 1,
        "fixed_replicates": 3,
        "top_k": 2,
        "hold_time": 20.0,
        "seed": 7,
    }
    fields.update(overrides)
    return SearchSpec(**fields)


def result_payload(frontier):
    """The frontier payload restricted to result identity: no timing block,
    no execution knobs (workers / batch size) in the echoed spec."""
    payload = frontier.to_payload()
    payload.pop("engine", None)
    for knob in ("workers", "batch_size"):
        payload["spec"].pop(knob, None)
    return payload


@pytest.fixture(scope="module")
def serial_frontier():
    return run_design_search(small_spec(), executor=SerialExecutor())


class TestFrontierShape:
    def test_ranked_and_sized(self, serial_frontier):
        entries = serial_frontier.entries
        assert [e.rank for e in entries] == list(range(1, len(entries) + 1))
        assert serial_frontier.n_candidates == 6
        assert len(serial_frontier.top(2)) == 2
        means = [e.mean_design_fitness for e in entries]
        assert means == sorted(means, reverse=True)

    def test_every_candidate_scored_at_least_n0(self, serial_frontier):
        assert all(e.n_replicates >= 2 for e in serial_frontier.entries)
        assert serial_frontier.total_replicates >= 6 * 2

    def test_payload_is_json_ready(self, serial_frontier):
        import json

        payload = serial_frontier.to_payload()
        assert payload["n_candidates"] == 6
        assert payload["allocator"] == "racing"
        assert 0 < payload["replicates_fraction"] <= 1.0
        json.dumps(payload)  # must not raise

    def test_summary_mentions_top_candidates(self, serial_frontier):
        text = serial_frontier.summary()
        assert serial_frontier.entries[0].candidate.label().split(" @")[0] in text


class TestBackendDeterminism:
    """Same spec → bit-identical frontier on every transport and batch size."""

    @pytest.mark.parametrize("batch_size", [1, 8], ids=["batch1", "batch8"])
    @pytest.mark.parametrize("backend", ["serial", "process-pool", "loopback"])
    def test_bit_identical_across_backends(self, serial_frontier, backend, batch_size):
        spec = small_spec(batch_size=batch_size)
        if backend == "serial":
            frontier = run_design_search(spec, executor=SerialExecutor())
        elif backend == "process-pool":
            with ProcessPoolEnsembleExecutor(2) as executor:
                frontier = run_design_search(spec, executor=executor)
        else:
            with DistributedEnsembleExecutor.loopback(2) as executor:
                frontier = run_design_search(spec, executor=executor)
        assert result_payload(frontier) == result_payload(serial_frontier)

    def test_repeat_run_is_bit_identical(self, serial_frontier):
        again = run_design_search(small_spec(), executor=SerialExecutor())
        assert result_payload(again) == result_payload(serial_frontier)


class TestAllocators:
    def test_fixed_spends_the_full_grid(self):
        frontier = run_design_search(small_spec(allocator="fixed"))
        assert frontier.total_replicates == 6 * 3
        assert all(e.n_replicates == 3 for e in frontier.entries)
        assert frontier.replicates_fraction == 1.0

    def test_racing_values_are_a_prefix_of_fixed(self):
        """Adaptive allocation changes how many replicates a candidate gets,
        never which values those replicates have."""
        racing = run_design_search(small_spec())
        fixed = run_design_search(small_spec(allocator="fixed"))
        fixed_by_candidate = {e.candidate: e for e in fixed.entries}
        for entry in racing.entries:
            reference = fixed_by_candidate[entry.candidate]
            n = entry.n_replicates
            assert entry.score.fitness_values == reference.score.fitness_values[:n]

    def test_racing_never_exceeds_the_exhaustive_grid(self):
        racing = run_design_search(small_spec())
        assert racing.total_replicates <= racing.exhaustive_replicates
        assert all(e.n_replicates <= 3 for e in racing.entries)

    def test_budget_caps_total_replicates(self):
        frontier = run_design_search(small_spec(budget_replicates=13))
        assert frontier.total_replicates == 13

    def test_budget_too_small_for_initial_round(self):
        with pytest.raises(EngineError):
            run_design_search(small_spec(budget_replicates=11))  # needs 6 x 2


class TestAcceptance:
    """The PR's acceptance bar, on the tuned 200-candidate scenario."""

    BASE = {
        "function": "0x8",
        "inputs": ("LacI", "TetR"),
        "library": "diverse",
        "variants": ((), (("tu_g_nor0_cds_tu_g_nor0_p0_kmax", 1.5),)),
        "max_candidates": 200,
        "fixed_replicates": 10,
        "top_k": 5,
        "hold_time": 60.0,
        "seed": 2017,
    }

    @pytest.fixture(scope="class")
    def exhaustive(self):
        return run_design_search(SearchSpec(allocator="fixed", **self.BASE))

    @pytest.fixture(scope="class")
    def adaptive(self):
        return run_design_search(
            SearchSpec(allocator="racing", n0=2, refine_step=2, **self.BASE),
        )

    @staticmethod
    def top_set(frontier):
        return {
            (e.candidate.repressors, e.candidate.overrides)
            for e in frontier.top(5)
        }

    def test_space_uses_variants(self, exhaustive):
        assert exhaustive.n_candidates == 200
        assert any(e.candidate.overrides for e in exhaustive.entries)

    def test_same_top5_frontier(self, exhaustive, adaptive):
        assert self.top_set(adaptive) == self.top_set(exhaustive)

    def test_at_most_half_the_replicates(self, exhaustive, adaptive):
        assert exhaustive.total_replicates == 200 * 10
        assert adaptive.total_replicates <= 0.5 * exhaustive.total_replicates

    def test_adaptive_values_prefix_exhaustive(self, exhaustive, adaptive):
        fixed_by_candidate = {e.candidate: e for e in exhaustive.entries}
        for entry in adaptive.entries:
            reference = fixed_by_candidate[entry.candidate]
            n = entry.n_replicates
            assert entry.score.fitness_values == reference.score.fitness_values[:n]
