"""Tests for SearchSpec: validation, budgets, cache keys and serialization."""

import json

import pytest

from repro.errors import EngineError, ReproError
from repro.search import SEARCH_SPEC_SCHEMA, SearchSpec


def make_spec(**overrides):
    fields = {
        "function": "0x8",
        "inputs": ("LacI", "TetR"),
        "library": "diverse",
        "seed": 42,
    }
    fields.update(overrides)
    return SearchSpec(**fields)


class TestValidation:
    def test_defaults_are_valid(self):
        spec = make_spec()
        assert spec.allocator == "racing"
        assert spec.n0 == 3
        assert spec.fixed_replicates == 10
        assert spec.schema == SEARCH_SPEC_SCHEMA

    def test_bad_function_rejected(self):
        with pytest.raises(ReproError):
            make_spec(function="0xZZ")

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(ReproError):
            make_spec(inputs=("LacI", "LacI"))

    def test_unknown_library_rejected(self):
        with pytest.raises(EngineError):
            make_spec(library="exotic")

    def test_unknown_allocator_rejected(self):
        with pytest.raises(EngineError):
            make_spec(allocator="genetic")

    def test_unknown_simulator_rejected(self):
        with pytest.raises(ReproError):
            make_spec(simulator="quantum")

    def test_simulator_aliases_canonicalized(self):
        assert make_spec(simulator="gillespie").simulator == "ssa"

    def test_n0_must_support_a_variance_estimate(self):
        with pytest.raises(EngineError):
            make_spec(n0=1)

    def test_fixed_replicates_must_cover_n0(self):
        with pytest.raises(EngineError):
            make_spec(n0=5, fixed_replicates=3)

    def test_bool_not_accepted_as_count(self):
        with pytest.raises(EngineError):
            make_spec(top_k=True)

    def test_positive_floats_enforced(self):
        for field in ("threshold", "fov_ud", "hold_time", "sample_interval"):
            with pytest.raises(EngineError):
                make_spec(**{field: 0.0})

    def test_ci_level_bounds(self):
        for level in (0.0, 1.0):
            with pytest.raises(EngineError):
                make_spec(ci_level=level)

    def test_future_schema_rejected(self):
        with pytest.raises(EngineError):
            make_spec(schema=SEARCH_SPEC_SCHEMA + 1)

    def test_variants_must_not_be_empty(self):
        with pytest.raises(EngineError):
            make_spec(variants=())


class TestSpace:
    def test_n_candidates_counts_permutations_times_variants(self):
        spec = make_spec(variants=((), (("kd_YFP", 0.2),)))
        # 13 free repressors, 2 assignable gates: P(13, 2) x 2 variants.
        assert spec.n_candidates() == 13 * 12 * 2

    def test_max_candidates_truncates(self):
        spec = make_spec(max_candidates=10)
        assert spec.n_candidates() == 10
        assert len(spec.candidates()) == 10

    def test_budgets(self):
        spec = make_spec(max_candidates=10, fixed_replicates=4)
        assert spec.exhaustive_replicates() == 40
        assert spec.total_budget() == 40
        assert make_spec(max_candidates=10, budget_replicates=25).total_budget() == 25

    def test_candidates_carry_variant_overrides(self):
        spec = make_spec(variants=((), (("kd_YFP", 0.2),)), max_candidates=4)
        overrides = [c.overrides for c in spec.candidates()]
        assert overrides == [(), (("kd_YFP", 0.2),), (), (("kd_YFP", 0.2),)]


class TestCacheKey:
    def test_requires_a_seed(self):
        with pytest.raises(EngineError):
            make_spec(seed=None).cache_key()

    def test_stable_across_instances(self):
        assert make_spec().cache_key() == make_spec().cache_key()

    def test_sensitive_to_search_defining_fields(self):
        base = make_spec().cache_key()
        assert make_spec(seed=43).cache_key() != base
        assert make_spec(function="0x6").cache_key() != base
        assert make_spec(allocator="fixed").cache_key() != base
        assert make_spec(n0=4).cache_key() != base
        assert make_spec(hold_time=99.0).cache_key() != base
        assert make_spec(variants=((), (("kd_YFP", 0.2),))).cache_key() != base

    def test_insensitive_to_execution_knobs(self):
        base = make_spec().cache_key()
        assert make_spec(workers=4).cache_key() == base
        assert make_spec(batch_size=8).cache_key() == base


class TestSerialization:
    def test_json_round_trip(self):
        spec = make_spec(
            variants=((), (("kd_YFP", 0.2), ("kd_PhlF", 1.5))),
            max_candidates=50,
            budget_replicates=100,
        )
        clone = SearchSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_dict_round_trip_preserves_tuples(self):
        spec = make_spec(variants=((), (("kd_YFP", 0.2),)))
        data = json.loads(spec.to_json())
        clone = SearchSpec.from_dict(data)
        assert clone.variants == spec.variants
        assert clone.inputs == spec.inputs

    def test_unknown_field_rejected(self):
        with pytest.raises(EngineError):
            SearchSpec.from_dict({"function": "0x8", "surprise": 1})

    def test_function_required(self):
        with pytest.raises(EngineError):
            SearchSpec.from_dict({})

    def test_malformed_json_rejected(self):
        with pytest.raises(EngineError):
            SearchSpec.from_json("{not json")
