"""Unit tests for whole-model propensity kernel code generation."""

import pickle

import numpy as np
import pytest

from repro.errors import PropensityError, SimulationError
from repro.sbml import Model
from repro.stochastic import CompiledModel, compile_model, kernel_source_for
from repro.stochastic import codegen
from repro.stochastic.codegen import (
    BACKEND_CODEGEN,
    BACKEND_INTERP,
    KERNEL_ENV_VAR,
    KERNEL_FORMAT,
    default_backend,
    load_kernel,
)


def _random_states(compiled, count, seed=7):
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(15.0, 10.0, size=(count, compiled.n_species)))


@pytest.fixture()
def backends(toy_model):
    return (
        CompiledModel(toy_model, backend=BACKEND_CODEGEN),
        CompiledModel(toy_model, backend=BACKEND_INTERP),
    )


class TestSourceGeneration:
    def test_module_layout(self, toy_model):
        source = kernel_source_for(toy_model)
        assert f"KERNEL_FORMAT = {KERNEL_FORMAT}" in source
        assert "def propensities_all(state, out):" in source
        assert "def propensities_after(r, state, out):" in source
        assert "def propensities_batch(states, out=None):" in source
        assert "DEPENDENTS = " in source

    def test_constants_folded_to_literals(self, toy_model):
        source = kernel_source_for(toy_model)
        # No constant-dictionary lookups survive codegen; the Hill threshold
        # K^n = 10^2.5 is folded to a literal at generation time.
        assert "_c[" not in source
        assert repr(10.0**2.5) in source

    def test_generation_is_deterministic(self, toy_model):
        assert kernel_source_for(toy_model) == kernel_source_for(toy_model)

    def test_compiled_model_exposes_its_source(self, toy_model):
        compiled = CompiledModel(toy_model, backend=BACKEND_CODEGEN)
        assert compiled.kernel is not None
        assert compiled.kernel.source == compiled.kernel_source
        # The interp backend can still generate (without loading) the source.
        interp = CompiledModel(toy_model, backend=BACKEND_INTERP)
        assert interp.kernel is None
        assert interp.kernel_source == compiled.kernel_source

    def test_override_constants_change_the_source(self, toy_model):
        assert kernel_source_for(toy_model) != kernel_source_for(toy_model, {"kmax": 8.0})

    def test_incompatible_format_rejected(self, toy_model):
        source = kernel_source_for(toy_model).replace(
            f"KERNEL_FORMAT = {KERNEL_FORMAT}",
            "KERNEL_FORMAT = 9999",
        )
        with pytest.raises(PropensityError, match="incompatible format"):
            load_kernel(source)

    def test_syntax_error_rejected(self):
        with pytest.raises(PropensityError, match="invalid propensity kernel source"):
            load_kernel("def propensities_all(state, out:\n")

    def test_stale_kernel_shape_rejected(self, toy_model):
        other = Model("other")
        other.add_species("X", initial_amount=1.0)
        other.add_parameter("k", 1.0)
        other.add_reaction("decay", reactants=[("X", 1.0)], kinetic_law="k * X")
        with pytest.raises(PropensityError, match="stale"):
            CompiledModel(other, kernel_source=kernel_source_for(toy_model))


class TestKernelSemantics:
    def test_full_vector_matches_interp(self, backends):
        codegen_model, interp_model = backends
        for state in _random_states(codegen_model, 25):
            assert np.array_equal(
                codegen_model.propensities(state),
                interp_model.propensities(state),
            )

    def test_incremental_matches_full_recompute(self, backends):
        codegen_model, _ = backends
        state = codegen_model.state_from_dict({"A": 12.0, "Y": 9.0})
        for r in range(codegen_model.n_reactions):
            out = codegen_model.propensities(state)
            codegen_model.apply(r, state)
            codegen_model.propensities_after(r, state, out)
            assert np.array_equal(out, codegen_model.propensities(state))

    def test_batch_matches_rowwise_scalar(self, backends):
        codegen_model, interp_model = backends
        states = _random_states(codegen_model, 17)
        expected = np.stack([codegen_model.propensities(row) for row in states])
        assert np.array_equal(codegen_model.propensities_batch(states), expected)
        assert np.array_equal(interp_model.propensities_batch(states), expected)

    def test_batch_requires_a_matrix(self, backends):
        codegen_model, _ = backends
        with pytest.raises(SimulationError, match="batch"):
            codegen_model.propensities_batch(np.zeros(codegen_model.n_species))

    def test_negative_propensity_clamped(self):
        model = Model("m")
        model.add_species("X", initial_amount=1.0)
        model.add_parameter("k", 1.0)
        model.add_reaction("weird", reactants=[("X", 1.0)], kinetic_law="k * (X - 5)")
        compiled = CompiledModel(model, backend=BACKEND_CODEGEN)
        assert compiled.propensities(compiled.initial_state)[0] == 0.0
        assert compiled.propensities_batch(compiled.initial_state[None, :])[0, 0] == 0.0

    def test_nan_raises_like_interp(self):
        # inf - inf yields NaN under both Python-float and numpy-scalar
        # semantics (multiplication overflow is exception-free in both).
        model = Model("m")
        model.add_species("X", initial_amount=1.0)
        model.add_reaction(
            "undefined",
            products=[("X", 1.0)],
            kinetic_law="X * 1e308 * 10 - X * 1e308 * 10",
        )
        state = np.ones(1)
        for backend in (BACKEND_CODEGEN, BACKEND_INTERP):
            compiled = CompiledModel(model, backend=backend)
            with np.errstate(all="ignore"):
                with pytest.raises(PropensityError, match="'undefined' is NaN"):
                    compiled.propensities(state)
                if backend == BACKEND_CODEGEN:
                    with pytest.raises(PropensityError, match="'undefined' is NaN"):
                        compiled.propensities_batch(state[None, :])


    def test_min_with_nan_matches_scalar_semantics(self):
        # min(5, NaN) is 5.0 under Python's comparison-driven min; the batch
        # kernel must agree (np.minimum would propagate the NaN and trip the
        # NaN guard instead).
        model = Model("m")
        model.add_species("X", initial_amount=1.0)
        model.add_reaction(
            "guarded",
            products=[("X", 1.0)],
            kinetic_law="min(5.0, X * 1e308 * 10 - X * 1e308 * 10)",
        )
        state = np.ones(1)
        with np.errstate(all="ignore"):
            for backend in (BACKEND_CODEGEN, BACKEND_INTERP):
                compiled = CompiledModel(model, backend=backend)
                assert compiled.propensities(state)[0] == 5.0
                assert compiled.propensities_batch(np.ones((3, 1)))[0, 0] == 5.0

    def test_species_shadowing_a_local_parameter_resolves_to_the_species(self):
        # The interpreted name map gives species precedence over a local
        # parameter of the same id; the folder must not fold it away.
        model = Model("shadow")
        model.add_species("X", initial_amount=7.0)
        model.add_reaction(
            "odd",
            products=[("X", 1.0)],
            kinetic_law="0.1 * X",
            local_parameters={"X": 99.0},
        )
        state = np.array([7.0])
        for backend in (BACKEND_CODEGEN, BACKEND_INTERP):
            compiled = CompiledModel(model, backend=backend)
            assert compiled.propensities(state)[0] == 0.1 * 7.0

    def test_dense_graph_falls_back_to_full_recompute(self, toy_model, monkeypatch):
        monkeypatch.setattr(codegen, "_AFTER_STATEMENT_CAP", 0)
        compiled = CompiledModel(toy_model, backend=BACKEND_CODEGEN)
        assert "_AFTER" not in compiled.kernel.source
        state = compiled.state_from_dict({"A": 5.0, "Y": 3.0})
        out = compiled.propensities(state)
        compiled.apply(0, state)
        compiled.propensities_after(0, state, out)
        assert np.array_equal(out, compiled.propensities(state))


class TestBackendSelection:
    def test_codegen_is_the_default(self, toy_model, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert default_backend() == BACKEND_CODEGEN
        assert CompiledModel(toy_model).kernel is not None

    def test_env_var_selects_interp(self, toy_model, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "interp")
        compiled = CompiledModel(toy_model)
        assert compiled.backend == BACKEND_INTERP
        assert compiled.kernel is None

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "turbo")
        with pytest.raises(SimulationError, match="turbo"):
            default_backend()

    def test_unknown_backend_argument_rejected(self, toy_model):
        with pytest.raises(SimulationError):
            CompiledModel(toy_model, backend="turbo")

    def test_interp_scalar_propensity_still_works_on_codegen_backend(self, backends):
        codegen_model, interp_model = backends
        state = codegen_model.state_from_dict({"A": 3.0, "Y": 8.0})
        for r in range(codegen_model.n_reactions):
            assert codegen_model.propensity(r, state) == interp_model.propensity(r, state)


class TestDependencyGraph:
    @staticmethod
    def _reference_graph(compiled):
        """The historical O(R^2) all-pairs algorithm, as a test oracle."""
        changed_by = [
            {compiled.species[i] for i in compiled._change_indices[r]}
            for r in range(compiled.n_reactions)
        ]
        dependents = []
        for r in range(compiled.n_reactions):
            deps = []
            for j in range(compiled.n_reactions):
                if j == r or (compiled._law_species[j] & changed_by[r]):
                    deps.append(j)
            dependents.append(deps)
        return dependents

    def test_fast_graph_matches_reference(self, and_circuit, cello_0x0b):
        for circuit in (and_circuit, cello_0x0b):
            compiled = CompiledModel(circuit.model, backend=BACKEND_INTERP)
            reference = self._reference_graph(compiled)
            assert [compiled.dependents(r) for r in range(compiled.n_reactions)] == reference

    def test_kernel_dependents_match_interp(self, and_circuit):
        codegen_model = CompiledModel(and_circuit.model, backend=BACKEND_CODEGEN)
        interp_model = CompiledModel(and_circuit.model, backend=BACKEND_INTERP)
        for r in range(codegen_model.n_reactions):
            assert codegen_model.dependents(r) == interp_model.dependents(r)


class TestCompileModelEarlyOut:
    def test_matching_overrides_are_a_noop(self, toy_model):
        compiled = compile_model(toy_model)
        assert compile_model(compiled, {"kmax": 4.0}) is compiled
        assert compile_model(compiled, {"kmax": 4.0, "K": 10.0}) is compiled

    def test_matching_overrides_on_an_overridden_compile(self, toy_model):
        compiled = compile_model(toy_model, {"kmax": 8.0})
        assert compile_model(compiled, {"kmax": 8.0}) is compiled

    def test_prior_overrides_are_not_silently_retained(self, toy_model):
        # compile_model(compiled, {K: 10.0}) asks for *only* K=10 (the global
        # default); a compiled object carrying kmax=8.0 must not be reused.
        compiled = compile_model(toy_model, {"kmax": 8.0})
        recompiled = compile_model(compiled, {"K": 10.0})
        assert recompiled is not compiled
        assert recompiled.constants["kmax"] == 4.0
        assert recompiled.constants["K"] == 10.0

    def test_differing_overrides_recompile(self, toy_model):
        compiled = compile_model(toy_model)
        recompiled = compile_model(compiled, {"kmax": 8.0})
        assert recompiled is not compiled
        assert recompiled.constants["kmax"] == 8.0

    def test_unknown_override_still_rejected(self, toy_model):
        compiled = compile_model(toy_model)
        with pytest.raises(PropensityError):
            compile_model(compiled, {"nonexistent": 1.0})


class TestSerialization:
    def test_pickle_round_trip_carries_the_source(self, toy_model):
        compiled = CompiledModel(toy_model, backend=BACKEND_CODEGEN)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.kernel is not None
        assert clone.kernel.source == compiled.kernel.source
        state = compiled.state_from_dict({"A": 10.0, "Y": 20.0})
        assert np.array_equal(clone.propensities(state), compiled.propensities(state))

    def test_interp_backend_survives_pickling(self, toy_model):
        compiled = CompiledModel(toy_model, backend=BACKEND_INTERP)
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.backend == BACKEND_INTERP
        assert clone.kernel is None

    def test_construction_from_source_matches_fresh_compile(self, toy_model):
        source = kernel_source_for(toy_model)
        from_source = CompiledModel(toy_model, kernel_source=source, backend=BACKEND_CODEGEN)
        fresh = CompiledModel(toy_model, backend=BACKEND_CODEGEN)
        for state in _random_states(fresh, 10):
            assert np.array_equal(from_source.propensities(state), fresh.propensities(state))
        assert [from_source.dependents(r) for r in range(from_source.n_reactions)] == [
            fresh.dependents(r) for r in range(fresh.n_reactions)
        ]
