"""Behavioural tests of the four simulators on analytically tractable models."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sbml import Model
from repro.stochastic import (
    InputSchedule,
    simulate_next_reaction,
    simulate_ode,
    simulate_ssa,
    simulate_tau_leap,
)

SIMULATORS = {
    "ssa": simulate_ssa,
    "next-reaction": simulate_next_reaction,
    "tau-leap": simulate_tau_leap,
    "ode": simulate_ode,
}

STOCHASTIC = {k: v for k, v in SIMULATORS.items() if k != "ode"}


def birth_death_model(birth=5.0, death=0.1) -> Model:
    """Constitutive production + first-order degradation: Poisson(birth/death)."""
    model = Model("birth_death")
    model.add_species("X")
    model.add_parameter("kb", birth)
    model.add_parameter("kd", death)
    model.add_reaction("birth", products=[("X", 1.0)], kinetic_law="kb")
    model.add_reaction("death", reactants=[("X", 1.0)], kinetic_law="kd * X")
    return model


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", list(SIMULATORS))
    def test_sample_grid(self, name):
        trajectory = SIMULATORS[name](birth_death_model(), 50.0, sample_interval=1.0, rng=1)
        assert len(trajectory) == 51
        assert trajectory.times[0] == 0.0
        assert trajectory.times[-1] == 50.0

    @pytest.mark.parametrize("name", list(SIMULATORS))
    def test_counts_stay_non_negative(self, name):
        trajectory = SIMULATORS[name](birth_death_model(), 100.0, rng=2)
        assert (trajectory["X"] >= -1e-9).all()

    @pytest.mark.parametrize("name", list(STOCHASTIC))
    def test_integer_counts(self, name):
        trajectory = STOCHASTIC[name](birth_death_model(), 50.0, rng=3)
        values = trajectory["X"]
        assert np.allclose(values, np.round(values))

    @pytest.mark.parametrize("name", list(SIMULATORS))
    def test_stationary_mean_near_analytic(self, name):
        # E[X] = birth/death = 50; average the second half of a long run.
        trajectory = SIMULATORS[name](birth_death_model(), 600.0, rng=4)
        tail = trajectory.slice_time(200.0, 600.0)["X"].mean()
        assert tail == pytest.approx(50.0, rel=0.15)

    @pytest.mark.parametrize("name", list(STOCHASTIC))
    def test_seed_reproducibility(self, name):
        a = STOCHASTIC[name](birth_death_model(), 80.0, rng=123)
        b = STOCHASTIC[name](birth_death_model(), 80.0, rng=123)
        assert np.array_equal(a.data, b.data)

    @pytest.mark.parametrize("name", list(STOCHASTIC))
    def test_different_seeds_differ(self, name):
        a = STOCHASTIC[name](birth_death_model(), 80.0, rng=1)
        b = STOCHASTIC[name](birth_death_model(), 80.0, rng=2)
        assert not np.array_equal(a.data, b.data)

    @pytest.mark.parametrize("name", list(SIMULATORS))
    def test_initial_state_override(self, name):
        trajectory = SIMULATORS[name](
            birth_death_model(),
            5.0,
            initial_state={"X": 200.0},
            rng=5,
        )
        assert trajectory["X"][0] >= 150.0

    @pytest.mark.parametrize("name", list(SIMULATORS))
    def test_record_species_subset(self, name):
        trajectory = SIMULATORS[name](
            birth_death_model(),
            10.0,
            record_species=["X"],
            rng=6,
        )
        assert trajectory.species == ["X"]


class TestInputClamping:
    @pytest.mark.parametrize("name", list(SIMULATORS))
    def test_clamped_species_follows_schedule(self, name, toy_model):
        schedule = InputSchedule().add(0.0, {"A": 0.0}).add(50.0, {"A": 40.0})
        trajectory = SIMULATORS[name](toy_model, 100.0, schedule=schedule, rng=7)
        assert trajectory.value_at("A", 25.0) == 0.0
        assert trajectory.value_at("A", 75.0) == 40.0

    @pytest.mark.parametrize("name", list(SIMULATORS))
    def test_not_gate_responds_to_input(self, name, toy_model):
        schedule = InputSchedule().add(0.0, {"A": 0.0}).add(150.0, {"A": 40.0})
        trajectory = SIMULATORS[name](toy_model, 300.0, schedule=schedule, rng=8)
        on_level = trajectory.slice_time(100.0, 150.0)["Y"].mean()
        off_level = trajectory.slice_time(250.0, 300.0)["Y"].mean()
        assert on_level > 25.0
        assert off_level < 10.0


class TestDeadSystem:
    @pytest.mark.parametrize("name", list(SIMULATORS))
    def test_zero_propensities_hold_state(self, name):
        model = Model("dead")
        model.add_species("X", initial_amount=3.0)
        model.add_parameter("k", 1.0)
        model.add_reaction("never", products=[("X", 1.0)], kinetic_law="0 * k")
        trajectory = SIMULATORS[name](model, 20.0, rng=9)
        assert np.allclose(trajectory["X"], 3.0)


class TestGuards:
    def test_max_events_guard(self):
        with pytest.raises(SimulationError):
            simulate_ssa(birth_death_model(birth=100.0), 100.0, rng=1, max_events=50)

    def test_next_reaction_max_events_guard(self):
        with pytest.raises(SimulationError):
            simulate_next_reaction(birth_death_model(birth=100.0), 100.0, rng=1, max_events=50)


class TestOdeAccuracy:
    def test_matches_closed_form_relaxation(self):
        # dX/dt = kb - kd X from X(0)=0: X(t) = (kb/kd)(1 - exp(-kd t)).
        model = birth_death_model(birth=2.0, death=0.05)
        trajectory = simulate_ode(model, 100.0, sample_interval=1.0, step=0.02)
        kb, kd = 2.0, 0.05
        for t in (10.0, 40.0, 100.0):
            expected = (kb / kd) * (1.0 - np.exp(-kd * t))
            assert trajectory.value_at("X", t) == pytest.approx(expected, rel=0.02)
