"""Backend parity: codegen kernels vs the interpreted per-reaction path.

The generated whole-model kernels promise **bit-identical** trajectories to
the interpreted fallback — same propensity values, same RNG draw sequence,
same chosen reactions — on every example model and every simulator.  These
tests run each (model, simulator) pair under both ``REPRO_KERNEL`` settings
with the same seed and compare the sampled trajectories exactly (no
tolerance), including boundary-species clamping mid-run and local-parameter
shadowing.
"""

import numpy as np
import pytest

from repro.sbml import Model
from repro.stochastic import (
    BACKEND_CODEGEN,
    BACKEND_INTERP,
    KERNEL_ENV_VAR,
    InputSchedule,
    resolve_simulator,
)

SIMULATORS = ["ssa", "next-reaction", "tau-leap", "ode"]

MODEL_NAMES = [
    "toy_not",
    "and_gate",
    "not_gate",
    "cello_0x0B",
    "mixed_functions",
    "local_shadowing",
]

#: Shorter horizons for the bigger circuits keep the SSA runs quick; the
#: event counts are still in the thousands, plenty to detect any divergence.
T_END = {
    "toy_not": 60.0,
    "and_gate": 30.0,
    "not_gate": 40.0,
    "cello_0x0B": 25.0,
    "mixed_functions": 60.0,
    "local_shadowing": 60.0,
}


def _mixed_functions_model() -> Model:
    """A model exercising every expression feature codegen special-cases:
    Hill inlining, pow on species, exp/sqrt/min/max/piecewise, unary minus.
    """
    model = Model("mixed_functions")
    model.add_species("I", boundary_condition=True, initial_amount=5.0)
    model.add_species("X", initial_amount=20.0)
    model.add_species("Y", initial_amount=3.0)
    model.add_parameter("k1", 2.0)
    model.add_parameter("K", 8.0)
    model.add_parameter("n", 2.0)
    model.add_parameter("kd", 0.02)
    model.add_reaction(
        "hill_production",
        products=[("Y", 1.0)],
        modifiers=["I"],
        kinetic_law="k1 * hill_act(I, K, n)",
    )
    model.add_reaction(
        "exp_production",
        products=[("X", 1.0)],
        modifiers=["Y"],
        kinetic_law="k1 * exp(-(Y) / 40)",
    )
    model.add_reaction(
        "minmax_decay",
        reactants=[("X", 1.0)],
        modifiers=["Y"],
        kinetic_law="0.02 * min(X, 30) + 0.001 * max(Y, 1)",
    )
    model.add_reaction(
        "pow_decay",
        reactants=[("X", 1.0)],
        kinetic_law="kd * X^1.3",
    )
    model.add_reaction(
        "piecewise_production",
        products=[("Y", 1.0)],
        kinetic_law="piecewise(0.5, Y - 10, 0.05)",
    )
    model.add_reaction(
        "sqrt_decay",
        reactants=[("Y", 1.0)],
        kinetic_law="0.05 * sqrt(Y + 1)",
    )
    return model


def _local_shadowing_model() -> Model:
    """Local kinetic-law parameters shadow globals of the same id."""
    model = Model("local_shadowing")
    model.add_species("A", boundary_condition=True, initial_amount=10.0)
    model.add_species("X", initial_amount=4.0)
    model.add_parameter("k", 0.05)
    model.add_parameter("K", 12.0)
    model.add_reaction(
        "production_global_k",
        products=[("X", 1.0)],
        modifiers=["A"],
        kinetic_law="k * A",
    )
    model.add_reaction(
        "production_local_k",
        products=[("X", 1.0)],
        modifiers=["A"],
        kinetic_law="k * hill_rep(A, K, 2.0)",
        local_parameters={"k": 3.0},
    )
    model.add_reaction(
        "degradation",
        reactants=[("X", 1.0)],
        kinetic_law="k * X",
        local_parameters={"k": 0.15},
    )
    return model


@pytest.fixture()
def example_models(toy_model, and_circuit, not_circuit, cello_0x0b):
    return {
        "toy_not": toy_model,
        "and_gate": and_circuit.model,
        "not_gate": not_circuit.model,
        "cello_0x0B": cello_0x0b.model,
        "mixed_functions": _mixed_functions_model(),
        "local_shadowing": _local_shadowing_model(),
    }


def _schedule_for(model, t_end: float) -> InputSchedule:
    """Clamp the model's boundary inputs mid-run (boundary-clamping parity)."""
    schedule = InputSchedule()
    boundary = model.boundary_species()
    for offset, sid in enumerate(boundary):
        schedule.add(t_end / 3 + offset, {sid: 30.0})
        schedule.add(2 * t_end / 3 + offset, {sid: 0.0})
    return schedule


class TestBackendParity:
    @pytest.mark.parametrize("simulator", SIMULATORS)
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_trajectories_bit_identical(self, example_models, name, simulator, monkeypatch):
        model = example_models[name]
        t_end = T_END[name]
        schedule = _schedule_for(model, t_end)
        simulate = resolve_simulator(simulator)
        trajectories = {}
        for backend in (BACKEND_CODEGEN, BACKEND_INTERP):
            monkeypatch.setenv(KERNEL_ENV_VAR, backend)
            trajectories[backend] = simulate(
                model,
                t_end,
                sample_interval=1.0,
                schedule=schedule,
                rng=20170656,
            )
        codegen_run = trajectories[BACKEND_CODEGEN]
        interp_run = trajectories[BACKEND_INTERP]
        assert codegen_run.species == interp_run.species
        assert np.array_equal(codegen_run.times, interp_run.times)
        assert np.array_equal(codegen_run.data, interp_run.data)

    @pytest.mark.parametrize("fractional_state", [False, True])
    def test_tauleap_matmul_update_bit_identical_to_sequential(
        self, example_models, fractional_state, monkeypatch
    ):
        """The vectorised `counts @ change_matrix` update must equal the
        historical sequential per-reaction loop bit-for-bit — including when
        a fractional species amount forces the sequential path."""
        from repro.stochastic import CompiledModel, simulate_tau_leap

        model = example_models["mixed_functions"].copy()
        if fractional_state:
            model.set_initial_amount("X", 20.5)
        with_matrix = simulate_tau_leap(model, 50.0, rng=20170658)
        # Force the sequential update unconditionally and re-run.
        monkeypatch.setattr(
            CompiledModel,
            "has_integral_stoichiometry",
            property(lambda self: False),
        )
        sequential = simulate_tau_leap(model, 50.0, rng=20170658)
        assert np.array_equal(with_matrix.data, sequential.data)

    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_propensity_vectors_bit_identical(self, example_models, name):
        from repro.stochastic import CompiledModel

        model = example_models[name]
        codegen_model = CompiledModel(model, backend=BACKEND_CODEGEN)
        interp_model = CompiledModel(model, backend=BACKEND_INTERP)
        rng = np.random.default_rng(20170657)
        states = np.abs(rng.normal(12.0, 8.0, size=(20, codegen_model.n_species)))
        assert np.array_equal(
            codegen_model.propensities_batch(states),
            interp_model.propensities_batch(states),
        )
        for state in states:
            assert np.array_equal(
                codegen_model.propensities(state),
                interp_model.propensities(state),
            )
