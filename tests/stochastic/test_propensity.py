"""Tests for model compilation into propensity evaluators."""

import pytest

from repro.errors import PropensityError, SimulationError
from repro.sbml import Model
from repro.stochastic import CompiledModel, compile_model


@pytest.fixture()
def compiled(toy_model):
    return CompiledModel(toy_model)


class TestCompilation:
    def test_species_index(self, compiled):
        assert compiled.species == ["A", "Y"]
        assert compiled.index == {"A": 0, "Y": 1}

    def test_boundary_mask(self, compiled):
        assert list(compiled.boundary_mask) == [True, False]

    def test_initial_state(self, compiled):
        assert list(compiled.initial_state) == [0.0, 0.0]

    def test_model_without_reactions_rejected(self):
        model = Model("empty")
        model.add_species("X")
        with pytest.raises(SimulationError):
            CompiledModel(model)

    def test_reaction_without_kinetic_law_rejected(self):
        model = Model("m")
        model.add_species("X")
        model.add_reaction("r", products=[("X", 1.0)])
        with pytest.raises(PropensityError):
            CompiledModel(model)

    def test_compile_model_passthrough(self, compiled):
        assert compile_model(compiled) is compiled

    def test_parameter_overrides(self, toy_model):
        compiled = compile_model(toy_model, {"kmax": 8.0})
        state = compiled.state_from_dict({"A": 0.0})
        production = compiled.reaction_ids.index("production_Y")
        assert compiled.propensity(production, state) == pytest.approx(8.0)

    def test_unknown_override_rejected(self, toy_model):
        with pytest.raises(PropensityError):
            compile_model(toy_model, {"nonexistent": 1.0})


class TestPropensities:
    def test_values_match_hand_computation(self, compiled):
        state = compiled.state_from_dict({"A": 10.0, "Y": 20.0})
        values = compiled.propensities(state)
        production = compiled.reaction_ids.index("production_Y")
        degradation = compiled.reaction_ids.index("degradation_Y")
        assert values[production] == pytest.approx(4.0 * 0.5)  # hill_rep(K,K,n) = 0.5
        assert values[degradation] == pytest.approx(0.1 * 20.0)

    def test_negative_propensity_clamped_to_zero(self):
        model = Model("m")
        model.add_species("X", initial_amount=1.0)
        model.add_parameter("k", 1.0)
        model.add_reaction("weird", reactants=[("X", 1.0)], kinetic_law="k * (X - 5)")
        compiled = CompiledModel(model)
        assert compiled.propensity(0, compiled.initial_state) == 0.0

    def test_apply_changes_state_in_place(self, compiled):
        state = compiled.state_from_dict({"A": 0.0, "Y": 3.0})
        production = compiled.reaction_ids.index("production_Y")
        compiled.apply(production, state)
        assert state[compiled.index["Y"]] == 4.0

    def test_apply_never_touches_boundary_species(self):
        model = Model("m")
        model.add_species("A", boundary_condition=True, initial_amount=10.0)
        model.add_species("Y")
        model.add_parameter("k", 1.0)
        # A appears as a reactant, but being a boundary species it must not
        # be consumed by the firing.
        model.add_reaction(
            "bind",
            reactants=[("A", 1.0)],
            products=[("Y", 1.0)],
            kinetic_law="k * A",
        )
        compiled = CompiledModel(model)
        state = compiled.initial_state.copy()
        compiled.apply(0, state)
        assert state[compiled.index["A"]] == 10.0
        assert state[compiled.index["Y"]] == 1.0

    def test_clamp(self, compiled):
        state = compiled.initial_state.copy()
        compiled.clamp(state, {"A": 33.0})
        assert state[compiled.index["A"]] == 33.0
        with pytest.raises(SimulationError):
            compiled.clamp(state, {"missing": 1.0})

    def test_state_from_dict_unknown_species_rejected(self, compiled):
        with pytest.raises(SimulationError):
            compiled.state_from_dict({"Q": 1.0})

    def test_rates_sign_structure(self, compiled):
        state = compiled.state_from_dict({"A": 0.0, "Y": 100.0})
        rates = compiled.rates(state)
        # Production 4/s, degradation 10/s -> net negative for Y, zero for A.
        assert rates[compiled.index["A"]] == 0.0
        assert rates[compiled.index["Y"]] == pytest.approx(4.0 - 10.0)


class TestDependencyGraph:
    def test_self_dependency_always_present(self, compiled):
        for r in range(compiled.n_reactions):
            assert r in compiled.dependents(r)

    def test_production_affects_degradation(self, compiled):
        production = compiled.reaction_ids.index("production_Y")
        degradation = compiled.reaction_ids.index("degradation_Y")
        assert degradation in compiled.dependents(production)

    def test_degradation_does_not_affect_production(self, compiled):
        # production_Y's law depends only on A (boundary), so firing
        # degradation_Y (which changes Y) cannot change it.
        production = compiled.reaction_ids.index("production_Y")
        degradation = compiled.reaction_ids.index("degradation_Y")
        assert production not in compiled.dependents(degradation)

    def test_cascade_dependency(self, and_circuit):
        compiled = CompiledModel(and_circuit.model)
        # Firing the CI production reaction must mark the GFP production
        # reaction (repressed by CI) as a dependent.
        ci_production = [
            i
            for i, rid in enumerate(compiled.reaction_ids)
            if rid.startswith("production") and "CI" in rid
        ]
        gfp_production = [
            i
            for i, rid in enumerate(compiled.reaction_ids)
            if rid.startswith("production") and "GFP" in rid
        ]
        assert ci_production and gfp_production
        assert gfp_production[0] in compiled.dependents(ci_production[0])
