"""Tests for the sampled-trajectory data structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.stochastic import Trajectory


@pytest.fixture()
def trajectory():
    times = np.arange(0.0, 10.0, 1.0)
    return Trajectory.from_dict(
        times,
        {"A": np.linspace(0, 9, 10), "B": np.full(10, 5.0)},
    )


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            Trajectory(np.arange(3.0), ["A"], np.zeros((2, 1)))

    def test_species_count_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            Trajectory(np.arange(3.0), ["A", "B"], np.zeros((3, 1)))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(SimulationError):
            Trajectory(np.array([0.0, 1.0, 1.0]), ["A"], np.zeros((3, 1)))

    def test_empty_trajectory(self):
        empty = Trajectory.empty(["A", "B"])
        assert len(empty) == 0
        assert "A" in empty


class TestAccess:
    def test_column_and_getitem(self, trajectory):
        assert trajectory["A"][3] == 3.0
        assert trajectory.column("B")[0] == 5.0

    def test_unknown_species_rejected(self, trajectory):
        with pytest.raises(SimulationError):
            trajectory.column("C")

    def test_value_at_uses_last_sample_before(self, trajectory):
        assert trajectory.value_at("A", 3.7) == 3.0
        assert trajectory.value_at("A", 9.5) == 9.0

    def test_value_at_before_start_rejected(self, trajectory):
        with pytest.raises(SimulationError):
            trajectory.value_at("A", -0.5)

    def test_final_state(self, trajectory):
        assert trajectory.final_state() == {"A": 9.0, "B": 5.0}

    def test_sample_interval(self, trajectory):
        assert trajectory.sample_interval == pytest.approx(1.0)

    def test_as_dict(self, trajectory):
        columns = trajectory.as_dict()
        assert set(columns) == {"A", "B"}
        assert columns["A"][2] == 2.0

    def test_mean_window(self, trajectory):
        assert trajectory.mean("A", 0.0, 4.0) == pytest.approx(2.0)
        with pytest.raises(SimulationError):
            trajectory.mean("A", 100.0, 200.0)


class TestTransforms:
    def test_select_reorders_columns(self, trajectory):
        selected = trajectory.select(["B", "A"])
        assert selected.species == ["B", "A"]
        assert selected["A"][4] == 4.0

    def test_select_unknown_rejected(self, trajectory):
        with pytest.raises(SimulationError):
            trajectory.select(["A", "Z"])

    def test_slice_time(self, trajectory):
        part = trajectory.slice_time(2.0, 5.0)
        assert len(part) == 4
        assert part.times[0] == 2.0
        assert part["A"][-1] == 5.0

    def test_resample_zero_order_hold(self, trajectory):
        resampled = trajectory.resample([0.5, 2.2, 8.9])
        assert list(resampled["A"]) == [0.0, 2.0, 8.0]

    def test_resample_before_start_rejected(self, trajectory):
        with pytest.raises(SimulationError):
            trajectory.resample([-1.0])

    def test_concat(self, trajectory):
        later = Trajectory.from_dict(
            np.arange(10.0, 15.0),
            {"A": np.zeros(5), "B": np.ones(5)},
        )
        joined = trajectory.concat(later)
        assert len(joined) == 15
        assert joined["B"][-1] == 1.0

    def test_concat_drops_overlap(self, trajectory):
        overlapping = Trajectory.from_dict(
            np.arange(8.0, 12.0),
            {"A": np.zeros(4), "B": np.zeros(4)},
        )
        joined = trajectory.concat(overlapping)
        assert np.all(np.diff(joined.times) > 0)

    def test_concat_species_mismatch_rejected(self, trajectory):
        other = Trajectory.from_dict(np.arange(10.0, 12.0), {"A": np.zeros(2)})
        with pytest.raises(SimulationError):
            trajectory.concat(other)

    def test_with_column_adds_and_replaces(self, trajectory):
        added = trajectory.with_column("C", np.full(10, 2.0))
        assert "C" in added
        replaced = added.with_column("C", np.full(10, 7.0))
        assert replaced["C"][0] == 7.0
        with pytest.raises(SimulationError):
            trajectory.with_column("C", np.zeros(3))


@given(
    n=st.integers(min_value=2, max_value=40),
    t0=st.floats(min_value=0.0, max_value=5.0),
    dt=st.floats(min_value=0.1, max_value=3.0),
)
@settings(max_examples=40, deadline=None)
def test_slice_then_concat_recovers_original(n, t0, dt):
    """Splitting a trajectory at any point and re-concatenating is lossless."""
    times = t0 + dt * np.arange(n)
    data = {"X": np.arange(n, dtype=float)}
    trajectory = Trajectory.from_dict(times, data)
    split = times[n // 2]
    left = trajectory.slice_time(times[0], split)
    right = trajectory.slice_time(split, times[-1])
    joined = left.concat(right)
    assert np.allclose(joined.times, times)
    assert np.allclose(joined["X"], data["X"])
