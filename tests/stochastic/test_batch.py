"""Lockstep batch SSA: bit-identity against the serial direct method.

The whole value of :func:`repro.stochastic.simulate_ssa_batch` rests on one
claim — each replicate of a lockstep batch is *bit-identical* to the serial
single-replicate run with the same seed — so these tests compare raw arrays
with :func:`numpy.array_equal`, never with tolerances.
"""

import numpy as np

from repro.stochastic import (
    InputSchedule,
    fan_out_seeds,
    simulate_ssa,
    simulate_ssa_batch,
)


def _and_schedule(circuit):
    return InputSchedule.from_combinations(
        list(circuit.inputs), [(0, 0), (1, 1), (1, 0)], 30.0, 30.0
    )


def _assert_batch_matches_serial(model, t_end, seeds, **kwargs):
    batch = simulate_ssa_batch(model, t_end, seeds, **kwargs)
    assert len(batch) == len(seeds)
    for seed, trajectory in zip(seeds, batch):
        expected = simulate_ssa(model, t_end, rng=seed, **kwargs)
        assert np.array_equal(trajectory.times, expected.times)
        assert np.array_equal(trajectory.data, expected.data)
        assert trajectory.species == expected.species


class TestBitIdentity:
    def test_scheduled_circuit_matches_serial_per_replicate(self, and_circuit):
        """The headline contract, on a real circuit with input clamping.

        ``from_combinations`` places an event at t=0, so the schedule's first
        segment is the degenerate ``[0, 0)`` one — the serial inner loop never
        enters it, and a lockstep stepper that does draws one spurious
        waiting time per replicate and diverges from the very first step.
        This test is the regression guard for exactly that bug.
        """
        _assert_batch_matches_serial(
            and_circuit.model,
            90.0,
            fan_out_seeds(11, 5),
            schedule=_and_schedule(and_circuit),
        )

    def test_unscheduled_run_matches_serial(self, and_circuit):
        _assert_batch_matches_serial(and_circuit.model, 40.0, fan_out_seeds(3, 4))

    def test_batch_of_one_matches_serial(self, and_circuit):
        _assert_batch_matches_serial(
            and_circuit.model,
            60.0,
            fan_out_seeds(7, 1),
            schedule=_and_schedule(and_circuit),
        )

    def test_record_species_and_initial_state_match_serial(self, and_circuit):
        output = and_circuit.output
        _assert_batch_matches_serial(
            and_circuit.model,
            40.0,
            fan_out_seeds(5, 3),
            initial_state={output: 12.0},
            record_species=[output],
        )

    def test_sample_interval_matches_serial(self, and_circuit):
        _assert_batch_matches_serial(
            and_circuit.model,
            40.0,
            fan_out_seeds(9, 3),
            sample_interval=2.5,
        )


class TestBatchShape:
    def test_empty_seed_list_yields_no_trajectories(self, and_circuit):
        assert simulate_ssa_batch(and_circuit.model, 10.0, []) == []

    def test_replicates_share_one_sample_grid_object(self, and_circuit):
        """Lockstep replicates share the grid array itself — the invariant the
        binary transport exploits to encode the time block once per batch."""
        batch = simulate_ssa_batch(and_circuit.model, 20.0, fan_out_seeds(1, 3))
        assert batch[1].times is batch[0].times
        assert batch[2].times is batch[0].times

    def test_generator_seeds_are_consumed_in_place(self, and_circuit):
        """Live generators are accepted (the serial executor's in-process
        case) and advanced exactly as their serial counterparts would be."""
        seeds = fan_out_seeds(13, 2)
        batch = simulate_ssa_batch(
            and_circuit.model, 30.0, [np.random.default_rng(seed) for seed in seeds]
        )
        for seed, trajectory in zip(seeds, batch):
            expected = simulate_ssa(and_circuit.model, 30.0, rng=seed)
            assert np.array_equal(trajectory.data, expected.data)
