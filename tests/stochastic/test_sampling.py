"""Tests for the uniform-grid sample recorder."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.stochastic import SampleRecorder, make_sample_times


class TestMakeSampleTimes:
    def test_includes_both_ends(self):
        times = make_sample_times(10.0, 1.0)
        assert times[0] == 0.0
        assert times[-1] == 10.0
        assert len(times) == 11

    def test_fractional_interval(self):
        times = make_sample_times(1.0, 0.25)
        assert len(times) == 5

    def test_interval_not_dividing_range(self):
        times = make_sample_times(1.0, 0.3)
        assert times[-1] <= 1.0 + 1e-9
        assert len(times) == 4  # 0, 0.3, 0.6, 0.9

    def test_bad_arguments_rejected(self):
        with pytest.raises(SimulationError):
            make_sample_times(0.0, 1.0)
        with pytest.raises(SimulationError):
            make_sample_times(10.0, 0.0)

    def test_start_offset(self):
        times = make_sample_times(5.0, 1.0, t_start=2.0)
        assert times[0] == 2.0
        assert times[-1] == 5.0


class TestSampleRecorder:
    def test_fill_before_is_exclusive(self):
        recorder = SampleRecorder(np.arange(5.0), 1)
        recorder.fill_before(2.0, np.array([7.0]))
        assert list(recorder.data[:, 0]) == [7.0, 7.0, 0.0, 0.0, 0.0]

    def test_fill_through_is_inclusive(self):
        recorder = SampleRecorder(np.arange(5.0), 1)
        recorder.fill_through(2.0, np.array([7.0]))
        assert list(recorder.data[:, 0]) == [7.0, 7.0, 7.0, 0.0, 0.0]

    def test_sequential_fills_use_distinct_states(self):
        recorder = SampleRecorder(np.arange(6.0), 1)
        recorder.fill_before(2.5, np.array([1.0]))
        recorder.fill_before(4.5, np.array([2.0]))
        recorder.finish(np.array([3.0]))
        assert list(recorder.data[:, 0]) == [1.0, 1.0, 1.0, 2.0, 2.0, 3.0]

    def test_fills_never_rewind(self):
        recorder = SampleRecorder(np.arange(4.0), 1)
        recorder.fill_before(3.5, np.array([5.0]))
        recorder.fill_before(1.0, np.array([9.0]))  # earlier fill is a no-op
        assert list(recorder.data[:, 0]) == [5.0, 5.0, 5.0, 5.0, 0.0][:4]

    def test_complete_flag(self):
        recorder = SampleRecorder(np.arange(3.0), 2)
        assert not recorder.complete
        recorder.finish(np.array([1.0, 2.0]))
        assert recorder.complete
        assert recorder.data.shape == (3, 2)
