"""The compact binary trajectory transport: exact round-trips, hard rejections.

The codec carries raw little-endian float64 blocks, so a round-trip must be
*bitwise* exact — including NaN payload bits — and every malformed frame
(truncated, foreign magic, future version, trailing bytes) must fail loudly
rather than decode into garbage trajectories.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.stochastic import Trajectory, decode_trajectories, encode_trajectories
from repro.stochastic.trajectory import (
    TRAJECTORY_FRAME_MAGIC,
    TRAJECTORY_FRAME_VERSION,
)


def _trajectory(n_times=5, n_species=2, offset=0.0, species=None):
    times = np.arange(float(n_times))
    data = offset + np.arange(float(n_times * n_species)).reshape(n_times, n_species)
    names = species or [f"S{i}" for i in range(n_species)]
    return Trajectory(times, names, data)


def _assert_bitwise_equal(decoded, original):
    assert decoded.species == original.species
    assert decoded.times.tobytes() == original.times.tobytes()
    assert decoded.data.tobytes() == original.data.tobytes()


class TestRoundTrip:
    def test_shared_grid_batch_round_trips(self):
        grid = np.arange(7.0)
        batch = [
            Trajectory(grid, ["A", "B"], np.random.default_rng(k).random((7, 2)))
            for k in range(4)
        ]
        decoded = decode_trajectories(encode_trajectories(batch))
        assert len(decoded) == 4
        for original, copy in zip(batch, decoded):
            _assert_bitwise_equal(copy, original)

    def test_mixed_grid_batch_round_trips(self):
        batch = [_trajectory(n_times=4), _trajectory(n_times=9, offset=3.5)]
        decoded = decode_trajectories(encode_trajectories(batch))
        for original, copy in zip(batch, decoded):
            _assert_bitwise_equal(copy, original)

    def test_single_sample_trajectory_round_trips(self):
        decoded = decode_trajectories(encode_trajectories([_trajectory(n_times=1)]))
        assert decoded[0].data.shape == (1, 2)

    def test_decoded_arrays_are_owned_and_writable(self):
        """Decoding must not hand out read-only views of the frame buffer."""
        decoded = decode_trajectories(encode_trajectories([_trajectory()]))[0]
        decoded.data[0, 0] = -1.0
        assert decoded.data.flags.writeable
        assert decoded.data.flags.c_contiguous

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            min_size=1,
            max_size=16,
        )
    )
    def test_values_round_trip_bitwise_including_nan(self, values):
        data = np.array(values, dtype=np.float64).reshape(-1, 1)
        original = Trajectory(np.arange(float(len(values))), ["X"], data)
        decoded = decode_trajectories(encode_trajectories([original]))[0]
        # tobytes() comparison: NaN payload bits and signed zeros must survive.
        assert decoded.data.tobytes() == original.data.tobytes()


class TestNormalization:
    def test_fortran_ordered_and_integer_input_round_trips(self):
        """``Trajectory.__post_init__`` owns normalization: Fortran-ordered or
        integer arrays become C-contiguous float64, so the zero-copy encode
        path never sees a layout it cannot memoryview."""
        times = np.arange(6)  # integer dtype
        data = np.asfortranarray(np.arange(12).reshape(6, 2))  # int, F-order
        trajectory = Trajectory(times, ["A", "B"], data)
        assert trajectory.times.dtype == np.float64
        assert trajectory.data.dtype == np.float64
        assert trajectory.data.flags.c_contiguous
        decoded = decode_trajectories(encode_trajectories([trajectory]))[0]
        _assert_bitwise_equal(decoded, trajectory)


class TestRejection:
    def test_empty_batch_rejected(self):
        with pytest.raises(SimulationError):
            encode_trajectories([])

    def test_mismatched_species_tables_rejected(self):
        batch = [_trajectory(species=["A", "B"]), _trajectory(species=["A", "C"])]
        with pytest.raises(SimulationError):
            encode_trajectories(batch)

    def test_wrong_magic_rejected(self):
        frame = bytearray(encode_trajectories([_trajectory()]))
        frame[:4] = b"ZIP!"
        with pytest.raises(SimulationError, match="not a trajectory frame"):
            decode_trajectories(bytes(frame))

    def test_future_version_rejected(self):
        frame = bytearray(encode_trajectories([_trajectory()]))
        struct.pack_into("<H", frame, len(TRAJECTORY_FRAME_MAGIC), TRAJECTORY_FRAME_VERSION + 1)
        with pytest.raises(SimulationError, match="version"):
            decode_trajectories(bytes(frame))

    @pytest.mark.parametrize("keep", [0, 3, 11, -1, -9])
    def test_truncated_frame_rejected(self, keep):
        frame = encode_trajectories([_trajectory()])
        with pytest.raises(SimulationError):
            decode_trajectories(frame[:keep])

    def test_trailing_bytes_rejected(self):
        frame = encode_trajectories([_trajectory()])
        with pytest.raises(SimulationError):
            decode_trajectories(frame + b"\x00")
