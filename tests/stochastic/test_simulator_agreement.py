"""Statistical agreement between the exact and approximate simulators.

The logic-analysis results must not depend on which trace source is used;
these tests check that the simulators agree on the stationary statistics of a
birth-death process (where the exact answer is known: Poisson with mean
birth/death) and on the settled logic levels of a genetic NOT gate.
"""

import numpy as np
import pytest

from repro.sbml import Model
from repro.stochastic import (
    InputSchedule,
    simulate_next_reaction,
    simulate_ode,
    simulate_ssa,
    simulate_tau_leap,
    spawn_rngs,
)


def birth_death_model(birth=4.0, death=0.1) -> Model:
    model = Model("birth_death")
    model.add_species("X")
    model.add_parameter("kb", birth)
    model.add_parameter("kd", death)
    model.add_reaction("birth", products=[("X", 1.0)], kinetic_law="kb")
    model.add_reaction("death", reactants=[("X", 1.0)], kinetic_law="kd * X")
    return model


def _stationary_samples(simulate, model, rng, t_end=400.0, burn_in=100.0):
    trajectory = simulate(model, t_end, sample_interval=1.0, rng=rng)
    return trajectory.slice_time(burn_in, t_end)["X"]


class TestBirthDeathAgreement:
    """Stationary distribution is Poisson(40): mean 40, variance 40."""

    @pytest.mark.parametrize(
        "simulate",
        [simulate_ssa, simulate_next_reaction, simulate_tau_leap],
    )
    def test_mean_and_variance(self, simulate):
        model = birth_death_model()
        samples = np.concatenate(
            [
                _stationary_samples(simulate, model, rng)
                for rng in spawn_rngs(99, 4)
            ],
        )
        assert samples.mean() == pytest.approx(40.0, rel=0.10)
        assert samples.var() == pytest.approx(40.0, rel=0.40)

    def test_exact_methods_agree_with_each_other(self):
        model = birth_death_model()
        direct = np.concatenate(
            [_stationary_samples(simulate_ssa, model, rng) for rng in spawn_rngs(1, 4)],
        )
        gibson = np.concatenate(
            [
                _stationary_samples(simulate_next_reaction, model, rng)
                for rng in spawn_rngs(2, 4)
            ],
        )
        assert direct.mean() == pytest.approx(gibson.mean(), rel=0.08)

    def test_ode_matches_stochastic_mean(self):
        model = birth_death_model()
        ode_level = simulate_ode(model, 400.0).value_at("X", 399.0)
        ssa_level = _stationary_samples(simulate_ssa, model, 3).mean()
        assert ode_level == pytest.approx(40.0, rel=0.02)
        assert ssa_level == pytest.approx(ode_level, rel=0.12)


class TestNotGateAgreement:
    """All simulators must report the same ON/OFF logic levels for a NOT gate."""

    @pytest.mark.parametrize(
        "simulate",
        [simulate_ssa, simulate_next_reaction, simulate_tau_leap, simulate_ode],
    )
    def test_logic_levels(self, simulate, toy_model):
        schedule = InputSchedule().add(0.0, {"A": 0.0}).add(200.0, {"A": 40.0})
        trajectory = simulate(toy_model, 400.0, schedule=schedule, rng=5)
        on_level = trajectory.slice_time(120.0, 200.0)["Y"].mean()
        off_level = trajectory.slice_time(320.0, 400.0)["Y"].mean()
        # Same digital verdict regardless of simulator, with the paper's
        # 15-molecule threshold comfortably between the two levels.
        assert on_level > 25.0
        assert off_level < 8.0
