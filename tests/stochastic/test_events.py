"""Tests for input clamping schedules."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.stochastic import InputEvent, InputSchedule


class TestInputEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ExperimentError):
            InputEvent(-1.0, {"A": 1.0})

    def test_negative_amount_rejected(self):
        with pytest.raises(ExperimentError):
            InputEvent(0.0, {"A": -2.0})


class TestSchedule:
    def test_events_sorted_by_time(self):
        schedule = InputSchedule().add(5.0, {"A": 1.0}).add(1.0, {"A": 2.0})
        assert [e.time for e in schedule] == [1.0, 5.0]

    def test_species_first_use_order(self):
        schedule = InputSchedule().add(0.0, {"B": 1.0}).add(1.0, {"A": 2.0, "B": 0.0})
        assert schedule.species == ["B", "A"]

    def test_value_at_latest_assignment_wins(self):
        schedule = InputSchedule().add(0.0, {"A": 10.0}).add(5.0, {"A": 20.0})
        assert schedule.value_at("A", 0.0) == 10.0
        assert schedule.value_at("A", 4.999) == 10.0
        assert schedule.value_at("A", 5.0) == 20.0
        assert schedule.value_at("A", 100.0) == 20.0

    def test_value_at_default_before_first_event(self):
        schedule = InputSchedule().add(3.0, {"A": 10.0})
        assert schedule.value_at("A", 1.0, default=7.0) == 7.0

    def test_segment_boundaries(self):
        schedule = InputSchedule().add(0.0, {"A": 1.0}).add(10.0, {"A": 2.0})
        assert schedule.segment_boundaries(25.0) == [0.0, 10.0, 25.0]
        # Events at/after t_end are not boundaries.
        assert schedule.segment_boundaries(10.0) == [0.0, 10.0]

    def test_events_between(self):
        schedule = InputSchedule().add(0.0, {"A": 1.0}).add(10.0, {"A": 2.0})
        assert len(schedule.events_between(0.0, 10.0)) == 1
        assert len(schedule.events_between(0.0, 10.1)) == 2

    def test_merge(self):
        a = InputSchedule().add(0.0, {"A": 1.0})
        b = InputSchedule().add(5.0, {"B": 2.0})
        merged = a.merge(b)
        assert len(merged) == 2
        assert merged.species == ["A", "B"]

    def test_total_duration(self):
        schedule = InputSchedule().add(0.0, {"A": 1.0}).add(7.5, {"A": 0.0})
        assert schedule.total_duration() == 7.5
        assert InputSchedule().total_duration() == 0.0

    def test_applied_values_vectorised(self):
        schedule = InputSchedule().add(0.0, {"A": 0.0, "B": 40.0}).add(10.0, {"A": 40.0})
        times = np.array([0.0, 5.0, 10.0, 15.0])
        applied = schedule.applied_values(["A", "B"], times)
        assert list(applied["A"]) == [0.0, 0.0, 40.0, 40.0]
        assert list(applied["B"]) == [40.0, 40.0, 40.0, 40.0]

    def test_applied_values_with_defaults(self):
        schedule = InputSchedule().add(10.0, {"A": 40.0})
        applied = schedule.applied_values(["A"], np.array([0.0, 20.0]), defaults={"A": 5.0})
        assert list(applied["A"]) == [5.0, 40.0]


class TestFromCombinations:
    def test_builds_one_event_per_combination(self):
        schedule = InputSchedule.from_combinations(
            ["A", "B"],
            [(0, 0), (0, 1), (1, 0), (1, 1)],
            hold_time=100.0,
            high_amount=40.0,
        )
        assert len(schedule) == 4
        assert schedule.value_at("A", 250.0) == 40.0
        assert schedule.value_at("B", 250.0) == 0.0
        assert schedule.total_duration() == 300.0

    def test_low_amount_applied(self):
        schedule = InputSchedule.from_combinations(
            ["A"],
            [(0,), (1,)],
            hold_time=50.0,
            high_amount=30.0,
            low_amount=2.0,
        )
        assert schedule.value_at("A", 0.0) == 2.0
        assert schedule.value_at("A", 60.0) == 30.0

    def test_bad_parameters_rejected(self):
        with pytest.raises(ExperimentError):
            InputSchedule.from_combinations(["A"], [(0,)], hold_time=0.0, high_amount=40.0)
        with pytest.raises(ExperimentError):
            InputSchedule.from_combinations(["A"], [(0,)], hold_time=10.0, high_amount=0.0)
        with pytest.raises(ExperimentError):
            InputSchedule.from_combinations(["A"], [(0, 1)], hold_time=10.0, high_amount=40.0)
