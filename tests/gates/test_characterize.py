"""Tests for gate characterisation (response curves)."""

import pytest

from repro.errors import AnalysisError
from repro.gates import characterize_gate, characterize_library, default_library, response_curve
from repro.gates.characterize import GateResponse


class TestGateResponse:
    def test_derived_metrics(self):
        response = GateResponse(
            repressor="PhlF",
            input_levels=[0.0, 5.0, 10.0, 20.0, 40.0],
            output_levels=[40.0, 30.0, 10.0, 2.0, 1.0],
        )
        assert response.on_level == 40.0
        assert response.off_level == 1.0
        assert response.dynamic_range == pytest.approx(40.0)
        assert 5.0 < response.switching_input() < 10.0
        assert response.supports_threshold(15.0)
        assert not response.supports_threshold(45.0)

    def test_infinite_dynamic_range_with_zero_off(self):
        response = GateResponse("X", [0.0, 40.0], [40.0, 0.0])
        assert response.dynamic_range == float("inf")

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            GateResponse("X", [0.0, 1.0], [40.0])

    def test_needs_two_points(self):
        with pytest.raises(AnalysisError):
            GateResponse("X", [0.0], [40.0])


class TestCharacterizeGate:
    def test_default_library_gate_is_usable_at_paper_threshold(self):
        response = characterize_gate("PhlF")
        assert response.on_level > 30.0
        assert response.off_level < 5.0
        assert response.dynamic_range > 10.0
        assert response.supports_threshold(15.0)
        assert "PhlF" in response.summary()

    def test_switching_point_tracks_library_K(self):
        sensitive = characterize_gate("SrpR", library=default_library(K=5.0))
        insensitive = characterize_gate("SrpR", library=default_library(K=20.0))
        assert sensitive.switching_input() < insensitive.switching_input()

    def test_unknown_repressor_rejected(self):
        with pytest.raises(AnalysisError):
            characterize_gate("NotARepressor")

    def test_custom_probe_levels(self):
        response = characterize_gate("BetI", input_levels=[0.0, 10.0, 50.0])
        assert response.input_levels == [0.0, 10.0, 50.0]
        assert len(response.output_levels) == 3


class TestCharacterizeLibrary:
    def test_subset(self):
        responses = characterize_library(repressors=["PhlF", "SrpR"])
        assert set(responses) == {"PhlF", "SrpR"}
        assert all(r.dynamic_range > 10.0 for r in responses.values())


class TestResponseCurve:
    def test_monotone_decreasing_for_repressed_gate(self, toy_model):
        levels = [0.0, 5.0, 10.0, 20.0, 40.0]
        outputs = response_curve(toy_model, "A", "Y", levels)
        assert all(a >= b - 1e-6 for a, b in zip(outputs, outputs[1:]))

    def test_rejects_bad_arguments(self, toy_model):
        with pytest.raises(AnalysisError):
            response_curve(toy_model, "A", "Y", [])
        with pytest.raises(AnalysisError):
            response_curve(toy_model, "A", "Y", [-1.0])
