"""Tests for the regenerated Cello circuits."""

import pytest

from repro.errors import ModelError
from repro.gates import CELLO_CIRCUIT_NAMES, CELLO_INPUT_SPECIES, cello_circuit, cello_suite
from repro.logic import TruthTable
from repro.sbml import validate_model


class TestCelloCircuit:
    def test_0x0b_structure(self, cello_0x0b):
        assert cello_0x0b.name == "cello_0x0b"
        assert cello_0x0b.inputs == CELLO_INPUT_SPECIES
        assert cello_0x0b.output == "YFP"
        assert cello_0x0b.expected_table.to_hex() == "0x0B"

    def test_0x0b_expected_minterms_match_paper_discussion(self, cello_0x0b):
        # High at 011 (highlighted in the paper), low at 100 (the decaying
        # transition the paper's majority filter removes).
        assert cello_0x0b.expected_table.output_for("011") == 1
        assert cello_0x0b.expected_table.output_for("100") == 0

    def test_model_is_valid(self, cello_0x0b):
        assert validate_model(cello_0x0b.model) == []

    def test_all_gates_have_distinct_repressors(self, cello_0x0b):
        repressors = [g.repressor for g in cello_0x0b.netlist.gates]
        assert len(repressors) == len(set(repressors))
        assert all(r is not None for r in repressors)

    def test_custom_inputs(self):
        circuit = cello_circuit("0x04", inputs=["LacI", "TetR", "LuxR"])
        assert circuit.inputs == ["LacI", "TetR", "LuxR"]

    def test_invalid_names_rejected(self):
        with pytest.raises(ModelError):
            cello_circuit("not_hex")
        with pytest.raises(ModelError):
            cello_circuit("0x00")
        with pytest.raises(ModelError):
            cello_circuit("0xFF")


class TestCelloSuite:
    def test_ten_circuits(self):
        assert len(CELLO_CIRCUIT_NAMES) == 10
        suite = cello_suite()
        assert len(suite) == 10

    def test_paper_figure4_circuits_present(self):
        assert {"0x0B", "0x04", "0x1C"} <= set(CELLO_CIRCUIT_NAMES)

    def test_every_circuit_implements_its_name(self):
        for name, circuit in zip(CELLO_CIRCUIT_NAMES, cello_suite()):
            expected = TruthTable.from_hex(name, inputs=circuit.inputs)
            assert circuit.expected_table.outputs == expected.outputs
            assert circuit.netlist.truth_table().outputs == expected.outputs

    def test_all_are_three_input_circuits(self):
        assert all(c.n_inputs == 3 for c in cello_suite())

    def test_all_models_valid(self):
        for circuit in cello_suite():
            assert validate_model(circuit.model) == []
