"""Tests for explicit part assignments and the candidate-space enumeration."""

import pytest

from repro.engine.cache import model_fingerprint
from repro.errors import ModelError
from repro.gates import (
    PartAssignment,
    assignable_gates,
    build_circuit,
    count_assignments,
    default_assignment,
    default_library,
    enumerate_assignments,
)
from repro.gates.parts_library import InputSignal, PartsLibrary, RepressorPart
from repro.gates.synthesis import synthesize_from_hex


@pytest.fixture()
def and_netlist():
    """2-input AND (0x8): two assignable inverters feeding the output NOR."""
    return synthesize_from_hex("0x8", inputs=["LacI", "TetR"])


def _tiny_library(n_repressors):
    """A library with exactly ``n_repressors`` free repressors (plus inputs)."""
    repressors = [
        RepressorPart(name=f"R{i}", promoter=f"pR{i}") for i in range(n_repressors)
    ] + [
        RepressorPart(name="LacI", promoter="pTac"),
        RepressorPart(name="TetR", promoter="pTet"),
    ]
    inputs = [InputSignal(name="LacI"), InputSignal(name="TetR")]
    return PartsLibrary(repressors=repressors, reporters=[], inputs=inputs)


class TestPartAssignment:
    def test_duplicate_gate_rejected(self):
        with pytest.raises(ModelError):
            PartAssignment(repressors=(("g_inv0", "PhlF"), ("g_inv0", "SrpR")))

    def test_duplicate_part_rejected(self):
        """Cello's no-reuse constraint: one repressor drives one gate."""
        with pytest.raises(ModelError):
            PartAssignment(repressors=(("g_inv0", "PhlF"), ("g_inv1", "PhlF")))

    def test_dict_round_trip(self):
        assignment = PartAssignment(
            repressors=(("g_inv0", "PhlF"), ("g_inv1", "SrpR")),
            overrides=(("kd_YFP", 0.2),),
        )
        clone = PartAssignment.from_dict(assignment.to_dict())
        assert clone == assignment

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ModelError):
            PartAssignment.from_dict({"repressors": [], "surprise": 1})

    def test_label_names_parts_and_overrides(self):
        assignment = PartAssignment(
            repressors=(("g_inv0", "PhlF"),),
            overrides=(("kmax", 2.0),),
        )
        label = assignment.label()
        assert "PhlF" in label
        assert "kmax" in label

    def test_index_does_not_affect_equality(self):
        base = PartAssignment(repressors=(("g_inv0", "PhlF"),))
        indexed = PartAssignment(repressors=(("g_inv0", "PhlF"),), index=7)
        assert base == indexed


class TestAssignableGates:
    def test_synthesized_netlist_exposes_inner_gates(self, and_netlist):
        names = assignable_gates(and_netlist)
        assert names == ["g_inv0", "g_inv1"]

    def test_output_gate_is_not_assignable(self, and_netlist):
        output_gate = next(
            gate.name for gate in and_netlist.gates if gate.output == and_netlist.output
        )
        assert output_gate not in assignable_gates(and_netlist)


class TestDefaultAssignment:
    def test_matches_first_enumerated(self, and_netlist):
        default = default_assignment(and_netlist, default_library())
        first = next(enumerate_assignments(and_netlist, default_library()))
        assert default.repressors == first.repressors

    def test_reproduces_legacy_first_fit_model(self, and_netlist):
        """An explicit default assignment builds the same model as the legacy
        stateful allocation path, bit for bit."""
        legacy = build_circuit(synthesize_from_hex("0x8", inputs=["LacI", "TetR"]))
        assignment = default_assignment(and_netlist, default_library())
        explicit = build_circuit(
            synthesize_from_hex("0x8", inputs=["LacI", "TetR"]),
            assignment=assignment,
        )
        assert model_fingerprint(explicit.model) == model_fingerprint(legacy.model)


class TestEnumeration:
    def test_count_matches_stream(self, and_netlist):
        library = default_library()
        variants = [(), (("kd_YFP", 0.2),)]
        stream = list(enumerate_assignments(and_netlist, library, variants=variants))
        assert len(stream) == count_assignments(and_netlist, library, variants=variants)
        # 15 repressors minus the LacI/TetR inputs leaves a pool of 13:
        # P(13, 2) permutations x 2 variants.
        assert len(stream) == 13 * 12 * 2

    def test_indices_are_the_stream_positions(self, and_netlist):
        stream = list(enumerate_assignments(and_netlist, default_library(), limit=10))
        assert [a.index for a in stream] == list(range(10))

    def test_deterministic(self, and_netlist):
        first = list(enumerate_assignments(and_netlist, default_library(), limit=20))
        second = list(enumerate_assignments(and_netlist, default_library(), limit=20))
        assert first == second

    def test_resumable_from_any_start(self, and_netlist):
        library = default_library()
        variants = [(), (("kd_YFP", 0.2),)]
        full = list(enumerate_assignments(and_netlist, library, variants=variants, limit=30))
        for start in (0, 1, 7, 29):
            resumed = list(
                enumerate_assignments(
                    and_netlist,
                    library,
                    variants=variants,
                    start=start,
                    limit=30 - start,
                ),
            )
            assert resumed == full[start:]

    def test_variants_iterate_within_each_permutation(self, and_netlist):
        variants = [(), (("kd_YFP", 0.2),)]
        stream = list(
            enumerate_assignments(and_netlist, default_library(), variants=variants, limit=4),
        )
        assert stream[0].repressors == stream[1].repressors
        assert stream[0].overrides == ()
        assert stream[1].overrides == (("kd_YFP", 0.2),)
        assert stream[2].repressors != stream[0].repressors

    def test_no_part_reuse_within_a_candidate(self, and_netlist):
        for assignment in enumerate_assignments(and_netlist, default_library(), limit=50):
            names = assignment.repressor_names
            assert len(set(names)) == len(names)

    def test_pool_too_small_raises(self, and_netlist):
        with pytest.raises(ModelError):
            next(enumerate_assignments(and_netlist, _tiny_library(1)))

    def test_exact_pool_enumerates_permutations(self, and_netlist):
        stream = list(enumerate_assignments(and_netlist, _tiny_library(2)))
        assert len(stream) == 2  # P(2, 2)

    def test_enumerated_candidates_build_and_differ(self, and_netlist):
        """Every candidate builds a circuit, and distinct permutations yield
        distinct models."""
        fingerprints = set()
        for assignment in enumerate_assignments(and_netlist, default_library(), limit=4):
            circuit = build_circuit(
                synthesize_from_hex("0x8", inputs=["LacI", "TetR"]),
                assignment=assignment,
            )
            fingerprints.add(model_fingerprint(circuit.model))
        assert len(fingerprints) == 4
