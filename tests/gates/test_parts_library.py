"""Tests for the repressor parts library."""

import pytest

from repro.errors import ModelError
from repro.gates import (
    LIBRARY_NAMES,
    InputSignal,
    PartsLibrary,
    RepressorPart,
    default_library,
    diverse_library,
    resolve_library,
)


class TestParts:
    def test_repressor_kinetics_validated(self):
        with pytest.raises(ModelError):
            RepressorPart(name="Bad", promoter="pBad", strength=0.0)
        with pytest.raises(ModelError):
            RepressorPart(name="Bad", promoter="pBad", K=-1.0)

    def test_input_signal_validated(self):
        with pytest.raises(ModelError):
            InputSignal(name="X", low=40.0, high=40.0)
        with pytest.raises(ModelError):
            InputSignal(name="X", K=0.0)


class TestDefaultLibrary:
    def test_contains_cello_and_figure1_repressors(self, library):
        for name in ("PhlF", "SrpR", "BM3R1", "CI", "LacI", "TetR"):
            assert name in library.repressors
        assert library.repressor("PhlF").promoter == "pPhlF"

    def test_contains_reporters_and_inputs(self, library):
        assert "GFP" in library.reporters
        assert "YFP" in library.reporters
        assert "LacI" in library.inputs
        assert "AraC" in library.inputs

    def test_enough_repressors_for_seven_gate_circuits(self, library):
        # The paper's largest circuits have 7 gates; 3 inputs + 1 reporter are
        # excluded from allocation, so at least 11 free repressors are needed.
        assert len(library.repressors) - 4 >= 7

    def test_custom_kinetics(self):
        library = default_library(strength=8.0, K=20.0, n=3.0, degradation=0.2, input_high=60.0)
        part = library.repressor("PhlF")
        assert part.strength == 8.0
        assert part.K == 20.0
        assert library.input_signal("LacI").high == 60.0

    def test_undeclared_input_gets_defaults(self, library):
        signal = library.input_signal("SomethingNew")
        assert signal.high > signal.low


class TestSelection:
    """select_repressor is the pure core the stateful allocator shims over."""

    def test_selection_is_pure(self, library):
        first = library.select_repressor()
        again = library.select_repressor()
        assert first.name == again.name
        # Selection never records anything: allocation still starts fresh.
        assert library.allocate_repressor().name == first.name

    def test_selection_skips_unavailable(self, library):
        names = list(library.repressors)
        part = library.select_repressor(unavailable=names[:3])
        assert part.name == names[3]

    def test_selection_exhaustion_raises(self, library):
        with pytest.raises(ModelError):
            library.select_repressor(unavailable=list(library.repressors))

    def test_allocator_matches_selection_sequence(self):
        """The legacy allocator is first-fit selection with bookkeeping."""
        stateful = default_library()
        pure = default_library()
        taken = []
        for _ in range(4):
            expected = pure.select_repressor(unavailable=taken).name
            assert stateful.allocate_repressor().name == expected
            taken.append(expected)


class TestAllocation:
    def test_allocations_are_unique(self):
        library = default_library()
        first = library.allocate_repressor()
        second = library.allocate_repressor()
        assert first.name != second.name

    def test_exclusions_respected(self):
        library = default_library()
        part = library.allocate_repressor(exclude=["PhlF", "SrpR"])
        assert part.name not in {"PhlF", "SrpR"}

    def test_exhaustion_raises(self):
        library = default_library()
        everything = list(library.repressors)
        with pytest.raises(ModelError):
            library.allocate_repressor(exclude=everything)

    def test_reset_allocation(self):
        library = default_library()
        first = library.allocate_repressor()
        library.reset_allocation()
        assert library.allocate_repressor().name == first.name

    def test_copy_resets_allocation(self):
        library = default_library()
        library.allocate_repressor()
        fresh = library.copy()
        assert fresh.allocate_repressor().name == list(library.repressors)[0]

    def test_copy_never_shares_bookkeeping(self):
        """Allocating from a copy must not consume the parent's pool (and
        vice versa) — each instance owns its allocation state."""
        parent = default_library()
        child = parent.copy()
        child.allocate_repressor()
        child.allocate_repressor()
        # The parent is untouched: it still hands out the very first part.
        assert parent.allocate_repressor().name == list(parent.repressors)[0]
        # And allocations made on the parent afterwards don't leak back.
        grandchild = child.copy()
        assert grandchild.allocate_repressor().name == list(child.repressors)[0]

    def test_with_kinetics_starts_with_empty_allocation(self):
        library = default_library()
        library.allocate_repressor()
        library.allocate_repressor()
        rescaled = library.with_kinetics(K=25.0)
        assert rescaled.allocate_repressor().name == list(library.repressors)[0]

    def test_duplicate_repressors_rejected(self):
        part = RepressorPart(name="X", promoter="pX")
        with pytest.raises(ModelError):
            PartsLibrary([part, part], [], [])


class TestWithKinetics:
    def test_overrides_all_parts(self, library):
        modified = library.with_kinetics(K=25.0, n=1.5)
        assert all(p.K == 25.0 for p in modified.repressors.values())
        assert all(p.n == 1.5 for p in modified.repressors.values())
        assert all(s.K == 25.0 for s in modified.inputs.values())

    def test_unspecified_values_unchanged(self, library):
        modified = library.with_kinetics(degradation=0.5)
        original = library.repressor("PhlF")
        assert modified.repressor("PhlF").strength == original.strength
        assert modified.repressor("PhlF").degradation == 0.5


class TestNamedLibraries:
    def test_diverse_library_has_heterogeneous_kinetics(self):
        """The diverse library exists to make candidates distinguishable:
        parts must not all share one response curve."""
        library = diverse_library()
        assert set(library.repressors) == set(default_library().repressors)
        kinetics = {(p.strength, p.K, p.n) for p in library.repressors.values()}
        assert len(kinetics) > 1

    def test_resolve_library_by_name(self):
        assert set(LIBRARY_NAMES) >= {"default", "diverse"}
        for name in LIBRARY_NAMES:
            library = resolve_library(name)
            assert library.repressors
        assert resolve_library("diverse").repressor("PhlF") == diverse_library().repressor(
            "PhlF",
        )

    def test_resolve_library_unknown_name(self):
        with pytest.raises(ModelError):
            resolve_library("exotic")

    def test_resolve_library_is_case_insensitive(self):
        assert set(resolve_library("DIVERSE").repressors) == set(
            diverse_library().repressors,
        )
