"""Tests for netlist → SBOL → SBML composition."""

import pytest

from repro.errors import ModelError
from repro.gates import (
    GateType,
    Netlist,
    assign_proteins,
    default_library,
    netlist_to_model,
    netlist_to_sbol,
)
from repro.sbml import validate_model
from repro.sbol import Role
from repro.stochastic import InputSchedule, simulate_ode


@pytest.fixture()
def nor_netlist():
    netlist = Netlist("nor2", inputs=["LacI", "TetR"], output="y")
    netlist.add_gate("g", GateType.NOR, ["LacI", "TetR"], "y")
    return netlist


@pytest.fixture()
def cascade_netlist():
    netlist = Netlist("cascade", inputs=["LacI", "TetR"], output="y")
    netlist.add_gate("stage1", GateType.NAND, ["LacI", "TetR"], "w")
    netlist.add_gate("stage2", GateType.NOT, ["w"], "y")
    return netlist


class TestAssignProteins:
    def test_inputs_map_to_themselves(self, cascade_netlist):
        mapping = assign_proteins(cascade_netlist, output_protein="GFP")
        assert mapping["LacI"] == "LacI"
        assert mapping["TetR"] == "TetR"

    def test_output_maps_to_reporter(self, cascade_netlist):
        mapping = assign_proteins(cascade_netlist, output_protein="GFP")
        assert mapping["y"] == "GFP"

    def test_internal_nets_get_distinct_repressors(self):
        netlist = Netlist("two_internal", inputs=["LacI"], output="y")
        netlist.add_gate("g1", GateType.NOT, ["LacI"], "w1")
        netlist.add_gate("g2", GateType.NOT, ["w1"], "w2")
        netlist.add_gate("g3", GateType.NOT, ["w2"], "y")
        mapping = assign_proteins(netlist)
        internal = {mapping["w1"], mapping["w2"]}
        assert len(internal) == 2
        assert "LacI" not in internal
        assert "GFP" not in internal

    def test_preassigned_repressor_respected(self, cascade_netlist):
        cascade_netlist.gates[0].repressor = "CI"
        mapping = assign_proteins(cascade_netlist)
        assert mapping["w"] == "CI"

    def test_unknown_preassigned_repressor_rejected(self, cascade_netlist):
        cascade_netlist.gates[0].repressor = "NotARepressor"
        with pytest.raises(ModelError):
            assign_proteins(cascade_netlist)


class TestNetlistToSBOL:
    def test_document_structure(self, cascade_netlist):
        document, mapping = netlist_to_sbol(cascade_netlist)
        assert document.validate() == []
        # NAND stage -> 2 units, NOT stage -> 1 unit.
        assert len(document.units) == 3
        assert set(document.input_species()) == {"LacI", "TetR"}
        assert "GFP" in document.produced_species()

    def test_nor_gate_single_promoter_with_two_repressions(self, nor_netlist):
        document, _ = netlist_to_sbol(nor_netlist)
        promoters = document.components_with_role(Role.PROMOTER)
        assert len(promoters) == 1
        assert set(document.repressors_of(promoters[0].display_id)) == {"LacI", "TetR"}

    def test_component_count_matches_netlist_estimate(self, cascade_netlist):
        document, _ = netlist_to_sbol(cascade_netlist)
        assert document.genetic_component_count() == cascade_netlist.component_count()


class TestNetlistToModel:
    def test_model_is_valid(self, cascade_netlist):
        model, document, mapping = netlist_to_model(cascade_netlist)
        assert validate_model(model) == []
        assert model.boundary_species() == ["LacI", "TetR"]

    def test_and_behaviour_of_cascade(self, cascade_netlist):
        model, _, mapping = netlist_to_model(cascade_netlist)
        output = mapping["y"]
        def settled(a, b):
            schedule = InputSchedule().add(0.0, {"LacI": a, "TetR": b})
            return simulate_ode(model, 150.0, schedule=schedule).value_at(output, 149.0)
        assert settled(40, 40) > 25.0
        assert settled(0, 0) < 10.0
        assert settled(40, 0) < 10.0

    def test_custom_library_kinetics_flow_through(self, nor_netlist):
        library = default_library(strength=8.0, degradation=0.2)
        model, _, mapping = netlist_to_model(nor_netlist, library=library)
        kmax_values = [p.value for p in model.parameters.values() if p.sid.endswith("_kmax")]
        assert all(v == pytest.approx(8.0) for v in kmax_values)

    def test_model_id_is_valid_sid(self):
        netlist = Netlist("with-dash", inputs=["LacI"], output="y")
        netlist.add_gate("g", GateType.NOT, ["LacI"], "y")
        model, _, _ = netlist_to_model(netlist)
        assert "-" not in model.sid
