"""Tests for the named circuits (Myers suite) and circuit assembly."""

import pytest

from repro.gates import (
    GateType,
    Netlist,
    and_gate_circuit,
    build_circuit,
    myers_suite,
    nand_gate_circuit,
    nor_gate_circuit,
    not_gate_circuit,
    or_gate_circuit,
    standard_suite,
)
from repro.logic import identify_gate
from repro.sbml import validate_model


class TestFigure1AndGate:
    def test_structure(self, and_circuit):
        assert and_circuit.inputs == ["LacI", "TetR"]
        assert and_circuit.output == "GFP"
        assert and_circuit.n_gates == 2
        assert and_circuit.n_components == 9

    def test_intermediate_repressor_is_ci(self, and_circuit):
        assert and_circuit.netlist.gates[0].repressor == "CI"
        assert "CI" in and_circuit.model.species

    def test_expected_logic(self, and_circuit):
        assert identify_gate(and_circuit.expected_table) == "AND"
        assert and_circuit.expected_expression().to_string() == "LacI & TetR"

    def test_model_valid(self, and_circuit):
        assert validate_model(and_circuit.model) == []

    def test_summary_mentions_key_facts(self, and_circuit):
        text = and_circuit.summary()
        assert "and_gate" in text
        assert "2-input" in text

    def test_input_levels_from_library(self, and_circuit):
        levels = and_circuit.input_levels()
        assert levels["LacI"]["high"] > levels["LacI"]["low"]


class TestMyersSuite:
    def test_five_circuits(self):
        suite = myers_suite()
        assert len(suite) == 5
        assert {c.name for c in suite} == {
            "not_gate",
            "and_gate",
            "or_gate",
            "nand_gate",
            "nor_gate",
        }

    @pytest.mark.parametrize(
        "builder, gate_name",
        [
            (not_gate_circuit, "NOT"),
            (and_gate_circuit, "AND"),
            (or_gate_circuit, "OR"),
            (nand_gate_circuit, "NAND"),
            (nor_gate_circuit, "NOR"),
        ],
    )
    def test_expected_behaviour(self, builder, gate_name):
        circuit = builder()
        assert identify_gate(circuit.expected_table) == gate_name

    @pytest.mark.parametrize(
        "builder",
        [not_gate_circuit, and_gate_circuit, or_gate_circuit, nand_gate_circuit, nor_gate_circuit],
    )
    def test_models_are_valid(self, builder):
        assert validate_model(builder().model) == []

    def test_gate_and_component_counts_in_paper_range(self):
        for circuit in myers_suite():
            assert 1 <= circuit.n_gates <= 7
            assert 3 <= circuit.n_components <= 26


class TestStandardSuite:
    def test_fifteen_circuits(self):
        suite = standard_suite()
        assert len(suite) == 15

    def test_input_range_matches_paper(self):
        suite = standard_suite()
        assert {c.n_inputs for c in suite} <= {1, 2, 3}
        assert min(c.n_inputs for c in suite) == 1
        assert max(c.n_inputs for c in suite) == 3

    def test_gate_range_matches_paper(self):
        suite = standard_suite()
        assert min(c.n_gates for c in suite) >= 1
        assert max(c.n_gates for c in suite) <= 9

    def test_names_are_unique(self):
        names = [c.name for c in standard_suite()]
        assert len(names) == len(set(names))


class TestBuildCircuit:
    def test_custom_netlist(self):
        netlist = Netlist("custom", inputs=["LacI", "AraC"], output="out")
        netlist.add_gate("g1", GateType.NOR, ["LacI", "AraC"], "mid")
        netlist.add_gate("g2", GateType.NOT, ["mid"], "out")
        circuit = build_circuit(netlist, output_protein="RFP")
        assert circuit.output == "RFP"
        assert circuit.inputs == ["LacI", "AraC"]
        assert identify_gate(circuit.expected_table) == "OR"
        assert validate_model(circuit.model) == []

    def test_expected_table_uses_protein_names(self):
        netlist = Netlist("named", inputs=["LacI"], output="out")
        netlist.add_gate("g", GateType.NOT, ["LacI"], "out")
        circuit = build_circuit(netlist)
        assert circuit.expected_table.inputs == ["LacI"]
