"""Tests for gate templates and netlists."""

import pytest

from repro.errors import NetlistError
from repro.gates import GateInstance, GateType, Netlist, gate_definition
from repro.logic import identify_gate


class TestGateDefinitions:
    def test_not(self):
        definition = gate_definition("NOT")
        assert definition.evaluate([0]) == 1
        assert definition.evaluate([1]) == 0

    def test_nor(self):
        definition = gate_definition("nor")
        assert definition.evaluate([0, 0]) == 1
        assert definition.evaluate([0, 1]) == 0
        assert definition.evaluate([1, 1, 0]) == 0
        assert definition.evaluate([0, 0, 0]) == 1

    def test_nand(self):
        definition = gate_definition("NAND")
        assert definition.evaluate([1, 1]) == 0
        assert definition.evaluate([1, 0]) == 1

    def test_fan_in_limits(self):
        with pytest.raises(NetlistError):
            gate_definition("NOT").evaluate([0, 1])
        with pytest.raises(NetlistError):
            gate_definition("NOR").evaluate([0] * 5)

    def test_unknown_type(self):
        with pytest.raises(NetlistError):
            gate_definition("XOR")

    def test_component_counts(self):
        assert gate_definition("NOT").component_count(1) == 3
        assert gate_definition("NOR").component_count(2) == 3
        assert gate_definition("NAND").component_count(2) == 6

    def test_truth_table(self):
        table = gate_definition("NOR").truth_table(["A", "B"])
        assert identify_gate(table) == "NOR"


class TestGateInstance:
    def test_self_loop_rejected(self):
        with pytest.raises(NetlistError):
            GateInstance("g", GateType.NOT, ("x",), "x")

    def test_missing_input_value_rejected(self):
        gate = GateInstance("g", GateType.NOR, ("a", "b"), "y")
        with pytest.raises(NetlistError):
            gate.evaluate({"a": 1})

    def test_evaluate(self):
        gate = GateInstance("g", GateType.NAND, ("a", "b"), "y")
        assert gate.evaluate({"a": 1, "b": 1}) == 0
        assert gate.evaluate({"a": 1, "b": 0}) == 1


class TestNetlistValidation:
    def test_requires_inputs(self):
        with pytest.raises(NetlistError):
            Netlist("empty", inputs=[], output="y")

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("dup", inputs=["a", "a"], output="y")

    def test_duplicate_gate_names_rejected(self):
        netlist = Netlist("n", inputs=["a"], output="y")
        netlist.add_gate("g", GateType.NOT, ["a"], "y")
        with pytest.raises(NetlistError):
            netlist.add_gate("g", GateType.NOT, ["a"], "z")

    def test_multiple_drivers_rejected(self):
        netlist = Netlist("n", inputs=["a", "b"], output="y")
        netlist.add_gate("g1", GateType.NOT, ["a"], "y")
        with pytest.raises(NetlistError):
            netlist.add_gate("g2", GateType.NOT, ["b"], "y")

    def test_driving_primary_input_rejected(self):
        netlist = Netlist("n", inputs=["a", "b"], output="y")
        with pytest.raises(NetlistError):
            netlist.add_gate("g", GateType.NOT, ["a"], "b")

    def test_undriven_gate_input_rejected(self):
        netlist = Netlist("n", inputs=["a"], output="y")
        with pytest.raises(NetlistError):
            netlist.add_gate("g", GateType.NOR, ["a", "ghost"], "y")

    def test_combinational_loop_rejected(self):
        # Incremental add_gate cannot create a loop (an undriven input is
        # rejected first), so build the cyclic pair directly.
        gates = [
            GateInstance("g1", GateType.NOR, ("a", "w2"), "w1"),
            GateInstance("g2", GateType.NOT, ("w1",), "w2"),
        ]
        with pytest.raises(NetlistError):
            Netlist("loop", inputs=["a"], output="w2", gates=gates)

    def test_failed_add_gate_rolls_back(self):
        netlist = Netlist("n", inputs=["a"], output="y")
        with pytest.raises(NetlistError):
            netlist.add_gate("g", GateType.NOR, ["a", "ghost"], "y")
        assert netlist.n_gates == 0

    def test_check_complete(self):
        netlist = Netlist("n", inputs=["a"], output="y")
        with pytest.raises(NetlistError):
            netlist.check_complete()
        netlist.add_gate("g", GateType.NOT, ["a"], "w")
        with pytest.raises(NetlistError):
            netlist.check_complete()
        netlist.add_gate("g2", GateType.NOT, ["w"], "y")
        netlist.check_complete()


class TestNetlistBehaviour:
    @pytest.fixture()
    def and_netlist(self):
        netlist = Netlist("and", inputs=["A", "B"], output="y")
        netlist.add_gate("nand", GateType.NAND, ["A", "B"], "w")
        netlist.add_gate("inv", GateType.NOT, ["w"], "y")
        return netlist

    def test_evaluate_all_nets(self, and_netlist):
        values = and_netlist.evaluate({"A": 1, "B": 1})
        assert values == {"A": 1, "B": 1, "w": 0, "y": 1}

    def test_missing_assignment_rejected(self, and_netlist):
        with pytest.raises(NetlistError):
            and_netlist.evaluate({"A": 1})

    def test_truth_table_of_output(self, and_netlist):
        assert identify_gate(and_netlist.truth_table()) == "AND"

    def test_truth_table_of_internal_net(self, and_netlist):
        assert identify_gate(and_netlist.truth_table("w")) == "NAND"

    def test_truth_table_of_unknown_net_rejected(self, and_netlist):
        with pytest.raises(NetlistError):
            and_netlist.truth_table("nope")

    def test_output_value(self, and_netlist):
        assert and_netlist.output_value({"A": 1, "B": 0}) == 0

    def test_expected_expression(self, and_netlist):
        assert and_netlist.expected_expression().to_string() == "A & B"

    def test_topological_order(self, and_netlist):
        order = [g.name for g in and_netlist.topological_order()]
        assert order.index("nand") < order.index("inv")

    def test_logic_depth(self, and_netlist):
        assert and_netlist.logic_depth() == 2

    def test_counts(self, and_netlist):
        assert and_netlist.n_gates == 2
        assert and_netlist.component_count() == 6 + 3
        assert and_netlist.internal_nets() == ["w"]

    def test_gate_driving(self, and_netlist):
        assert and_netlist.gate_driving("y").name == "inv"
        assert and_netlist.gate_driving("A") is None

    def test_describe_mentions_every_gate(self, and_netlist):
        text = and_netlist.describe()
        assert "nand" in text and "inv" in text

    def test_repressor_assignment_mapping(self, and_netlist):
        and_netlist.gates[0].repressor = "CI"
        assert and_netlist.repressor_assignment() == {"nand": "CI"}
