"""Tests for truth-table → NOT/NOR netlist synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.gates import synthesize, synthesize_from_expression, synthesize_from_hex
from repro.logic import TruthTable, identify_gate


class TestBasicSynthesis:
    def test_not_gate(self):
        netlist = synthesize(TruthTable.from_expression("~A"))
        assert netlist.truth_table().outputs == [1, 0]
        assert netlist.n_gates == 1

    def test_buffer(self):
        netlist = synthesize(TruthTable.from_expression("A", inputs=["A"]))
        assert netlist.truth_table().outputs == [0, 1]
        assert netlist.n_gates == 2  # two inverters

    def test_and_gate(self):
        netlist = synthesize(TruthTable.from_expression("A & B"))
        assert identify_gate(netlist.truth_table()) == "AND"

    def test_or_gate(self):
        netlist = synthesize(TruthTable.from_expression("A | B"))
        assert identify_gate(netlist.truth_table()) == "OR"

    def test_xor_gate(self):
        netlist = synthesize(TruthTable.from_expression("A ^ B"))
        assert identify_gate(netlist.truth_table()) == "XOR"

    def test_only_not_and_nor_gates_used(self):
        netlist = synthesize(TruthTable.from_hex("0x96", n_inputs=3))
        assert {g.gate_type for g in netlist.gates} <= {"NOT", "NOR"}

    def test_constants_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize(TruthTable(["A", "B"], [0, 0, 0, 0]))
        with pytest.raises(SynthesisError):
            synthesize(TruthTable(["A", "B"], [1, 1, 1, 1]))

    def test_bad_fanin_rejected(self):
        with pytest.raises(SynthesisError):
            synthesize(TruthTable.from_expression("A & B"), max_fanin=1)


class TestPaperCircuits:
    @pytest.mark.parametrize("name", ["0x0B", "0x04", "0x1C"])
    def test_figure4_circuits(self, name):
        netlist = synthesize_from_hex(name, inputs=["LacI", "TetR", "AraC"])
        assert netlist.truth_table().to_hex() == name
        assert netlist.inputs == ["LacI", "TetR", "AraC"]

    def test_gate_counts_in_paper_range(self):
        """The paper's circuits contain 1-7 gates; synthesis should stay in range."""
        for value in ("0x0B", "0x04", "0x1C", "0x8E", "0x70"):
            netlist = synthesize_from_hex(value)
            assert 1 <= netlist.n_gates <= 9

    def test_component_counts_in_paper_range(self):
        for value in ("0x0B", "0x04", "0x1C"):
            netlist = synthesize_from_hex(value)
            assert 3 <= netlist.component_count() <= 30


class TestSynthesisOptions:
    def test_custom_output_net(self):
        netlist = synthesize(TruthTable.from_expression("A & B"), output="reporter")
        assert netlist.output == "reporter"

    def test_custom_name(self):
        netlist = synthesize(TruthTable.from_expression("A & B"), name="my_circuit")
        assert netlist.name == "my_circuit"

    def test_fanin_cap_respected(self):
        # A 4-input OR forces a tree when fan-in is capped at 2.
        table = TruthTable.from_expression("A | B | C | D")
        netlist = synthesize(table, max_fanin=2)
        assert all(len(g.inputs) <= 2 for g in netlist.gates)
        assert netlist.truth_table().outputs == table.outputs

    def test_from_expression(self):
        netlist = synthesize_from_expression("~LacI & AraC")
        assert netlist.inputs == ["LacI", "AraC"]
        assert netlist.truth_table().minterms() == [1]

    def test_from_hex_default_name(self):
        netlist = synthesize_from_hex("0x16")
        assert "0x16" in netlist.name


@given(st.integers(min_value=1, max_value=2**8 - 2))
@settings(max_examples=120, deadline=None)
def test_synthesis_implements_specification_3_inputs(value):
    """Every non-constant 3-input function synthesizes to an equivalent netlist."""
    table = TruthTable.from_hex(value, n_inputs=3)
    netlist = synthesize(table)
    assert netlist.truth_table().outputs == table.outputs


@given(st.integers(min_value=1, max_value=2**4 - 2))
@settings(max_examples=30, deadline=None)
def test_synthesis_implements_specification_2_inputs(value):
    table = TruthTable.from_hex(value, n_inputs=2)
    netlist = synthesize(table)
    assert netlist.truth_table().outputs == table.outputs
