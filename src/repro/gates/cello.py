"""The ten Cello circuits of the paper's evaluation (Nielsen et al. 2016).

The paper analyzes ten "real genetic circuits acquired from [11]" — designs
produced by Cello, named after the hexadecimal encoding of their 3-input
truth tables (the paper shows ``0x0B``, ``0x04`` and ``0x1C`` in detail).
The authors' SBML files are not redistributed, so this module *regenerates*
behaviourally equivalent circuits from their names:

1. the truth table is decoded from the hexadecimal name
   (:meth:`repro.logic.truthtable.TruthTable.from_hex`),
2. a NOT/NOR netlist implementing it is synthesized
   (:func:`repro.gates.synthesis.synthesize_from_hex`),
3. repressors are allocated and the SBML model composed
   (:func:`repro.gates.circuits.build_circuit`).

The bit-order convention (bit *i*, LSB first, is the output for input
combination index *i*, first input = MSB of the index) is chosen so that
circuit ``0x0B`` is high for input combination ``011`` — matching the paper's
Figure 4 discussion — and is documented in the README.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import ModelError
from .circuits import GeneticCircuit, build_circuit
from .parts_library import PartsLibrary, default_library
from .synthesis import synthesize_from_hex

__all__ = [
    "CELLO_INPUT_SPECIES",
    "CELLO_CIRCUIT_NAMES",
    "cello_circuit",
    "cello_suite",
]

#: Input proteins used by every regenerated Cello circuit, in MSB→LSB order
#: of the combination index (the paper's input sensors respond to IPTG, aTc
#: and arabinose, carried by LacI, TetR and AraC).
CELLO_INPUT_SPECIES: List[str] = ["LacI", "TetR", "AraC"]

#: The ten circuit names of the paper's evaluation set.  ``0x0B``, ``0x04``
#: and ``0x1C`` are shown in the paper's Figure 4; the remaining seven are
#: representative 3-input functions from the Nielsen et al. circuit family.
CELLO_CIRCUIT_NAMES: List[str] = [
    "0x0B",
    "0x04",
    "0x1C",
    "0x8E",
    "0x70",
    "0xC8",
    "0x41",
    "0xB1",
    "0x5C",
    "0x3B",
]


def cello_circuit(
    name: str,
    library: Optional[PartsLibrary] = None,
    inputs: Optional[Sequence[str]] = None,
    output_protein: str = "YFP",
    assignment=None,
) -> GeneticCircuit:
    """Regenerate one Cello circuit from its hexadecimal truth-table name.

    Parameters
    ----------
    name:
        Hexadecimal circuit name, e.g. ``"0x0B"``.
    library:
        Parts library to draw repressors from (a fresh default library if
        omitted).
    inputs:
        Input protein names (defaults to :data:`CELLO_INPUT_SPECIES`).
    output_protein:
        Reporter carried by the circuit output (Cello circuits use YFP).
    assignment:
        Explicit :class:`~repro.gates.assignment.PartAssignment` choosing the
        repressor per synthesized gate (default: legacy first-fit).  Gate
        names are stable across re-synthesis of the same function, so
        assignments enumerated once apply to every rebuild.
    """
    inputs = list(inputs or CELLO_INPUT_SPECIES)
    try:
        value = int(name, 16)
    except (TypeError, ValueError):
        raise ModelError(f"{name!r} is not a valid hexadecimal circuit name") from None
    if value <= 0 or value >= 2 ** (2 ** len(inputs)) - 1:
        raise ModelError(
            f"circuit {name!r} is a constant function and has no gate implementation",
        )
    netlist = synthesize_from_hex(
        name,
        inputs=inputs,
        name=f"cello_{name.lower().replace('0x', '0x')}",
    )
    # Netlist names must be stable and readable: cello_0x0b etc.
    netlist.name = f"cello_{name.lower()}"
    circuit = build_circuit(
        netlist,
        library=(library or default_library()).copy(),
        output_protein=output_protein,
        description=f"Cello circuit {name}: regenerated from its truth-table name.",
        assignment=assignment,
    )
    circuit.name = f"cello_{name.lower()}"
    return circuit


def cello_suite(library: Optional[PartsLibrary] = None) -> List[GeneticCircuit]:
    """All ten Cello circuits of the evaluation set."""
    base = library or default_library()
    return [cello_circuit(name, library=base.copy()) for name in CELLO_CIRCUIT_NAMES]
