"""Genetic gate library: parts, netlists, synthesis, composition, named circuits."""

from .characterize import (
    GateResponse,
    characterize_gate,
    characterize_library,
    response_curve,
)
from .assignment import (
    PartAssignment,
    assignable_gates,
    count_assignments,
    default_assignment,
    enumerate_assignments,
)
from .cello import CELLO_CIRCUIT_NAMES, CELLO_INPUT_SPECIES, cello_circuit, cello_suite
from .circuits import (
    GeneticCircuit,
    and_gate_circuit,
    build_circuit,
    myers_suite,
    nand_gate_circuit,
    nor_gate_circuit,
    not_gate_circuit,
    or_gate_circuit,
    resolve_circuit,
    standard_suite,
)
from .compose import assign_proteins, netlist_to_model, netlist_to_sbol
from .gate import GATE_TYPES, GateDefinition, GateType, gate_definition
from .netlist import GateInstance, Netlist
from .parts_library import (
    LIBRARY_NAMES,
    InputSignal,
    PartsLibrary,
    ReporterPart,
    RepressorPart,
    default_library,
    diverse_library,
    resolve_library,
)
from .synthesis import synthesize, synthesize_from_expression, synthesize_from_hex

__all__ = [
    "GateType",
    "GateDefinition",
    "GATE_TYPES",
    "gate_definition",
    "GateInstance",
    "Netlist",
    "RepressorPart",
    "ReporterPart",
    "InputSignal",
    "PartsLibrary",
    "default_library",
    "diverse_library",
    "resolve_library",
    "LIBRARY_NAMES",
    "PartAssignment",
    "assignable_gates",
    "default_assignment",
    "enumerate_assignments",
    "count_assignments",
    "synthesize",
    "synthesize_from_hex",
    "synthesize_from_expression",
    "assign_proteins",
    "netlist_to_sbol",
    "netlist_to_model",
    "GeneticCircuit",
    "build_circuit",
    "resolve_circuit",
    "not_gate_circuit",
    "and_gate_circuit",
    "or_gate_circuit",
    "nand_gate_circuit",
    "nor_gate_circuit",
    "myers_suite",
    "standard_suite",
    "CELLO_CIRCUIT_NAMES",
    "CELLO_INPUT_SPECIES",
    "cello_circuit",
    "cello_suite",
    "GateResponse",
    "characterize_gate",
    "characterize_library",
    "response_curve",
]
