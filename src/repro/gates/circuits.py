"""Named genetic circuits used throughout the paper's evaluation.

Two families are provided:

* the five textbook circuits from Myers, *Engineering Genetic Circuits*
  (the paper's reference [12]): NOT, AND, OR, NAND and NOR gates built from
  repressor parts — including the 2-input genetic AND gate of the paper's
  Figure 1 (LacI/TetR → CI → GFP),
* the ten Cello circuits from Nielsen et al. (reference [11]), regenerated
  from their truth-table names by :mod:`repro.gates.cello`.

Each circuit is packaged as a :class:`GeneticCircuit`: the netlist, the SBOL
design, the SBML model, the input/output species and the *expected* truth
table, i.e. everything the virtual laboratory and the logic analyzer need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..logic.truthtable import TruthTable
from ..sbml.model import Model
from ..sbol.document import SBOLDocument
from .compose import netlist_to_model
from .gate import GateType
from .netlist import Netlist
from .parts_library import PartsLibrary, default_library

__all__ = [
    "GeneticCircuit",
    "build_circuit",
    "resolve_circuit",
    "not_gate_circuit",
    "and_gate_circuit",
    "or_gate_circuit",
    "nand_gate_circuit",
    "nor_gate_circuit",
    "myers_suite",
    "standard_suite",
]


@dataclass
class GeneticCircuit:
    """A fully assembled genetic logic circuit ready for simulation."""

    name: str
    netlist: Netlist
    model: Model
    document: SBOLDocument
    inputs: List[str]
    output: str
    expected_table: TruthTable
    library: PartsLibrary
    description: str = ""

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_gates(self) -> int:
        return self.netlist.n_gates

    @property
    def n_components(self) -> int:
        return self.netlist.component_count()

    def expected_expression(self):
        """Minimized Boolean expression of the intended behaviour."""
        return self.expected_table.to_minimized_expression()

    def input_levels(self) -> Dict[str, Dict[str, float]]:
        """Low/high clamp levels for each input species (from the library)."""
        levels = {}
        for name in self.inputs:
            signal = self.library.input_signal(name)
            levels[name] = {"low": signal.low, "high": signal.high}
        return levels

    def summary(self) -> str:
        """One-line description used by reports and the CLI."""
        return (
            f"{self.name}: {self.n_inputs}-input, {self.n_gates} gate(s), "
            f"{self.n_components} genetic components, expected "
            f"{self.expected_table.to_hex()} ({self.expected_expression().to_string()})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GeneticCircuit({self.name!r})"


def build_circuit(
    netlist: Netlist,
    library: Optional[PartsLibrary] = None,
    output_protein: str = "GFP",
    description: str = "",
    assignment=None,
) -> GeneticCircuit:
    """Assemble a :class:`GeneticCircuit` from a netlist.

    The circuit's input species are the netlist's primary input nets (which
    must therefore be named after input proteins, e.g. ``LacI``).  Pass an
    explicit :class:`~repro.gates.assignment.PartAssignment` to select which
    repressor carries which gate (the default is the legacy first-fit
    choice); the assignment's parameter ``overrides`` are *not* baked into
    the model — apply them at simulation time as job overrides, so variants
    of one permutation share a compiled model.
    """
    library = library or default_library()
    expected = netlist.truth_table()
    model, document, net_protein = netlist_to_model(
        netlist,
        library=library,
        output_protein=output_protein,
        assignment=assignment,
    )
    inputs = [net_protein[net] for net in netlist.inputs]
    output = net_protein[netlist.output]
    expected = expected.rename_inputs(inputs)
    return GeneticCircuit(
        name=netlist.name,
        netlist=netlist,
        model=model,
        document=document,
        inputs=inputs,
        output=output,
        expected_table=expected,
        library=library,
        description=description,
    )


# ---------------------------------------------------------------------------
# The Myers-book circuits (paper reference [12])
# ---------------------------------------------------------------------------


def not_gate_circuit(library: Optional[PartsLibrary] = None) -> GeneticCircuit:
    """A 1-input genetic NOT gate (inverter): GFP is produced unless LacI is present."""
    netlist = Netlist("not_gate", inputs=["LacI"], output="y")
    netlist.add_gate("g_not", GateType.NOT, ["LacI"], "y")
    return build_circuit(
        netlist,
        library=library,
        description="1-input inverter: a single promoter repressed by LacI drives GFP.",
    )


def and_gate_circuit(library: Optional[PartsLibrary] = None) -> GeneticCircuit:
    """The 2-input genetic AND gate of the paper's Figure 1.

    Promoters P1 and P2, repressed by LacI and TetR respectively, both produce
    the repressor CI (a NAND stage); promoter P3, repressed by CI, produces
    GFP (an inverter).  GFP is therefore high only when both LacI and TetR
    are present.
    """
    netlist = Netlist("and_gate", inputs=["LacI", "TetR"], output="y")
    netlist.add_gate("g_nand", GateType.NAND, ["LacI", "TetR"], "ci", repressor="CI")
    netlist.add_gate("g_inv", GateType.NOT, ["ci"], "y")
    return build_circuit(
        netlist,
        library=library,
        description=(
            "Figure-1 AND gate: LacI and TetR repress the two promoters producing CI; "
            "CI represses the promoter producing GFP."
        ),
    )


def nand_gate_circuit(library: Optional[PartsLibrary] = None) -> GeneticCircuit:
    """A 2-input genetic NAND gate (the first stage of the Figure-1 AND gate)."""
    netlist = Netlist("nand_gate", inputs=["LacI", "TetR"], output="y")
    netlist.add_gate("g_nand", GateType.NAND, ["LacI", "TetR"], "y")
    return build_circuit(
        netlist,
        library=library,
        description="2-input NAND: two repressed promoters in parallel drive the reporter.",
    )


def nor_gate_circuit(library: Optional[PartsLibrary] = None) -> GeneticCircuit:
    """A 2-input genetic NOR gate: one promoter repressed by both inputs."""
    netlist = Netlist("nor_gate", inputs=["LacI", "TetR"], output="y")
    netlist.add_gate("g_nor", GateType.NOR, ["LacI", "TetR"], "y")
    return build_circuit(
        netlist,
        library=library,
        description="2-input NOR: a single promoter carrying operators for both inputs.",
    )


def or_gate_circuit(library: Optional[PartsLibrary] = None) -> GeneticCircuit:
    """A 2-input genetic OR gate: a NOR stage followed by an inverter."""
    netlist = Netlist("or_gate", inputs=["LacI", "TetR"], output="y")
    netlist.add_gate("g_nor", GateType.NOR, ["LacI", "TetR"], "w")
    netlist.add_gate("g_inv", GateType.NOT, ["w"], "y")
    return build_circuit(
        netlist,
        library=library,
        description="2-input OR built as NOT(NOR(LacI, TetR)).",
    )


def myers_suite(library: Optional[PartsLibrary] = None) -> List[GeneticCircuit]:
    """The five textbook circuits (paper reference [12])."""
    builders = [
        not_gate_circuit,
        and_gate_circuit,
        or_gate_circuit,
        nand_gate_circuit,
        nor_gate_circuit,
    ]
    return [builder((library or default_library()).copy()) for builder in builders]


def standard_suite(library: Optional[PartsLibrary] = None) -> List[GeneticCircuit]:
    """The paper's 15-circuit evaluation suite: 5 textbook + 10 Cello circuits."""
    from .cello import cello_suite

    base = library or default_library()
    return myers_suite(base) + cello_suite(base)


#: Builders of the five named textbook circuits, by canonical lowercase name.
_NAMED_CIRCUIT_BUILDERS = {
    "not": not_gate_circuit,
    "and": and_gate_circuit,
    "or": or_gate_circuit,
    "nand": nand_gate_circuit,
    "nor": nor_gate_circuit,
}


def resolve_circuit(name: str) -> GeneticCircuit:
    """Look up a built-in circuit by name (``"and"``, ``"0x0B"``, ``"cello_0x0b"``...).

    The one canonical name-to-circuit mapping, shared by the CLI, by
    :meth:`repro.StudySpec.resolve_circuit` and by the HTTP service — all
    three accept exactly the same names.  Textbook gates resolve through
    their lowercase names; anything starting with ``0x`` (optionally prefixed
    ``cello_``) resolves through :func:`repro.gates.cello.cello_circuit`.
    """
    from ..errors import ReproError

    key = str(name).lower()
    if key in _NAMED_CIRCUIT_BUILDERS:
        return _NAMED_CIRCUIT_BUILDERS[key]()
    if key.startswith("cello_"):
        key = key[len("cello_") :]
    if key.startswith("0x"):
        from .cello import cello_circuit

        return cello_circuit(key)
    raise ReproError(
        f"unknown circuit {name!r}; use one of {sorted(_NAMED_CIRCUIT_BUILDERS)} or a "
        "hex truth-table name such as 0x0B",
    )
