"""Steady-state characterisation of genetic gates (Cello-style response curves).

Cello chooses repressors by their measured response functions; a designer
using this library may want the equivalent numbers for the regenerated gates:
the input→output transfer curve of a gate at steady state, its ON/OFF output
levels and dynamic range, and the input level at which it switches.  The
virtual-laboratory threshold analysis (:mod:`repro.vlab.threshold`) answers
"where do I put the digital threshold for this circuit"; this module answers
"how good is this gate", which feeds the robustness discussion of the paper's
conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..sbml.model import Model
from ..stochastic.events import InputSchedule
from ..stochastic.ode import simulate_ode
from .circuits import GeneticCircuit, build_circuit
from .gate import GateType
from .netlist import Netlist
from .parts_library import PartsLibrary, default_library

__all__ = ["GateResponse", "response_curve", "characterize_gate", "characterize_library"]


@dataclass
class GateResponse:
    """Steady-state transfer curve of a single gate."""

    repressor: str
    input_levels: List[float]
    output_levels: List[float]

    def __post_init__(self) -> None:
        if len(self.input_levels) != len(self.output_levels):
            raise AnalysisError("input and output level lists must have the same length")
        if len(self.input_levels) < 2:
            raise AnalysisError("a response curve needs at least two points")

    @property
    def on_level(self) -> float:
        """Output with the input absent (the gate's ON state)."""
        return float(self.output_levels[0])

    @property
    def off_level(self) -> float:
        """Output at the highest probed input (the gate's OFF state)."""
        return float(self.output_levels[-1])

    @property
    def dynamic_range(self) -> float:
        """ON/OFF ratio (Cello's primary gate quality metric)."""
        if self.off_level <= 0:
            return float("inf")
        return self.on_level / self.off_level

    def switching_input(self) -> float:
        """Input level at which the output crosses half of the ON level."""
        half = 0.5 * self.on_level
        outputs = np.asarray(self.output_levels)
        inputs = np.asarray(self.input_levels)
        below = np.nonzero(outputs <= half)[0]
        if below.size == 0:
            return float(inputs[-1])
        first = below[0]
        if first == 0:
            return float(inputs[0])
        # Linear interpolation between the bracketing samples.
        x0, x1 = inputs[first - 1], inputs[first]
        y0, y1 = outputs[first - 1], outputs[first]
        if y0 == y1:
            return float(x1)
        return float(x0 + (half - y0) * (x1 - x0) / (y1 - y0))

    def supports_threshold(self, threshold: float) -> bool:
        """True when the ON level sits above and the OFF level below ``threshold``."""
        return self.off_level < threshold < self.on_level

    def summary(self) -> str:
        return (
            f"{self.repressor}: ON {self.on_level:.1f}, OFF {self.off_level:.1f}, "
            f"dynamic range {self.dynamic_range:.1f}x, switches at "
            f"{self.switching_input():.1f} molecules"
        )


def _single_gate_model(repressor: str, library: PartsLibrary) -> GeneticCircuit:
    """A one-NOT-gate circuit whose gate uses the requested repressor's promoter.

    The probe input is the repressor protein itself, clamped by the virtual
    laboratory, and the output is a reporter — i.e. exactly the measurement
    Cello performs to characterise a repressor.
    """
    netlist = Netlist(f"characterize_{repressor}", inputs=[repressor], output="y")
    netlist.add_gate("gate", GateType.NOT, [repressor], "y")
    return build_circuit(netlist, library=library.copy(), output_protein="GFP")


def response_curve(
    model: Model,
    input_species: str,
    output_species: str,
    input_levels: Sequence[float],
    settle_time: float = 200.0,
) -> List[float]:
    """Settled output level for each probed input level (deterministic)."""
    if not input_levels:
        raise AnalysisError("response_curve needs at least one input level")
    outputs = []
    for level in input_levels:
        if level < 0:
            raise AnalysisError("input levels cannot be negative")
        schedule = InputSchedule().add(0.0, {input_species: float(level)})
        trajectory = simulate_ode(
            model,
            settle_time,
            sample_interval=max(settle_time / 100.0, 1.0),
            schedule=schedule,
        )
        outputs.append(float(trajectory.value_at(output_species, settle_time - 1e-9)))
    return outputs


def characterize_gate(
    repressor: str,
    library: Optional[PartsLibrary] = None,
    input_levels: Optional[Sequence[float]] = None,
    settle_time: float = 200.0,
) -> GateResponse:
    """Measure the steady-state response curve of one library repressor."""
    library = library or default_library()
    if repressor not in library.repressors:
        raise AnalysisError(f"library has no repressor named {repressor!r}")
    if input_levels is None:
        input_levels = [0.0, 1.0, 2.0, 4.0, 7.0, 10.0, 15.0, 25.0, 40.0, 60.0]
    circuit = _single_gate_model(repressor, library)
    outputs = response_curve(
        circuit.model,
        repressor,
        circuit.output,
        input_levels,
        settle_time=settle_time,
    )
    return GateResponse(repressor=repressor, input_levels=list(input_levels), output_levels=outputs)


def characterize_library(
    library: Optional[PartsLibrary] = None,
    repressors: Optional[Sequence[str]] = None,
    input_levels: Optional[Sequence[float]] = None,
) -> Dict[str, GateResponse]:
    """Response curves for several (default: all) repressors in a library."""
    library = library or default_library()
    names = list(repressors) if repressors is not None else list(library.repressors)
    return {
        name: characterize_gate(name, library=library, input_levels=input_levels)
        for name in names
    }
