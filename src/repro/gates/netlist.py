"""Gate-level netlists of genetic logic circuits.

A netlist connects gate instances through named nets, exactly as in digital
EDA: circuit inputs and the gate outputs are nets, each net has at most one
driver, and the netlist must be acyclic (combinational).  The netlist layer
is where the *intended* Boolean behaviour of a circuit is defined — the
logic-analysis algorithm later recovers the behaviour from stochastic traces
and the verification step compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import NetlistError
from ..logic.truthtable import TruthTable
from .gate import GateDefinition, gate_definition

__all__ = ["GateInstance", "Netlist"]


@dataclass
class GateInstance:
    """One gate in a netlist."""

    name: str
    gate_type: str
    inputs: Tuple[str, ...]
    output: str
    repressor: Optional[str] = None

    def __post_init__(self) -> None:
        self.gate_type = self.gate_type.upper()
        self.inputs = tuple(self.inputs)
        definition = gate_definition(self.gate_type)
        definition.validate_fan_in(len(self.inputs))
        if self.output in self.inputs:
            raise NetlistError(f"gate {self.name!r} drives one of its own inputs")

    @property
    def definition(self) -> GateDefinition:
        return gate_definition(self.gate_type)

    def evaluate(self, values: Mapping[str, int]) -> int:
        """Boolean output given the values of the gate's input nets."""
        try:
            bits = [int(bool(values[net])) for net in self.inputs]
        except KeyError as exc:
            raise NetlistError(f"gate {self.name!r} input net {exc} has no value") from None
        return self.definition.evaluate(bits)

    def component_count(self) -> int:
        return self.definition.component_count(len(self.inputs))


class Netlist:
    """A combinational network of genetic gates."""

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        output: str,
        gates: Sequence[GateInstance] = (),
    ):
        self.name = name
        self.inputs = list(inputs)
        self.output = output
        self.gates: List[GateInstance] = list(gates)
        if not self.inputs:
            raise NetlistError(f"netlist {name!r} has no inputs")
        if len(set(self.inputs)) != len(self.inputs):
            raise NetlistError(f"netlist {name!r} has duplicate input nets")
        self._validate()

    # -- construction ----------------------------------------------------------
    def add_gate(
        self,
        name: str,
        gate_type: str,
        inputs: Sequence[str],
        output: str,
        repressor: Optional[str] = None,
    ) -> GateInstance:
        """Append a gate and re-validate the netlist."""
        gate = GateInstance(name, gate_type, tuple(inputs), output, repressor)
        self.gates.append(gate)
        try:
            self._validate()
        except NetlistError:
            self.gates.pop()
            raise
        return gate

    # -- validation -------------------------------------------------------------
    def _validate(self) -> None:
        drivers: Dict[str, str] = {}
        names: Set[str] = set()
        for gate in self.gates:
            if gate.name in names:
                raise NetlistError(f"duplicate gate name {gate.name!r}")
            names.add(gate.name)
            if gate.output in self.inputs:
                raise NetlistError(
                    f"gate {gate.name!r} drives primary input net {gate.output!r}",
                )
            if gate.output in drivers:
                raise NetlistError(
                    f"net {gate.output!r} is driven by both {drivers[gate.output]!r} "
                    f"and {gate.name!r}",
                )
            drivers[gate.output] = gate.name
        if self.gates:
            known_nets = set(self.inputs) | set(drivers)
            for gate in self.gates:
                for net in gate.inputs:
                    if net not in known_nets:
                        raise NetlistError(
                            f"gate {gate.name!r} input net {net!r} is not driven by "
                            "any gate or primary input",
                        )
            self.topological_order()  # raises on combinational loops

    def check_complete(self) -> None:
        """Raise unless the circuit output net is actually driven.

        Kept separate from the incremental validation so that netlists can be
        built gate by gate; the completeness check runs before the netlist is
        evaluated or composed into a model.
        """
        if not self.gates:
            raise NetlistError(f"netlist {self.name!r} has no gates")
        driven = set(self.inputs) | {gate.output for gate in self.gates}
        if self.output not in driven:
            raise NetlistError(f"output net {self.output!r} is not driven")

    def topological_order(self) -> List[GateInstance]:
        """Gates sorted so that every gate appears after its drivers."""
        by_output = {gate.output: gate for gate in self.gates}
        order: List[GateInstance] = []
        state: Dict[str, int] = {}  # 0 = unvisited, 1 = visiting, 2 = done

        def visit(gate: GateInstance) -> None:
            status = state.get(gate.name, 0)
            if status == 1:
                raise NetlistError(
                    f"netlist {self.name!r} has a combinational loop through {gate.name!r}",
                )
            if status == 2:
                return
            state[gate.name] = 1
            for net in gate.inputs:
                driver = by_output.get(net)
                if driver is not None:
                    visit(driver)
            state[gate.name] = 2
            order.append(gate)

        for gate in self.gates:
            visit(gate)
        return order

    # -- queries ----------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    def component_count(self) -> int:
        """Total number of genetic components (DNA parts) in the circuit."""
        return sum(gate.component_count() for gate in self.gates)

    def internal_nets(self) -> List[str]:
        """Nets driven by gates, excluding the circuit output."""
        return [gate.output for gate in self.gates if gate.output != self.output]

    def gate_driving(self, net: str) -> Optional[GateInstance]:
        for gate in self.gates:
            if gate.output == net:
                return gate
        return None

    def repressor_assignment(self) -> Dict[str, str]:
        """Gate name -> repressor protein, for gates that have one assigned."""
        return {g.name: g.repressor for g in self.gates if g.repressor is not None}

    # -- behaviour ---------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, int]) -> Dict[str, int]:
        """Digital value of every net for the given primary-input assignment."""
        values: Dict[str, int] = {}
        for net in self.inputs:
            if net not in assignment:
                raise NetlistError(f"assignment is missing primary input {net!r}")
            values[net] = int(bool(assignment[net]))
        for gate in self.topological_order():
            values[gate.output] = gate.evaluate(values)
        return values

    def output_value(self, assignment: Mapping[str, int]) -> int:
        """Digital value of the circuit output for an input assignment."""
        return self.evaluate(assignment)[self.output]

    def truth_table(self, net: Optional[str] = None) -> TruthTable:
        """Truth table of ``net`` (default: the circuit output) over the inputs."""
        self.check_complete()
        target = net or self.output
        outputs = []
        for index in range(2**self.n_inputs):
            bits = TruthTable.combination_bits(index, self.n_inputs)
            values = self.evaluate(dict(zip(self.inputs, bits)))
            if target not in values:
                raise NetlistError(f"net {target!r} does not exist in netlist {self.name!r}")
            outputs.append(values[target])
        return TruthTable(self.inputs, outputs)

    def expected_expression(self):
        """Minimized Boolean expression of the circuit output."""
        return self.truth_table().to_minimized_expression()

    def logic_depth(self) -> int:
        """Longest input-to-output path measured in gates."""
        depth: Dict[str, int] = {net: 0 for net in self.inputs}
        for gate in self.topological_order():
            depth[gate.output] = 1 + max(depth[net] for net in gate.inputs)
        return depth.get(self.output, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Netlist({self.name!r}, inputs={self.inputs}, gates={self.n_gates}, "
            f"output={self.output!r})"
        )

    def describe(self) -> str:
        """Multi-line human readable structure dump."""
        lines = [
            f"netlist {self.name}",
            f"  inputs : {', '.join(self.inputs)}",
            f"  output : {self.output}",
            f"  gates  : {self.n_gates} ({self.component_count()} genetic components)",
        ]
        for gate in self.topological_order():
            repressor = f" [{gate.repressor}]" if gate.repressor else ""
            lines.append(
                f"    {gate.name}: {gate.gate_type}({', '.join(gate.inputs)}) "
                f"-> {gate.output}{repressor}",
            )
        return "\n".join(lines)
