"""Explicit part assignments: the pure core of circuit composition.

Historically, which repressor carries which internal net was decided by
*mutating* :class:`~repro.gates.parts_library.PartsLibrary` allocation state
while composing a circuit — fine for building one circuit, hostile to
searching over many: there was no value that *names* a candidate, so there
was nothing to enumerate, hash, cache or ship to a worker.

:class:`PartAssignment` is that value: a frozen mapping of assignable gates
to repressor names plus an optional set of kinetic parameter overrides
(RBS/promoter variants).  Composition
(:func:`repro.gates.compose.assign_proteins`) is a pure function of the
netlist, the library and an assignment; :func:`default_assignment` computes
the assignment the legacy first-fit allocator would have produced, so the
stateful API is now a shim over this module.  :func:`enumerate_assignments`
yields the full candidate stream — repressor permutations × a variant grid —
deterministically and resumably, which is what the design-space search layer
(:mod:`repro.search`) iterates over.

Gate names are stable tokens here: :mod:`repro.gates.synthesis` names gates
deterministically (``g_inv0``, ``g_nor0``, ... in synthesis order), so an
assignment produced against one synthesis of a function applies to every
re-synthesis of the same function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import islice, permutations
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ModelError
from .netlist import Netlist
from .parts_library import PartsLibrary, default_library

__all__ = [
    "PartAssignment",
    "assignable_gates",
    "default_assignment",
    "enumerate_assignments",
    "count_assignments",
]

#: One variant: parameter overrides as a mapping or an item sequence.
VariantLike = Union[Mapping[str, float], Iterable[Tuple[str, float]]]


def _frozen_overrides(overrides: Optional[VariantLike]) -> Tuple[Tuple[str, float], ...]:
    """Overrides as a sorted, hashable ``((name, value), ...)`` tuple."""
    if overrides is None:
        return ()
    items = overrides.items() if isinstance(overrides, Mapping) else list(overrides)
    frozen = tuple(sorted((str(name), float(value)) for name, value in items))
    names = [name for name, _ in frozen]
    if len(set(names)) != len(names):
        raise ModelError(f"duplicate parameter override names in {names}")
    return frozen


@dataclass(frozen=True)
class PartAssignment:
    """One candidate choice of parts for a netlist.

    Attributes
    ----------
    repressors:
        ``((gate_name, repressor_name), ...)`` for every assignable gate, in
        the netlist's topological gate order.
    overrides:
        Frozen kinetic parameter overrides (RBS/promoter variants) applied at
        simulation time as the job's ``parameter_overrides`` — the circuit
        model itself is identical across variants of one permutation, so
        compiled-model caches stay warm.
    index:
        Position of this candidate in its enumeration stream (metadata only;
        two assignments with equal parts compare equal regardless of where
        they were enumerated).
    """

    repressors: Tuple[Tuple[str, str], ...]
    overrides: Tuple[Tuple[str, float], ...] = ()
    index: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        frozen = tuple((str(gate), str(part)) for gate, part in self.repressors)
        object.__setattr__(self, "repressors", frozen)
        gates = [gate for gate, _ in frozen]
        if len(set(gates)) != len(gates):
            raise ModelError(f"assignment names gate(s) more than once: {gates}")
        parts = [part for _, part in frozen]
        if len(set(parts)) != len(parts):
            raise ModelError(
                f"assignment reuses repressor(s) across gates: {parts} "
                "(Cello's no-reuse constraint)",
            )
        object.__setattr__(self, "overrides", _frozen_overrides(self.overrides))

    # -- queries ---------------------------------------------------------------
    @property
    def gate_names(self) -> Tuple[str, ...]:
        return tuple(gate for gate, _ in self.repressors)

    @property
    def repressor_names(self) -> Tuple[str, ...]:
        return tuple(part for _, part in self.repressors)

    def repressor_for(self, gate_name: str) -> Optional[str]:
        """The repressor assigned to ``gate_name`` (None when not covered)."""
        for gate, part in self.repressors:
            if gate == gate_name:
                return part
        return None

    def label(self) -> str:
        """Compact human-readable tag, e.g. ``"PhlF+SrpR @kmax=2.0"``."""
        parts = "+".join(self.repressor_names) or "(preassigned)"
        if not self.overrides:
            return parts
        knobs = ",".join(f"{name}={value:g}" for name, value in self.overrides)
        return f"{parts} @{knobs}"

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "repressors": [list(pair) for pair in self.repressors],
            "overrides": [list(pair) for pair in self.overrides],
        }
        if self.index is not None:
            data["index"] = self.index
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PartAssignment":
        if not isinstance(data, Mapping):
            raise ModelError("a PartAssignment must be a JSON object")
        known = {"repressors", "overrides", "index"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ModelError(f"unknown PartAssignment field(s) {unknown}")
        repressors = tuple(
            (str(gate), str(part)) for gate, part in data.get("repressors", ())
        )
        overrides = tuple((str(n), float(v)) for n, v in data.get("overrides", ()))
        index = data.get("index")
        return cls(
            repressors=repressors,
            overrides=overrides,
            index=None if index is None else int(index),
        )


def _static_reserved(netlist: Netlist, output_protein: str) -> set:
    """Names never available to assignment: inputs, output, usable pre-assignments."""
    reserved = set(netlist.inputs) | {output_protein}
    for gate in netlist.topological_order():
        if gate.output == netlist.output:
            continue
        if gate.repressor and gate.repressor not in reserved:
            reserved.add(gate.repressor)
    return reserved


def assignable_gates(netlist: Netlist, output_protein: str = "GFP") -> List[str]:
    """Gates needing a repressor from the library, in topological order.

    The output-driving gate carries the reporter, and gates with a usable
    pre-assigned repressor (hand-built circuits) keep it; every other gate is
    assignable.  A pre-assignment colliding with an input, the reporter or an
    earlier pre-assignment is unusable and makes its gate assignable again —
    exactly the legacy allocator's behaviour.
    """
    netlist.check_complete()
    reserved = set(netlist.inputs) | {output_protein}
    names: List[str] = []
    for gate in netlist.topological_order():
        if gate.output == netlist.output:
            continue
        if gate.repressor and gate.repressor not in reserved:
            reserved.add(gate.repressor)
        else:
            names.append(gate.name)
    return names


def default_assignment(
    netlist: Netlist,
    library: Optional[PartsLibrary] = None,
    output_protein: str = "GFP",
    overrides: Optional[VariantLike] = None,
) -> PartAssignment:
    """The assignment the legacy first-fit allocator produces, computed purely.

    Walks the netlist in topological order and gives each assignable gate the
    first library repressor not yet reserved (inputs, the reporter, earlier
    choices and usable pre-assignments all reserve their names) — the exact
    selection :meth:`PartsLibrary.allocate_repressor` made statefully, without
    touching any library state.
    """
    netlist.check_complete()
    library = library or default_library()
    reserved = set(netlist.inputs) | {output_protein}
    chosen: List[Tuple[str, str]] = []
    for gate in netlist.topological_order():
        if gate.output == netlist.output:
            continue
        if gate.repressor and gate.repressor not in reserved:
            part_name = gate.repressor
        else:
            part_name = library.select_repressor(unavailable=sorted(reserved)).name
            chosen.append((gate.name, part_name))
        reserved.add(part_name)
    return PartAssignment(repressors=tuple(chosen), overrides=_frozen_overrides(overrides))


def _normalized_variants(
    variants: Optional[Sequence[VariantLike]],
) -> List[Tuple[Tuple[str, float], ...]]:
    if variants is None:
        return [()]
    normalized = [_frozen_overrides(variant) for variant in variants]
    if not normalized:
        raise ModelError("variants must contain at least one override set (may be empty)")
    return normalized


def _candidate_pool(netlist: Netlist, library: PartsLibrary, output_protein: str) -> List[str]:
    reserved = _static_reserved(netlist, output_protein)
    return [name for name in library.repressors if name not in reserved]


def count_assignments(
    netlist: Netlist,
    library: Optional[PartsLibrary] = None,
    output_protein: str = "GFP",
    variants: Optional[Sequence[VariantLike]] = None,
) -> int:
    """Size of the stream :func:`enumerate_assignments` yields.

    ``P(pool, gates) × len(variants)`` where ``pool`` is the number of
    library repressors not reserved by inputs, the reporter or usable
    pre-assignments, and ``gates`` the number of assignable gates.
    """
    gates = assignable_gates(netlist, output_protein)
    library = library or default_library()
    pool = _candidate_pool(netlist, library, output_protein)
    if len(pool) < len(gates):
        return 0
    return math.perm(len(pool), len(gates)) * len(_normalized_variants(variants))


def enumerate_assignments(
    netlist: Netlist,
    library: Optional[PartsLibrary] = None,
    output_protein: str = "GFP",
    variants: Optional[Sequence[VariantLike]] = None,
    start: int = 0,
    limit: Optional[int] = None,
) -> Iterator[PartAssignment]:
    """Yield every candidate :class:`PartAssignment` for ``netlist``.

    The stream is the cross product of repressor permutations (assignable
    gates drawing from the unreserved library pool, in library insertion
    order) and the ``variants`` grid of parameter-override sets (default: one
    empty variant).  Permutations are the outer loop, variants the inner one,
    and each yielded assignment carries its stream position as ``.index`` —
    so the order is deterministic, and the stream is resumable: ``start=K``
    skips straight to candidate ``K`` (permutation skipping is arithmetic,
    not a re-enumeration), ``limit=N`` stops after ``N`` candidates.

    The very first candidate (``start=0``, no variants) is exactly
    :func:`default_assignment`: first-fit is the first permutation.
    """
    if start < 0:
        raise ModelError("enumerate_assignments start must be non-negative")
    if limit is not None and limit < 0:
        raise ModelError("enumerate_assignments limit must be non-negative")
    gates = assignable_gates(netlist, output_protein)
    library = library or default_library()
    pool = _candidate_pool(netlist, library, output_protein)
    if len(pool) < len(gates):
        raise ModelError(
            f"library pool of {len(pool)} repressor(s) cannot cover "
            f"{len(gates)} assignable gate(s)",
        )
    variant_sets = _normalized_variants(variants)
    n_variants = len(variant_sets)
    start_perm, start_variant = divmod(start, n_variants)

    index = start_perm * n_variants + start_variant
    yielded = 0
    first = True
    for perm in islice(permutations(pool, len(gates)), start_perm, None):
        variant_offset = start_variant if first else 0
        first = False
        for variant in variant_sets[variant_offset:]:
            if limit is not None and yielded >= limit:
                return
            yield PartAssignment(
                repressors=tuple(zip(gates, perm)),
                overrides=variant,
                index=index,
            )
            index += 1
            yielded += 1
    return
