"""Composition of gate netlists into SBOL designs and SBML models.

This module is the bridge between the digital view (a :class:`Netlist` of
NOT/NOR/NAND gates) and the biochemical view (an SBML reaction network the
stochastic simulators can run).  It follows the paper's own tool flow:

netlist  →  SBOL structural design  →  (SBOL→SBML converter)  →  SBML model

Each gate is realised as one (or, for NAND, several) transcriptional units.
Internal nets are carried by repressor proteins allocated from a
:class:`~repro.gates.parts_library.PartsLibrary`; the circuit output is
carried by a fluorescent reporter; the primary inputs are proteins clamped by
the virtual laboratory.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import ModelError
from ..sbml.model import Model
from ..sbol.converter import ConversionParameters, sbol_to_sbml
from ..sbol.document import SBOLDocument
from ..sbol.parts import ComponentDefinition, cds, promoter, protein, terminator
from .assignment import PartAssignment, default_assignment
from .gate import GateType
from .netlist import GateInstance, Netlist
from .parts_library import PartsLibrary, default_library

__all__ = ["assign_proteins", "netlist_to_sbol", "netlist_to_model"]


def assign_proteins(
    netlist: Netlist,
    library: Optional[PartsLibrary] = None,
    output_protein: str = "GFP",
    assignment: Optional[PartAssignment] = None,
) -> Dict[str, str]:
    """Map every net of ``netlist`` to the protein species that carries it.

    Primary input nets map to themselves (they are already protein names such
    as ``LacI``); internal nets get a distinct repressor; the output net maps
    to ``output_protein``.  The chosen repressor is also recorded on each
    :class:`GateInstance` (its ``repressor`` attribute).

    Which repressor carries which net is a pure function of ``assignment``
    (an explicit :class:`~repro.gates.assignment.PartAssignment`): no library
    state is read or written.  When ``assignment`` is omitted, the default is
    :func:`~repro.gates.assignment.default_assignment` — the first-fit choice
    the legacy stateful allocator always made, so existing callers see
    identical circuits.  An explicit assignment wins over a gate's
    pre-assigned ``repressor`` attribute; gates the assignment does not cover
    fall back to their usable pre-assignment.
    """
    netlist.check_complete()
    library = library or default_library()
    if assignment is None:
        assignment = default_assignment(netlist, library, output_protein)
    chosen = dict(assignment.repressors)
    net_protein: Dict[str, str] = {net: net for net in netlist.inputs}
    reserved = set(netlist.inputs) | {output_protein}

    for gate in netlist.topological_order():
        if gate.output == netlist.output:
            net_protein[gate.output] = output_protein
            gate.repressor = output_protein
            continue
        part_name = chosen.pop(gate.name, None)
        if part_name is None:
            if gate.repressor and gate.repressor not in reserved:
                # Respect a pre-assigned repressor (hand-built circuits).
                part_name = gate.repressor
                if part_name not in library.repressors:
                    raise ModelError(
                        f"gate {gate.name!r} requests unknown repressor {part_name!r}",
                    )
            else:
                raise ModelError(
                    f"assignment covers no repressor for gate {gate.name!r} "
                    f"(assignable gates need one each)",
                )
        else:
            if part_name not in library.repressors:
                raise ModelError(
                    f"assignment gives gate {gate.name!r} unknown repressor {part_name!r}",
                )
            if part_name in reserved:
                raise ModelError(
                    f"assignment gives gate {gate.name!r} repressor {part_name!r}, "
                    "which is already carrying another net (cross-talk)",
                )
        gate.repressor = part_name
        reserved.add(part_name)
        net_protein[gate.output] = part_name
    if chosen:
        raise ModelError(
            f"assignment names unknown or non-assignable gate(s) {sorted(chosen)}",
        )
    return net_protein


def _protein_component(
    name: str,
    library: PartsLibrary,
    is_input: bool,
    is_output: bool,
) -> ComponentDefinition:
    """Build the protein component with the response properties the converter reads."""
    if is_input:
        if name in library.repressors:
            # An input carried by a characterised repressor protein (LacI,
            # TetR, ...) uses that part's response function.
            part = library.repressor(name)
            return protein(name, K=part.K, n=part.n)
        signal = library.input_signal(name)
        return protein(name, K=signal.K, n=signal.n)
    if is_output:
        reporter = library.reporter(name) if name in library.reporters else None
        degradation = reporter.degradation if reporter else 0.1
        return protein(name, degradation=degradation)
    part = library.repressor(name)
    return protein(name, K=part.K, n=part.n, degradation=part.degradation)


def netlist_to_sbol(
    netlist: Netlist,
    library: Optional[PartsLibrary] = None,
    output_protein: str = "GFP",
    assignment: Optional[PartAssignment] = None,
) -> Tuple[SBOLDocument, Dict[str, str]]:
    """Build the SBOL structural design of a gate netlist.

    Returns the document and the net → protein mapping used.  ``assignment``
    selects the parts explicitly (see :func:`assign_proteins`).
    """
    library = library or default_library()
    net_protein = assign_proteins(netlist, library, output_protein, assignment=assignment)

    document = SBOLDocument(netlist.name, name=netlist.name)

    # Protein components.
    for net, species in net_protein.items():
        is_input = net in netlist.inputs
        is_output = net == netlist.output
        component = _protein_component(species, library, is_input, is_output)
        document.ensure_component(component)

    # One transcriptional unit per NOT/NOR gate; one per input for NAND gates.
    for gate in netlist.topological_order():
        product_species = net_protein[gate.output]
        input_species = [net_protein[net] for net in gate.inputs]
        promoter_strength = _gate_promoter_strength(gate, library)

        if gate.gate_type in (GateType.NOT, GateType.NOR):
            _add_unit(
                document,
                unit_id=f"tu_{gate.name}",
                promoter_ids=[f"p_{gate.name}"],
                repressors_per_promoter=[input_species],
                product=product_species,
                strength=promoter_strength,
            )
        elif gate.gate_type == GateType.NAND:
            for index, species in enumerate(input_species):
                _add_unit(
                    document,
                    unit_id=f"tu_{gate.name}_{index}",
                    promoter_ids=[f"p_{gate.name}_{index}"],
                    repressors_per_promoter=[[species]],
                    product=product_species,
                    strength=promoter_strength,
                )
        else:  # pragma: no cover - GateInstance already validates the type
            raise ModelError(f"gate {gate.name!r} has unsupported type {gate.gate_type!r}")

    return document, net_protein


def _gate_promoter_strength(gate: GateInstance, library: PartsLibrary) -> float:
    """Maximal strength of the gate's promoter(s).

    If the gate's output protein is a library repressor, reuse that part's
    characterised strength so the downstream gate sees the level it was tuned
    for; otherwise fall back to the library-wide default.
    """
    if gate.repressor and gate.repressor in library.repressors:
        return library.repressor(gate.repressor).strength
    some_part = next(iter(library.repressors.values()))
    return some_part.strength


def _add_unit(
    document: SBOLDocument,
    unit_id: str,
    promoter_ids,
    repressors_per_promoter,
    product: str,
    strength: float,
) -> None:
    """Add one transcriptional unit (promoters + CDS + terminator) to the design."""
    parts = []
    for promoter_id, repressors in zip(promoter_ids, repressors_per_promoter):
        document.ensure_component(promoter(promoter_id, strength=strength))
        parts.append(promoter_id)
        for repressor in repressors:
            document.add_repression(repressor, promoter_id)
    cds_id = f"cds_{unit_id}"
    terminator_id = f"ter_{unit_id}"
    document.ensure_component(cds(cds_id))
    document.ensure_component(terminator(terminator_id))
    document.add_production(cds_id, product)
    parts.extend([cds_id, terminator_id])
    document.add_unit(unit_id, parts)


def netlist_to_model(
    netlist: Netlist,
    library: Optional[PartsLibrary] = None,
    output_protein: str = "GFP",
    parameters: Optional[ConversionParameters] = None,
    model_id: Optional[str] = None,
    assignment: Optional[PartAssignment] = None,
) -> Tuple[Model, SBOLDocument, Dict[str, str]]:
    """Full composition: netlist → SBOL → SBML model.

    Returns the model, the intermediate SBOL document, and the net → protein
    mapping (the model's input species are ``[net_protein[i] for i in
    netlist.inputs]`` and its output species is ``net_protein[netlist.output]``).
    ``assignment`` selects the parts explicitly (see :func:`assign_proteins`).
    """
    library = library or default_library()
    document, net_protein = netlist_to_sbol(
        netlist, library, output_protein, assignment=assignment
    )
    model = sbol_to_sbml(
        document,
        parameters=parameters,
        model_id=model_id or netlist.name.replace("-", "_"),
    )
    return model, document, net_protein
