"""Genetic gate templates.

Only a handful of gate types can be realised directly as transcriptional
units built from repressor parts; everything else is composed from them:

``NOT``
    One promoter repressed by the input protein drives the output protein.
``NOR``
    One promoter repressed by *every* input protein drives the output
    protein: the output is produced only when all inputs are low.  (Cello
    realises the same Boolean function with tandem input promoters driving a
    common repressor; at the protein level the behaviour is identical.)
``NAND``
    One transcriptional unit *per input*, each with a promoter repressed by
    that input, all producing the same output protein: the output is high
    unless every input is high.  This is exactly the structure of the paper's
    Figure 1, where promoters P1 (repressed by LacI) and P2 (repressed by
    TetR) both produce CI.

The :class:`GateDefinition` objects here define the Boolean function and the
number of genetic components each template contributes; the physical
(reaction-network) realisation is produced by :mod:`repro.gates.compose`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..errors import NetlistError
from ..logic.truthtable import TruthTable

__all__ = ["GateType", "GateDefinition", "GATE_TYPES", "gate_definition"]


class GateType:
    """Names of the physically realisable gate templates."""

    NOT = "NOT"
    NOR = "NOR"
    NAND = "NAND"

    ALL = (NOT, NOR, NAND)


@dataclass(frozen=True)
class GateDefinition:
    """Static description of a gate template."""

    gate_type: str
    min_inputs: int
    max_inputs: int
    description: str

    def validate_fan_in(self, n_inputs: int) -> None:
        if not self.min_inputs <= n_inputs <= self.max_inputs:
            raise NetlistError(
                f"{self.gate_type} gates support {self.min_inputs}-{self.max_inputs} "
                f"inputs, got {n_inputs}",
            )

    def evaluate(self, bits: Sequence[int]) -> int:
        """Boolean output of the gate for the given input bits."""
        self.validate_fan_in(len(bits))
        if self.gate_type == GateType.NOT:
            return int(not bits[0])
        if self.gate_type == GateType.NOR:
            return int(not any(bits))
        if self.gate_type == GateType.NAND:
            return int(not all(bits))
        raise NetlistError(f"unknown gate type {self.gate_type!r}")

    def truth_table(self, inputs: Sequence[str]) -> TruthTable:
        """Truth table of the gate over the given input names."""
        return TruthTable.from_function(lambda *bits: self.evaluate(bits), inputs)

    def component_count(self, n_inputs: int) -> int:
        """Number of genetic components (DNA parts) the gate contributes.

        ``NOT`` and ``NOR`` gates are a single transcriptional unit — one
        promoter (carrying one operator per input), a coding sequence and a
        terminator.  ``NAND`` gates use one complete transcriptional unit per
        input.  These counts match the SBOL documents produced by
        :mod:`repro.gates.compose`.
        """
        self.validate_fan_in(n_inputs)
        if self.gate_type in (GateType.NOT, GateType.NOR):
            return 3
        if self.gate_type == GateType.NAND:
            return 3 * n_inputs
        raise NetlistError(f"unknown gate type {self.gate_type!r}")


GATE_TYPES: Dict[str, GateDefinition] = {
    GateType.NOT: GateDefinition(
        GateType.NOT,
        min_inputs=1,
        max_inputs=1,
        description="single repressed promoter driving the output protein",
    ),
    GateType.NOR: GateDefinition(
        GateType.NOR,
        min_inputs=1,
        max_inputs=4,
        description="one promoter repressed by every input protein",
    ),
    GateType.NAND: GateDefinition(
        GateType.NAND,
        min_inputs=1,
        max_inputs=4,
        description="one repressed transcriptional unit per input, shared product",
    ),
}


def gate_definition(gate_type: str) -> GateDefinition:
    """Look up a gate template by name (case-insensitive)."""
    key = gate_type.upper()
    try:
        return GATE_TYPES[key]
    except KeyError:
        raise NetlistError(
            f"unknown gate type {gate_type!r}; supported types: {', '.join(GATE_TYPES)}",
        ) from None
