"""Truth-table to gate-netlist synthesis (the Cello step of the paper's flow).

The paper's Cello circuits are named after their 3-input truth tables
(``0x0B``, ``0x04``, ``0x1C``, ...).  Cello maps a truth table onto a netlist
of NOT/NOR gates; this module performs the same mapping so that every circuit
of the 15-circuit suite can be regenerated from its name:

1. the truth table is minimized to a sum-of-products cover
   (:func:`repro.logic.minimize.minimal_cover`),
2. each product term ``l1·l2·…·lk`` becomes a NOR gate over the complements
   of its literals (``AND(l) = NOR(¬l)``) — complemented input literals are
   free (the input net itself), positive literals require one shared inverter
   per input,
3. the sum stage becomes a NOR over the product nets followed by an inverter
   (``OR(p) = NOT(NOR(p))``); a single product term needs no sum stage.

Gate fan-in is capped (default 4, larger terms are decomposed into balanced
trees), and the result is always a valid, acyclic :class:`Netlist` whose
truth table provably equals the specification (checked by construction in
tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import SynthesisError
from ..logic.minimize import Implicant, minimal_cover
from ..logic.truthtable import TruthTable
from .gate import GateType
from .netlist import Netlist

__all__ = ["synthesize", "synthesize_from_hex", "synthesize_from_expression"]


class _NetNamer:
    """Generates unique internal net/gate names for a synthesis run."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        index = self._counts.get(prefix, 0)
        self._counts[prefix] = index + 1
        return f"{prefix}{index}"


def _implicant_literals(implicant: Implicant, inputs: Sequence[str]) -> List[tuple]:
    """Literals of an implicant as (input name, is_positive) pairs."""
    literals = []
    n = len(inputs)
    for position, name in enumerate(inputs):
        bit_position = n - 1 - position
        if (implicant.mask >> bit_position) & 1:
            continue
        positive = bool((implicant.value >> bit_position) & 1)
        literals.append((name, positive))
    return literals


def _nor_tree(
    netlist: Netlist,
    namer: _NetNamer,
    nets: List[str],
    max_fanin: int,
    invert: bool,
    output_net: Optional[str] = None,
) -> str:
    """Build NOR(nets) (or OR when ``invert`` is False) respecting fan-in.

    Returns the name of the net carrying the requested function.  When
    ``output_net`` is given, the final gate drives that net.
    """
    if not nets:
        raise SynthesisError("cannot build a NOR over zero nets")
    if len(nets) > max_fanin:
        # Reduce with OR sub-trees: OR(group) per chunk, then recurse.
        chunks = [nets[i:i + max_fanin] for i in range(0, len(nets), max_fanin)]
        reduced = []
        for chunk in chunks:
            reduced.append(_nor_tree(netlist, namer, chunk, max_fanin, invert=False))
        return _nor_tree(netlist, namer, reduced, max_fanin, invert, output_net)

    nor_net = output_net if (invert and output_net) else namer.fresh("n_nor")
    netlist.add_gate(namer.fresh("g_nor"), GateType.NOR, nets, nor_net)
    if invert:
        return nor_net
    or_net = output_net if output_net else namer.fresh("n_or")
    netlist.add_gate(namer.fresh("g_inv"), GateType.NOT, [nor_net], or_net)
    return or_net


def synthesize(
    table: TruthTable,
    name: Optional[str] = None,
    output: str = "out",
    max_fanin: int = 4,
) -> Netlist:
    """Synthesize a NOT/NOR netlist implementing ``table``.

    Raises :class:`SynthesisError` for constant functions (a circuit that
    ignores its inputs has no genetic-gate implementation in this library).

    Naming contract: gate and net names are a deterministic function of the
    truth table alone (``g_inv0``, ``g_nor0``, ... numbered in synthesis
    order by :class:`_NetNamer`).  Re-synthesizing the same table always
    reproduces the same names, which is what lets a
    :class:`~repro.gates.assignment.PartAssignment` — keyed by gate name —
    be enumerated once and applied to every rebuild of the function, on any
    machine.  The synthesized netlist carries no part choices: which
    repressor implements which gate is decided later, by an assignment.
    """
    if max_fanin < 2:
        raise SynthesisError("max_fanin must be at least 2")
    minterms = table.minterms()
    if not minterms:
        raise SynthesisError("the constant-0 function cannot be synthesized into gates")
    if len(minterms) == table.n_rows:
        raise SynthesisError("the constant-1 function cannot be synthesized into gates")

    circuit_name = name or f"circuit_{table.to_hex()}"
    netlist = Netlist(circuit_name, inputs=list(table.inputs), output=output)
    namer = _NetNamer()

    cover = minimal_cover(table.n_inputs, minterms)

    # Shared inverters for inputs that appear as positive literals
    # (AND(l) = NOR(~l): a positive literal x needs the net ~x).
    inverted_input_net: Dict[str, str] = {}

    def inverted_net(input_name: str) -> str:
        if input_name not in inverted_input_net:
            net = namer.fresh("n_inv")
            netlist.add_gate(namer.fresh("g_inv"), GateType.NOT, [input_name], net)
            inverted_input_net[input_name] = net
        return inverted_input_net[input_name]

    product_nets: List[str] = []
    single_product = len(cover) == 1
    for implicant in cover:
        literals = _implicant_literals(implicant, table.inputs)
        if not literals:
            raise SynthesisError("tautological product term in a non-constant function")
        complemented = []
        for input_name, positive in literals:
            complemented.append(inverted_net(input_name) if positive else input_name)
        if len(literals) == 1:
            input_name, positive = literals[0]
            if single_product:
                # Single literal as the whole function: BUF or NOT of an input.
                if positive:
                    middle = inverted_net(input_name)
                    netlist.add_gate(namer.fresh("g_inv"), GateType.NOT, [middle], output)
                else:
                    netlist.add_gate(namer.fresh("g_inv"), GateType.NOT, [input_name], output)
                return netlist
            # Inside a sum, the product *is* the literal net.
            product_nets.append(input_name if positive else inverted_net(input_name))
            continue
        target = output if single_product else None
        product_net = _nor_tree(
            netlist,
            namer,
            complemented,
            max_fanin,
            invert=True,
            output_net=target,
        )
        product_nets.append(product_net)

    if single_product:
        return netlist

    # Sum stage: OR of the product nets.
    _nor_tree(netlist, namer, product_nets, max_fanin, invert=False, output_net=output)
    return netlist


def synthesize_from_hex(
    value,
    inputs: Optional[Sequence[str]] = None,
    n_inputs: int = 3,
    name: Optional[str] = None,
    output: str = "out",
    max_fanin: int = 4,
) -> Netlist:
    """Synthesize a circuit directly from its Cello-style hexadecimal name."""
    table = TruthTable.from_hex(value, inputs=inputs, n_inputs=n_inputs)
    if name is None:
        text = value if isinstance(value, str) else table.to_hex()
        name = f"circuit_{text}"
    return synthesize(table, name=name, output=output, max_fanin=max_fanin)


def synthesize_from_expression(
    expression,
    inputs: Optional[Sequence[str]] = None,
    name: Optional[str] = None,
    output: str = "out",
    max_fanin: int = 4,
) -> Netlist:
    """Synthesize a circuit from a Boolean expression (string or BoolExpr)."""
    table = TruthTable.from_expression(expression, inputs=inputs)
    return synthesize(table, name=name, output=output, max_fanin=max_fanin)
