"""Cello-like repressor parts library.

Cello implements every logic gate as a repressor-based NOT/NOR: the gate's
input promoters drive transcription of a repressor protein, which in turn
shuts off the gate's output promoter.  A circuit therefore needs one
*distinct* repressor per gate (so the gates do not cross-talk), drawn from a
library of characterised repressor/promoter pairs.

This module provides that library: the twelve repressors used by Cello
(Nielsen et al. 2016) plus the classic LacI/TetR/cI trio of the paper's
Figure 1, each with a response function (maximal promoter strength, Hill
repression coefficient ``K``, Hill cooperativity ``n``) expressed directly in
molecule counts so the resulting SBML models live on the same scale as the
paper's 15-molecule threshold.

The absolute values are not the published Cello parameters (those are in
arbitrary fluorescence units per a proprietary characterisation pipeline);
they are chosen so that a gate's settled output is ≈40 molecules when ON and
≈1–4 molecules when OFF, and so that an input applied at the paper's
15-molecule threshold level already switches a gate firmly (repression
coefficient K = 7 molecules), giving clean separation around that threshold
while keeping stochastic simulations cheap.  The
substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..errors import ModelError

__all__ = [
    "RepressorPart",
    "ReporterPart",
    "InputSignal",
    "PartsLibrary",
    "default_library",
    "diverse_library",
    "resolve_library",
    "LIBRARY_NAMES",
]


@dataclass(frozen=True)
class RepressorPart:
    """A characterised repressor / repressible-promoter pair.

    Attributes
    ----------
    name:
        Protein (species) name of the repressor, e.g. ``"PhlF"``.
    promoter:
        Name of the promoter the repressor shuts off, e.g. ``"pPhlF"``.
    strength:
        Maximal production rate from the promoter (molecules / time unit).
    K:
        Repressor amount at which the promoter is at half activity.
    n:
        Hill cooperativity of the repression.
    degradation:
        First-order degradation/dilution rate of the repressor protein.
    """

    name: str
    promoter: str
    strength: float = 4.0
    K: float = 7.0
    n: float = 4.0
    degradation: float = 0.1

    def __post_init__(self) -> None:
        if self.strength <= 0 or self.K <= 0 or self.n <= 0 or self.degradation <= 0:
            raise ModelError(f"repressor {self.name!r} has non-positive kinetics")


@dataclass(frozen=True)
class ReporterPart:
    """A fluorescent reporter protein used for circuit outputs."""

    name: str
    degradation: float = 0.1

    def __post_init__(self) -> None:
        if self.degradation <= 0:
            raise ModelError(f"reporter {self.name!r} has non-positive degradation")


@dataclass(frozen=True)
class InputSignal:
    """An externally controlled input protein (clamped by the virtual lab).

    ``low`` / ``high`` are the molecule counts used for digital 0 / 1, and
    ``K`` / ``n`` the response the input exerts on promoters it represses.
    """

    name: str
    low: float = 0.0
    high: float = 40.0
    K: float = 7.0
    n: float = 4.0

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ModelError(f"input {self.name!r} must have high > low")
        if self.K <= 0 or self.n <= 0:
            raise ModelError(f"input {self.name!r} has non-positive response parameters")


#: The Cello repressors (Nielsen et al. 2016) plus the Figure-1 classics.
_CELLO_REPRESSOR_NAMES = [
    "PhlF",
    "SrpR",
    "BM3R1",
    "HlyIIR",
    "BetI",
    "AmtR",
    "QacR",
    "IcaRA",
    "LitR",
    "LmrA",
    "PsrA",
    "AmeR",
    "CI",
    "LacI",
    "TetR",
]

_DEFAULT_INPUT_NAMES = ["LacI", "TetR", "AraC", "LuxR"]
_DEFAULT_REPORTER_NAMES = ["GFP", "YFP", "RFP", "BFP"]


class PartsLibrary:
    """A pool of repressors, reporters and input signals for circuit assembly.

    Part *selection* is pure: :meth:`select_repressor` answers "which
    repressor would be picked given these unavailable names" without touching
    any state, and :mod:`repro.gates.assignment` builds entire circuit
    assignments on top of it.  The legacy stateful interface
    (:meth:`allocate_repressor` / :meth:`reset_allocation`) is kept as a thin
    shim over the pure selection: it records each handed-out name in the
    library's allocation bookkeeping so that every gate of a circuit uses a
    different repressor, mirroring Cello's no-reuse constraint.

    Allocation-state semantics: the bookkeeping (``_allocated``) belongs to
    *this instance only*.  :meth:`copy` and :meth:`with_kinetics` both return
    a library with **fresh, empty** allocation state — a derived library
    never shares (or inherits) the parent's bookkeeping, so composing one
    circuit from a ``copy()`` can never exhaust another circuit's parts.
    """

    def __init__(
        self,
        repressors: Sequence[RepressorPart],
        reporters: Sequence[ReporterPart],
        inputs: Sequence[InputSignal],
    ):
        self.repressors: Dict[str, RepressorPart] = {}
        for part in repressors:
            if part.name in self.repressors:
                raise ModelError(f"duplicate repressor {part.name!r} in library")
            self.repressors[part.name] = part
        self.reporters: Dict[str, ReporterPart] = {r.name: r for r in reporters}
        self.inputs: Dict[str, InputSignal] = {s.name: s for s in inputs}
        self._allocated: List[str] = []

    # -- selection (pure) ------------------------------------------------------
    def select_repressor(self, unavailable: Sequence[str] = ()) -> RepressorPart:
        """The first repressor not named in ``unavailable`` (pure, no state).

        This is the library's selection rule — first fit in insertion order —
        as a pure function: calling it never records anything, so the same
        arguments always return the same part.  Names double-booked as input
        signals of a circuit belong in ``unavailable`` to avoid cross-talk,
        as do repressors already carrying other nets.
        """
        banned = set(unavailable)
        for name, part in self.repressors.items():
            if name not in banned:
                return part
        raise ModelError(
            "parts library exhausted: no repressor available outside "
            f"{sorted(banned)}",
        )

    # -- allocation (legacy stateful shim) -------------------------------------
    def allocate_repressor(self, exclude: Sequence[str] = ()) -> RepressorPart:
        """Return an unused repressor, skipping names in ``exclude``.

        Stateful shim over :meth:`select_repressor`: the chosen name is
        recorded so the next call skips it.  Repressors whose protein doubles
        as an input signal of the circuit must be excluded to avoid
        cross-talk, which is what ``exclude`` is for.  New code should prefer
        an explicit :class:`~repro.gates.assignment.PartAssignment`.
        """
        part = self.select_repressor(unavailable=[*self._allocated, *exclude])
        self._allocated.append(part.name)
        return part

    def reset_allocation(self) -> None:
        """Forget previous allocations (call between circuits)."""
        self._allocated = []

    def copy(self) -> "PartsLibrary":
        """An independent library with the same parts and *no* allocations.

        The copy shares no allocation bookkeeping with its parent: names the
        parent already handed out are available again in the copy, and
        allocating from the copy never consumes the parent's pool.
        """
        return PartsLibrary(
            list(self.repressors.values()),
            list(self.reporters.values()),
            list(self.inputs.values()),
        )

    # -- queries ---------------------------------------------------------------
    def repressor(self, name: str) -> RepressorPart:
        try:
            return self.repressors[name]
        except KeyError:
            raise ModelError(f"library has no repressor named {name!r}") from None

    def reporter(self, name: str) -> ReporterPart:
        try:
            return self.reporters[name]
        except KeyError:
            raise ModelError(f"library has no reporter named {name!r}") from None

    def input_signal(self, name: str) -> InputSignal:
        if name in self.inputs:
            return self.inputs[name]
        # Inputs not declared explicitly get default response parameters.
        return InputSignal(name)

    def with_kinetics(
        self,
        strength: Optional[float] = None,
        K: Optional[float] = None,
        n: Optional[float] = None,
        degradation: Optional[float] = None,
    ) -> "PartsLibrary":
        """A copy of the library with uniformly overridden kinetics.

        Used by parameter sweeps (e.g. the threshold-robustness experiment of
        Figure 5) to rescale every gate at once.  Like :meth:`copy`, the
        returned library starts with empty allocation state regardless of
        what this instance has already handed out.
        """
        new_repressors = []
        for part in self.repressors.values():
            new_repressors.append(
                replace(
                    part,
                    strength=strength if strength is not None else part.strength,
                    K=K if K is not None else part.K,
                    n=n if n is not None else part.n,
                    degradation=degradation if degradation is not None else part.degradation,
                ),
            )
        new_inputs = []
        for signal in self.inputs.values():
            new_inputs.append(
                replace(
                    signal,
                    K=K if K is not None else signal.K,
                    n=n if n is not None else signal.n,
                ),
            )
        return PartsLibrary(new_repressors, list(self.reporters.values()), new_inputs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PartsLibrary(repressors={len(self.repressors)}, "
            f"reporters={len(self.reporters)}, inputs={len(self.inputs)})"
        )


def default_library(
    strength: float = 4.0,
    K: float = 7.0,
    n: float = 4.0,
    degradation: float = 0.1,
    input_high: float = 40.0,
) -> PartsLibrary:
    """The standard parts library used by the named circuits and benchmarks.

    The defaults give every gate an ON level of ``strength / degradation`` =
    40 molecules and an OFF level of a few molecules, cleanly separated by
    the paper's 15-molecule threshold.
    """
    repressors = [
        RepressorPart(
            name=name,
            promoter=f"p{name}",
            strength=strength,
            K=K,
            n=n,
            degradation=degradation,
        )
        for name in _CELLO_REPRESSOR_NAMES
    ]
    reporters = [
        ReporterPart(name=name, degradation=degradation) for name in _DEFAULT_REPORTER_NAMES
    ]
    inputs = [
        InputSignal(name=name, low=0.0, high=input_high, K=K, n=n)
        for name in _DEFAULT_INPUT_NAMES
    ]
    return PartsLibrary(repressors, reporters, inputs)


#: Kinetic ladders of :func:`diverse_library`.  The cycle lengths (5, 4, 3)
#: are pairwise coprime, so each of the 15 repressors gets a distinct
#: (strength, K, n) combination.  Strengths keep every gate's ON level
#: (``strength / degradation`` = 26–64 molecules) above the paper's
#: 15-molecule threshold while spreading how much headroom each part has.
_DIVERSE_STRENGTHS = [2.6, 3.4, 4.2, 5.2, 6.4]
_DIVERSE_KS = [5.0, 6.5, 8.0, 9.5]
_DIVERSE_NS = [2.4, 3.2, 4.0]


def diverse_library(
    degradation: float = 0.1,
    input_high: float = 40.0,
) -> PartsLibrary:
    """A parts library whose repressors have deliberately *different* kinetics.

    :func:`default_library` gives every repressor identical response
    parameters, which makes all part assignments of a circuit statistically
    equivalent — fine for verifying one circuit, useless for *searching* over
    assignments.  This library assigns each repressor a distinct
    (strength, K, n) combination from fixed ladders, deterministically by its
    position in the Cello name list, so repressor permutations genuinely
    differ in fitness and a design-space search has a real landscape to rank.
    """
    repressors = [
        RepressorPart(
            name=name,
            promoter=f"p{name}",
            strength=_DIVERSE_STRENGTHS[index % len(_DIVERSE_STRENGTHS)],
            K=_DIVERSE_KS[index % len(_DIVERSE_KS)],
            n=_DIVERSE_NS[index % len(_DIVERSE_NS)],
            degradation=degradation,
        )
        for index, name in enumerate(_CELLO_REPRESSOR_NAMES)
    ]
    reporters = [
        ReporterPart(name=name, degradation=degradation) for name in _DEFAULT_REPORTER_NAMES
    ]
    inputs = [
        InputSignal(name=name, low=0.0, high=input_high) for name in _DEFAULT_INPUT_NAMES
    ]
    return PartsLibrary(repressors, reporters, inputs)


#: Named library factories resolvable from serialized specs (SearchSpec's
#: ``library`` field, the CLI's ``--library``).
_LIBRARY_FACTORIES = {
    "default": default_library,
    "diverse": diverse_library,
}

LIBRARY_NAMES = sorted(_LIBRARY_FACTORIES)


def resolve_library(name: str) -> PartsLibrary:
    """Build the named parts library (``"default"`` or ``"diverse"``).

    The registry the search layer uses to keep libraries serializable: a
    library *name* can live in a frozen spec and travel as JSON, where a live
    :class:`PartsLibrary` cannot.
    """
    try:
        factory = _LIBRARY_FACTORIES[str(name).lower()]
    except KeyError:
        raise ModelError(
            f"unknown parts library {name!r}; available: {LIBRARY_NAMES}",
        ) from None
    return factory()
