"""Auto-scaling local worker supervisor for the distributed fabric.

:class:`WorkerSupervisor` keeps a target number of ``genlogic worker``
processes running on this machine — launching them at start, restarting the
ones that crash, retiring the surplus when the target shrinks — so a fabric
survives worker deaths without an operator in the loop.  It is the process
half of the production fabric: the coordinator's heartbeat monitor
(:mod:`repro.engine.distributed`) detects a dead or hung worker and requeues
its tasks within seconds, and the supervisor puts a replacement process on
the fabric shortly after.

Restart policy: each worker slot owns a :class:`~repro.engine.backoff.Backoff`
over the shared capped-exponential-plus-jitter policy — the same one the
coordinator's re-dial loop uses — so a worker that keeps dying is restarted
at a decaying rate rather than in a hot loop (no restart storms), and a slot
that then stays up ``stable_after`` seconds earns its small initial delay
back.  Jitter keeps N crashed slots from re-execing in lockstep.

Two wirings, mirroring the executor's two assembly modes:

* **connect mode** (``connect="host:port"`` or a callable returning one):
  supervised workers dial a listening coordinator — the shape behind
  ``genlogic serve --supervise N``.  A *callable* connect is polled each
  spawn attempt and may return ``None`` while the coordinator has not bound
  yet (its ephemeral port is unknown until then); the slot simply retries on
  the next tick.
* **listen mode** (``listen_base="host:port"``): slot *i* listens on
  ``port + i`` and the supervisor's :attr:`addresses` feed a coordinator's
  ``--dispatch`` list — the shape behind the CI supervisor smoke.

Health: :meth:`status` returns a JSON-able snapshot (per-slot pid, uptime,
restart counts); :meth:`serve_status` optionally exposes it (plus the
attached executor's :meth:`~repro.engine.distributed.DistributedEnsembleExecutor.health`)
over a tiny stdlib HTTP endpoint, and ``genlogic serve`` folds the same
snapshot into ``/v1/stats`` as its backpressure signal.

The fabric secret (``key=`` / ``GENLOGIC_FABRIC_KEY``) is exported to every
spawned worker's environment, so a supervised fleet joins an authenticated
coordinator without per-worker configuration.
"""

from __future__ import annotations

import json
import subprocess
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import EngineError
from .backoff import Backoff, BackoffPolicy
from .distributed import parse_address, resolve_key, spawn_worker_process

__all__ = ["WorkerSupervisor", "RESTART_BACKOFF"]

#: Restart schedule for crashed workers: same family as the coordinator's
#: re-dial policy, but with a higher cap — re-execing a process is costlier
#: than re-dialing a socket, and a crash-looping worker should settle at a
#: gentle steady rate.
RESTART_BACKOFF = BackoffPolicy(initial=0.1, multiplier=2.0, maximum=10.0, jitter=0.5)


class _Slot:
    """One supervised worker position: its process and restart bookkeeping."""

    __slots__ = (
        "index",
        "listen_address",
        "process",
        "backoff",
        "spawns",
        "started_at",
        "next_start_at",
        "stabilized",
        "last_exit_code",
    )

    def __init__(self, index: int, listen_address: Optional[str], policy: BackoffPolicy):
        self.index = index
        self.listen_address = listen_address
        self.process: Optional[subprocess.Popen] = None
        self.backoff = Backoff(policy)
        self.spawns = 0
        self.started_at: Optional[float] = None
        self.next_start_at = 0.0
        self.stabilized = False
        self.last_exit_code: Optional[int] = None

    @property
    def restarts(self) -> int:
        """Spawns beyond the first — how many times this slot's worker died."""
        return max(0, self.spawns - 1)


class WorkerSupervisor:
    """Keep ``target`` local ``genlogic worker`` processes on a fabric.

    A context manager: ``with WorkerSupervisor(2, connect=addr):`` starts the
    monitor thread and stops it (terminating every supervised worker) on
    exit.  ``set_target`` rescales live — new slots spawn on the next tick,
    surplus slots are terminated.  All methods are thread-safe.
    """

    def __init__(
        self,
        target: int,
        *,
        connect: Union[str, Callable[[], Optional[str]], None] = None,
        listen_base: Optional[str] = None,
        capacity: int = 1,
        key: Optional[Any] = None,
        key_file: Optional[str] = None,
        policy: Optional[BackoffPolicy] = None,
        stable_after: float = 5.0,
        poll_interval: float = 0.2,
        python: Optional[str] = None,
    ):
        if (connect is None) == (listen_base is None):
            raise EngineError(
                "WorkerSupervisor needs exactly one of connect= (workers dial a "
                "coordinator) or listen_base= (workers listen on consecutive ports)",
            )
        if int(target) < 0:
            raise EngineError("supervisor target must be non-negative")
        self._connect = connect
        if isinstance(connect, str):
            parse_address(connect)
        self._listen_base: Optional[Tuple[str, int]] = None
        if listen_base is not None:
            self._listen_base = parse_address(listen_base)
        self._capacity = max(1, int(capacity))
        self._key = resolve_key(key, key_file)
        self._policy = policy if policy is not None else RESTART_BACKOFF
        self.stable_after = float(stable_after)
        self.poll_interval = float(poll_interval)
        self._python = python
        self._lock = threading.Lock()
        self._slots: List[_Slot] = []
        self._target = int(target)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._status_server: Optional[ThreadingHTTPServer] = None
        self._executor = None
        self.started_at: Optional[float] = None

    # -- wiring --------------------------------------------------------------------
    @property
    def target(self) -> int:
        with self._lock:
            return self._target

    @property
    def addresses(self) -> List[str]:
        """The listen-mode worker addresses (for a coordinator's ``--dispatch``)."""
        if self._listen_base is None:
            raise EngineError("addresses only exist in listen_base mode")
        host, port = self._listen_base
        with self._lock:
            return [f"{host}:{port + index}" for index in range(self._target)]

    def attach_executor(self, executor) -> None:
        """Fold ``executor.health()`` into :meth:`status` / the status endpoint."""
        self._executor = executor

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> "WorkerSupervisor":
        """Start the monitor thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return self
            self._stop.clear()
            self.started_at = time.monotonic()
            self._thread = threading.Thread(
                target=self._run,
                name="genlogic-supervisor",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop monitoring and terminate every supervised worker.  Idempotent."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)
        self._thread = None
        server, self._status_server = self._status_server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        with self._lock:
            slots, self._slots = self._slots, []
        _terminate([slot.process for slot in slots if slot.process is not None])

    def __enter__(self) -> "WorkerSupervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def set_target(self, target: int) -> None:
        """Rescale to ``target`` workers (spawn or retire on the next tick)."""
        if int(target) < 0:
            raise EngineError("supervisor target must be non-negative")
        doomed: List[subprocess.Popen] = []
        with self._lock:
            self._target = int(target)
            while len(self._slots) > self._target:
                slot = self._slots.pop()
                if slot.process is not None:
                    doomed.append(slot.process)
        _terminate(doomed)

    # -- the monitor loop ----------------------------------------------------------
    def _run(self) -> None:
        while not self._stop.is_set():
            self._tick()
            self._stop.wait(self.poll_interval)

    def _tick(self) -> None:
        """One supervision round: reap, schedule restarts, spawn, retire."""
        now = time.monotonic()
        doomed: List[subprocess.Popen] = []
        to_spawn: List[_Slot] = []
        with self._lock:
            while len(self._slots) < self._target:
                index = len(self._slots)
                listen_address = None
                if self._listen_base is not None:
                    host, port = self._listen_base
                    listen_address = f"{host}:{port + index}"
                self._slots.append(_Slot(index, listen_address, self._policy))
            while len(self._slots) > self._target:
                slot = self._slots.pop()
                if slot.process is not None:
                    doomed.append(slot.process)
            for slot in self._slots:
                if slot.process is not None:
                    if slot.process.poll() is None:
                        # A worker that stayed up long enough earns its short
                        # initial restart delay back.
                        if (
                            not slot.stabilized
                            and slot.started_at is not None
                            and now - slot.started_at >= self.stable_after
                        ):
                            slot.backoff.reset()
                            slot.stabilized = True
                        continue
                    slot.last_exit_code = slot.process.returncode
                    slot.process = None
                    slot.started_at = None
                    slot.stabilized = False
                    slot.next_start_at = now + slot.backoff.next_delay()
                if now >= slot.next_start_at:
                    to_spawn.append(slot)
        _terminate(doomed)
        for slot in to_spawn:
            self._spawn(slot)

    def _spawn(self, slot: _Slot) -> None:
        """Launch one worker for ``slot`` (outside the lock: exec is slow)."""
        connect_address: Optional[str] = None
        if slot.listen_address is None:
            connect_address = self._connect() if callable(self._connect) else self._connect
            if connect_address is None:
                return  # coordinator not bound yet; retry next tick
        try:
            process = spawn_worker_process(
                connect_address,
                listen=slot.listen_address,
                capacity=self._capacity,
                python=self._python,
                key=self._key,
            )
        except OSError:
            # exec failure (interpreter gone, fd exhaustion): back off like a
            # crash instead of retrying every tick.
            with self._lock:
                slot.next_start_at = time.monotonic() + slot.backoff.next_delay()
            return
        with self._lock:
            if self._stop.is_set() or slot not in self._slots:
                # Lost a race with stop()/set_target(): this worker has no slot.
                _terminate([process])
                return
            slot.process = process
            slot.spawns += 1
            slot.started_at = time.monotonic()
            slot.stabilized = False

    # -- health --------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """A JSON-able snapshot: target, per-slot liveness, restart counters.

        When an executor is attached (:meth:`attach_executor`) its
        :meth:`health` snapshot rides along under ``"fabric"`` — one document
        answers both "are the processes up" and "is work flowing".
        """
        now = time.monotonic()
        with self._lock:
            workers = []
            for slot in self._slots:
                alive = slot.process is not None and slot.process.poll() is None
                workers.append(
                    {
                        "slot": slot.index,
                        "pid": slot.process.pid if alive else None,
                        "alive": alive,
                        "listen_address": slot.listen_address,
                        "restarts": slot.restarts,
                        "uptime_seconds": (
                            round(now - slot.started_at, 3)
                            if alive and slot.started_at is not None
                            else 0.0
                        ),
                        "last_exit_code": slot.last_exit_code,
                    },
                )
            status: Dict[str, Any] = {
                "target": self._target,
                "mode": "listen" if self._listen_base is not None else "connect",
                "alive": sum(1 for worker in workers if worker["alive"]),
                "restarts_total": sum(worker["restarts"] for worker in workers),
                "authenticated": self._key is not None,
                "workers": workers,
                "uptime_seconds": (
                    round(now - self.started_at, 3) if self.started_at is not None else 0.0
                ),
            }
        executor = self._executor
        if executor is not None:
            try:
                status["fabric"] = executor.health()
            except Exception:  # pragma: no cover - health must never take us down
                status["fabric"] = None
        return status

    def wait_for_alive(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` workers are alive (tests and smoke scripts)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.status()["alive"] >= count:
                return
            time.sleep(0.05)
        raise EngineError(f"supervisor did not reach {count} live workers in {timeout:.0f} s")

    def serve_status(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Expose :meth:`status` as JSON on ``GET /status`` (stdlib HTTP).

        Returns the bound ``(host, port)``; port 0 picks an ephemeral one.
        The endpoint is an operational read-only peephole (health checks,
        the CI smoke), not the service API — ``/v1/stats`` is that.
        """
        if self._status_server is not None:
            raise EngineError("the status endpoint is already serving")
        supervisor = self

        class _StatusHandler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler spelling
                if self.path.split("?", 1)[0] not in ("/status", "/"):
                    self.send_error(404)
                    return
                body = json.dumps(supervisor.status(), indent=2).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # quiet by default
                pass

        server = ThreadingHTTPServer((host, port), _StatusHandler)
        server.daemon_threads = True
        self._status_server = server
        thread = threading.Thread(
            target=server.serve_forever,
            name="genlogic-supervisor-status",
            daemon=True,
        )
        thread.start()
        return server.server_address[:2]


def _terminate(processes: List[subprocess.Popen]) -> None:
    """Terminate (then kill) worker processes, reaping every one."""
    for process in processes:
        if process.poll() is None:
            try:
                process.terminate()
            except OSError:  # pragma: no cover - already gone
                pass
    for process in processes:
        try:
            process.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - last resort
            process.kill()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass
