"""Batch submission APIs of the ensemble engine.

Every multi-run study in the package (replicate studies, threshold sweeps,
robustness maps, propagation-delay scans, the CLI's ``--replicates`` modes)
routes its simulations through :func:`run_ensemble` or :func:`iter_ensemble`:

1. the caller builds a list of declarative :class:`SimulationJob` objects —
   typically via :func:`replicate_jobs` (same job, independent seeds) or
   :func:`map_over_parameters` (one job per parameter-override set);
2. seeds are fanned out deterministically from one root seed *before*
   dispatch, so neither the choice of executor nor the delivery mode can
   change the results;
3. the selected executor runs the batch — serially with a shared
   compiled-model cache, on ``workers=N`` worker processes, or across
   machines on a :class:`~repro.engine.DistributedEnsembleExecutor` — every executor
   drives the one windowed submission loop in :mod:`repro.engine.core` — and
   results are delivered either *materialized* (every trajectory, in
   submission order, inside an :class:`EnsembleResult`) or *streamed* (an
   :class:`EnsembleStream` yielding each run as it completes, or a per-run
   ``reduce`` callback whose summaries replace the trajectories), always with
   throughput/cache statistics.

Executor lifecycle: both entry points accept an ``executor`` you opened
yourself (its worker pool then survives this batch, keeping worker caches
warm for the next one) or create — and afterwards close — an ephemeral one
from ``workers=N``.

Whole studies (rather than raw job batches) are named by the canonical
:class:`~repro.engine.StudySpec` request object (see
:mod:`repro.engine.spec`), which the study APIs, the CLI and the HTTP
service all consume; :data:`StudySpec` is re-exported here for
discoverability next to the batch entry points it drives.
"""

from __future__ import annotations

import time
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..errors import EngineError
from ..stochastic.rng import RandomState, fan_out_seeds
from ..stochastic.trajectory import Trajectory
from .cache import CompiledModelCache, default_cache
from .core import BatchCacheStats, ProgressHook
from .executors import SerialExecutor, get_executor
from .jobs import EnsembleResult, EnsembleStats, SimulationJob
from .spec import StudySpec

__all__ = [
    "run_job",
    "run_ensemble",
    "iter_ensemble",
    "EnsembleStream",
    "replicate_jobs",
    "map_over_parameters",
    "StudySpec",
]

#: Per-run reducer for ``run_ensemble(..., reduce=fn)``: called with
#: ``(index, job, trajectory)`` as each run completes; its return value is
#: stored at ``EnsembleResult.reduced[index]`` and the trajectory is dropped.
EnsembleReducer = Callable[[int, SimulationJob, Trajectory], Any]

#: What one iteration of a stream yields: the engine's base streams yield
#: ``(index, job, trajectory)`` triples; a :meth:`EnsembleStream.transform`
#: stream yields whatever its mapping function returns.
StreamItem = TypeVar("StreamItem")

#: Item type of a stream derived through :meth:`EnsembleStream.transform`.
MappedItem = TypeVar("MappedItem")

#: The triple yielded by streams straight out of :func:`iter_ensemble`.
EnsembleItem = Tuple[int, SimulationJob, Trajectory]


class EnsembleStream(Generic[StreamItem]):
    """Iterator over the runs of an executing ensemble.

    Base streams (from :func:`iter_ensemble`) yield ``(index, job,
    trajectory)`` triples as runs complete; a stream derived through
    :meth:`transform` yields the *bare return value* of its mapping function
    instead.  After exhaustion (or :meth:`close`) the batch's
    :class:`EnsembleStats` are available on :attr:`stats`.  Streams are
    single-use and forward-only: each item is handed to the consumer exactly
    once and never retained by the engine, so iterating-and-discarding holds
    O(executor window) trajectories no matter how many runs the batch has.

    Streams over an ephemeral executor (one the engine created from
    ``workers=N``) close it when the stream ends, including on early exit.
    """

    def __init__(self, jobs: List[SimulationJob]):
        self.jobs = jobs
        self._stats: Optional[EnsembleStats] = None
        self._stats_source: Optional["EnsembleStream[Any]"] = None
        self._iterator: Iterator[StreamItem] = iter(())
        #: Finalizer run by close(); covers streams abandoned before their
        #: first result (a never-started generator skips its finally block).
        self._finalizer: Optional[Callable[[], None]] = None

    @property
    def stats(self) -> Optional[EnsembleStats]:
        """Execution statistics — ``None`` until the stream has finished.

        ``wall_seconds`` of a streamed batch is end-to-end delivery time,
        which includes any consumer-side work interleaved between results
        (that interleaving is the point of streaming) — so it is not directly
        comparable to the pure-execution wall time of a materialized batch.
        """
        if self._stats_source is not None:
            return self._stats_source.stats
        return self._stats

    def __iter__(self) -> "EnsembleStream[StreamItem]":
        return self

    def __next__(self) -> StreamItem:
        return next(self._iterator)

    def __len__(self) -> int:
        return len(self.jobs)

    def close(self) -> None:
        """Abandon the stream early (finalizing stats and ephemeral executors)."""
        closer = getattr(self._iterator, "close", None)
        if closer is not None:
            closer()
        if self._finalizer is not None:
            self._finalizer()

    def __enter__(self) -> "EnsembleStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def transform(
        self,
        fn: Callable[[int, SimulationJob, Trajectory], "MappedItem"],
    ) -> "EnsembleStream[MappedItem]":
        """A derived stream yielding the bare ``fn(index, job, trajectory)`` per run.

        Each iteration of the derived stream produces exactly what ``fn``
        returned — *not* an ``(index, job, trajectory)`` triple — so only
        base streams (whose items are those triples) can be transformed.
        The derived stream shares this stream's job list and statistics;
        closing either one finalizes the underlying execution.
        """
        derived: "EnsembleStream[MappedItem]" = EnsembleStream(self.jobs)
        derived._stats_source = self
        source = self

        def _mapped():
            try:
                for index, job, trajectory in source:
                    yield fn(index, job, trajectory)
            finally:
                source.close()

        derived._iterator = _mapped()
        derived._finalizer = source.close
        return derived


def run_job(
    job: SimulationJob,
    cache: Optional[CompiledModelCache] = None,
) -> Trajectory:
    """Run a single job in-process (the one-run fast path).

    Single runs still go through the compiled-model cache, so e.g. repeated
    :meth:`LogicExperiment.run` calls on the same model compile it once.
    """
    return SerialExecutor().run_jobs([job], cache=cache)[0]


def _batch_stats(
    chosen,
    n_jobs: int,
    wall: float,
    cache: CompiledModelCache,
    hits_before: int,
    misses_before: int,
    counter: Optional[BatchCacheStats] = None,
) -> EnsembleStats:
    """Assemble the statistics of one executed batch.

    The engine's own executors count each batch's cache hits/misses into a
    per-batch ``counter``, so concurrent batches on one shared executor (the
    :func:`repro.engine.gather_studies` pattern) report their own numbers.
    Third-party executors fall back to the legacy executor-global snapshot
    (``last_cache_hits``) or, failing that, the in-process cache delta.
    """
    if counter is not None:
        cache_hits = counter.hits
        cache_misses = counter.misses
    elif hasattr(chosen, "last_cache_hits"):
        cache_hits = chosen.last_cache_hits
        cache_misses = chosen.last_cache_misses
    else:
        cache_hits = cache.hits - hits_before
        cache_misses = cache.misses - misses_before
    return EnsembleStats(
        n_jobs=n_jobs,
        executor=getattr(chosen, "name", type(chosen).__name__),
        workers=getattr(chosen, "workers", 1),
        wall_seconds=wall,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


def _batching_kwargs(chosen, batch_size: Optional[int]) -> Dict[str, int]:
    """``{"batch_size": B}`` when batching is requested and supported.

    ``batch_size=1`` (the default) adds nothing, so third-party executors
    without the keyword keep working; asking for ``B > 1`` on an executor
    that cannot batch is an error rather than a silent slowdown.
    """
    size = 1 if batch_size is None else int(batch_size)
    if size < 1:
        raise EngineError("batch_size must be a positive integer")
    if size == 1:
        return {}
    if not getattr(chosen, "supports_job_batching", False):
        raise EngineError(
            f"executor {getattr(chosen, 'name', type(chosen).__name__)!r} does not "
            "support batch_size > 1",
        )
    return {"batch_size": size}


def iter_ensemble(
    jobs: Sequence[SimulationJob],
    *,
    workers: int = 1,
    executor=None,
    cache: Optional[CompiledModelCache] = None,
    progress: Optional[ProgressHook] = None,
    ordered: bool = True,
    batch_size: int = 1,
) -> EnsembleStream:
    """Execute a batch of jobs, streaming each result as it completes.

    The incremental counterpart of :func:`run_ensemble`: returns an
    :class:`EnsembleStream` yielding ``(index, job, trajectory)`` per run, so
    the caller can analyze and discard each trajectory — peak memory is
    bounded by the executor's in-flight window instead of the batch size.

    With ``ordered=True`` (the default) results arrive in submission order;
    ``ordered=False`` delivers them in completion order (lowest latency; the
    index says which job each trajectory belongs to).  Either mode yields
    trajectories bit-identical to the materialized path.  ``executor`` keeps
    its worker pool alive after the stream; an ephemeral executor built from
    ``workers=N`` is closed when the stream ends.

    ``batch_size=B`` packs consecutive same-configuration jobs (a replicate
    fan-out) into lockstep batches of up to B replicates per dispatch —
    results, order and bits are unchanged, only dispatch and result-transport
    overhead is amortized ~B×.
    """
    jobs = list(jobs)
    if not jobs:
        raise EngineError("iter_ensemble needs at least one job")
    owns_executor = executor is None
    chosen = executor if executor is not None else get_executor(workers)
    cache = cache if cache is not None else default_cache()
    stream: EnsembleStream[EnsembleItem] = EnsembleStream(jobs)
    counter = BatchCacheStats() if getattr(chosen, "supports_batch_stats", False) else None
    iter_kwargs: Dict[str, Any] = {} if counter is None else {"batch_stats": counter}
    iter_kwargs.update(_batching_kwargs(chosen, batch_size))
    hits_before, misses_before = cache.hits, cache.misses
    opened = time.perf_counter()

    def _finalize():
        if stream._stats is None:
            wall = time.perf_counter() - opened
            stream._stats = _batch_stats(
                chosen,
                len(jobs),
                wall,
                cache,
                hits_before,
                misses_before,
                counter=counter,
            )
        if owns_executor:
            chosen.close()

    def _drive():
        try:
            for index, trajectory in chosen.iter_jobs(
                jobs,
                cache=cache,
                progress=progress,
                ordered=ordered,
                **iter_kwargs,
            ):
                yield index, jobs[index], trajectory
        finally:
            _finalize()

    stream._iterator = _drive()
    # close() must finalize even when the stream is abandoned before its
    # first result: closing a never-started generator skips the finally.
    stream._finalizer = _finalize
    return stream


def run_ensemble(
    jobs: Sequence[SimulationJob],
    *,
    workers: int = 1,
    executor=None,
    cache: Optional[CompiledModelCache] = None,
    progress: Optional[ProgressHook] = None,
    reduce: Optional[EnsembleReducer] = None,
    batch_size: int = 1,
) -> EnsembleResult:
    """Execute a batch of jobs and return results plus statistics.

    Parameters
    ----------
    jobs:
        The batch, in the order results should come back.
    workers:
        Parallelism: ``1`` selects the serial executor, ``N > 1`` a pool of
        ``N`` worker processes.  Ignored when ``executor`` is given.
    executor:
        An explicit executor instance (anything with ``run_jobs`` /
        ``iter_jobs``).  Its lifecycle belongs to the caller: the worker pool
        stays open after this batch, so the next batch on the same executor
        hits warm worker caches.  Without it, an ephemeral executor is built
        from ``workers`` and closed before returning.
    cache:
        Compiled-model cache for in-process execution (defaults to the shared
        process-wide cache).
    progress:
        Hook called after each completed run with ``(done, total, job)``.
    reduce:
        Per-run reducer ``fn(index, job, trajectory) -> summary``.  When
        given, execution streams: each trajectory is reduced as it completes
        and dropped, and the returned result is *reduced* — ``.reduced[i]``
        holds job ``i``'s summary, ``.trajectories`` is ``None`` — keeping
        peak memory O(executor window) instead of O(n_jobs).  The reported
        ``wall_seconds`` then covers execution *and* the interleaved reducer
        calls (see :attr:`EnsembleStream.stats`).
    batch_size:
        Pack consecutive same-configuration jobs into lockstep batches of up
        to this many replicates per dispatch (default 1: one job per
        dispatch).  Purely a dispatch/transport amortization — results stay
        bit-identical and in the same order.
    """
    jobs = list(jobs)
    if not jobs:
        raise EngineError("run_ensemble needs at least one job")
    if reduce is not None:
        stream = iter_ensemble(
            jobs,
            workers=workers,
            executor=executor,
            cache=cache,
            progress=progress,
            ordered=False,
            batch_size=batch_size,
        )
        reduced: List[Any] = [None] * len(jobs)
        with stream:
            for index, job, trajectory in stream:
                reduced[index] = reduce(index, job, trajectory)
        return EnsembleResult(
            jobs=jobs,
            trajectories=None,
            stats=stream.stats,
            reduced=reduced,
        )
    owns_executor = executor is None
    chosen = executor if executor is not None else get_executor(workers)
    cache = cache if cache is not None else default_cache()
    counter = BatchCacheStats() if getattr(chosen, "supports_batch_stats", False) else None
    run_kwargs: Dict[str, Any] = {} if counter is None else {"batch_stats": counter}
    run_kwargs.update(_batching_kwargs(chosen, batch_size))
    hits_before, misses_before = cache.hits, cache.misses
    started = time.perf_counter()
    try:
        trajectories = chosen.run_jobs(jobs, cache=cache, progress=progress, **run_kwargs)
    finally:
        if owns_executor:
            chosen.close()
    wall = time.perf_counter() - started
    stats = _batch_stats(
        chosen,
        len(jobs),
        wall,
        cache,
        hits_before,
        misses_before,
        counter=counter,
    )
    return EnsembleResult(jobs=jobs, trajectories=trajectories, stats=stats)


def replicate_jobs(
    job: SimulationJob,
    n_replicates: int,
    seed: RandomState = None,
    tags: Optional[Sequence[Any]] = None,
) -> List[SimulationJob]:
    """``n_replicates`` copies of ``job`` with independent fanned-out seeds.

    The fan-out matches :func:`repro.stochastic.spawn_rngs` exactly, so a
    study refactored from a private seed loop onto the engine reproduces its
    historical trajectories bit for bit.  Each clone keeps the template's
    ``tag`` unless explicit per-replicate ``tags`` are given (``meta`` is
    always preserved); the replicate index is the job's position in the
    returned list.
    """
    if n_replicates < 1:
        raise EngineError("replicate_jobs needs at least one replicate")
    if tags is not None and len(tags) != n_replicates:
        raise EngineError("tags must have one entry per replicate")
    seeds = fan_out_seeds(seed, n_replicates)
    clones: List[SimulationJob] = []
    for index, child in enumerate(seeds):
        clones.append(
            SimulationJob(
                model=job.model,
                t_end=job.t_end,
                simulator=job.simulator,
                schedule=job.schedule,
                sample_interval=job.sample_interval,
                parameter_overrides=job.parameter_overrides,
                initial_state=job.initial_state,
                record_species=job.record_species,
                seed=child,
                tag=tags[index] if tags is not None else job.tag,
                meta=job.meta,
            ),
        )
    return clones


def map_over_parameters(
    job: SimulationJob,
    parameter_grid: Sequence[Dict[str, float]],
    *,
    seed: RandomState = None,
    workers: int = 1,
    executor=None,
    cache: Optional[CompiledModelCache] = None,
    progress: Optional[ProgressHook] = None,
    reduce: Optional[EnsembleReducer] = None,
    batch_size: int = 1,
) -> EnsembleResult:
    """Run ``job`` once per parameter-override set in ``parameter_grid``.

    Each entry of the grid is merged over the template job's own overrides and
    becomes that run's compiled-model cache key, so sweeping a parameter
    compiles each distinct override set once.  Every run gets an independent
    seed fanned out from ``seed``; each job is tagged with its grid entry.
    ``executor`` and ``reduce`` behave exactly as in :func:`run_ensemble`:
    an opened executor keeps its (warm) worker pool across sweeps, and a
    reducer streams the sweep, keeping per-run summaries instead of
    trajectories.  ``batch_size`` is forwarded too, though a sweep rarely
    benefits: grid entries differ in overrides, and only *consecutive
    same-configuration* jobs pack into one lockstep batch.
    """
    grid = [dict(entry) for entry in parameter_grid]
    if not grid:
        raise EngineError("map_over_parameters needs a non-empty parameter grid")
    seeds = fan_out_seeds(seed, len(grid))
    jobs: List[SimulationJob] = []
    for entry, child in zip(grid, seeds):
        overrides = dict(job.parameter_overrides or {})
        overrides.update(entry)
        jobs.append(
            SimulationJob(
                model=job.model,
                t_end=job.t_end,
                simulator=job.simulator,
                schedule=job.schedule,
                sample_interval=job.sample_interval,
                parameter_overrides=overrides or None,
                initial_state=job.initial_state,
                record_species=job.record_species,
                seed=child,
                tag=entry,
                meta=job.meta,
            ),
        )
    return run_ensemble(
        jobs,
        workers=workers,
        executor=executor,
        cache=cache,
        progress=progress,
        reduce=reduce,
        batch_size=batch_size,
    )
