"""Batch submission APIs of the ensemble engine.

Every multi-run study in the package (replicate studies, threshold sweeps,
robustness maps, propagation-delay scans, the CLI's ``--replicates`` modes)
routes its simulations through :func:`run_ensemble`:

1. the caller builds a list of declarative :class:`SimulationJob` objects —
   typically via :func:`replicate_jobs` (same job, independent seeds) or
   :func:`map_over_parameters` (one job per parameter-override set);
2. seeds are fanned out deterministically from one root seed *before*
   dispatch, so the choice of executor cannot change the results;
3. the selected executor runs the batch — serially with a shared
   compiled-model cache, or on ``jobs=N`` worker processes — and the
   trajectories come back in submission order inside an
   :class:`EnsembleResult` together with throughput/cache statistics.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import EngineError
from ..stochastic.rng import RandomState, fan_out_seeds
from ..stochastic.trajectory import Trajectory
from .cache import CompiledModelCache, default_cache
from .executors import ProgressHook, SerialExecutor, get_executor
from .jobs import EnsembleResult, EnsembleStats, SimulationJob

__all__ = [
    "run_job",
    "run_ensemble",
    "replicate_jobs",
    "map_over_parameters",
]


def run_job(
    job: SimulationJob, cache: Optional[CompiledModelCache] = None
) -> Trajectory:
    """Run a single job in-process (the one-run fast path).

    Single runs still go through the compiled-model cache, so e.g. repeated
    :meth:`LogicExperiment.run` calls on the same model compile it once.
    """
    return SerialExecutor().run_jobs([job], cache=cache)[0]


def run_ensemble(
    jobs: Sequence[SimulationJob],
    *,
    workers: int = 1,
    executor=None,
    cache: Optional[CompiledModelCache] = None,
    progress: Optional[ProgressHook] = None,
) -> EnsembleResult:
    """Execute a batch of jobs and return trajectories plus statistics.

    Parameters
    ----------
    jobs:
        The batch, in the order results should come back.
    workers:
        Parallelism: ``1`` selects the serial executor, ``N > 1`` a pool of
        ``N`` worker processes.  Ignored when ``executor`` is given.
    executor:
        An explicit executor instance (anything with a ``run_jobs`` method).
    cache:
        Compiled-model cache for in-process execution (defaults to the shared
        process-wide cache).
    progress:
        Hook called after each completed run with ``(done, total, job)``.
    """
    jobs = list(jobs)
    if not jobs:
        raise EngineError("run_ensemble needs at least one job")
    chosen = executor if executor is not None else get_executor(workers)
    cache = cache if cache is not None else default_cache()
    hits_before, misses_before = cache.hits, cache.misses
    started = time.perf_counter()
    trajectories = chosen.run_jobs(jobs, cache=cache, progress=progress)
    wall = time.perf_counter() - started
    # In-process executors leave their footprint on `cache`; pool executors
    # never touch it and report the worker-side statistics of the batch.
    if hasattr(chosen, "last_cache_hits"):
        cache_hits = chosen.last_cache_hits
        cache_misses = chosen.last_cache_misses
    else:
        cache_hits = cache.hits - hits_before
        cache_misses = cache.misses - misses_before
    stats = EnsembleStats(
        n_jobs=len(jobs),
        executor=getattr(chosen, "name", type(chosen).__name__),
        workers=getattr(chosen, "workers", 1),
        wall_seconds=wall,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )
    return EnsembleResult(jobs=jobs, trajectories=trajectories, stats=stats)


def replicate_jobs(
    job: SimulationJob,
    n_replicates: int,
    seed: RandomState = None,
    tags: Optional[Sequence[Any]] = None,
) -> List[SimulationJob]:
    """``n_replicates`` copies of ``job`` with independent fanned-out seeds.

    The fan-out matches :func:`repro.stochastic.spawn_rngs` exactly, so a
    study refactored from a private seed loop onto the engine reproduces its
    historical trajectories bit for bit.  Each clone keeps the template's
    ``tag`` unless explicit per-replicate ``tags`` are given (``meta`` is
    always preserved); the replicate index is the job's position in the
    returned list.
    """
    if n_replicates < 1:
        raise EngineError("replicate_jobs needs at least one replicate")
    if tags is not None and len(tags) != n_replicates:
        raise EngineError("tags must have one entry per replicate")
    seeds = fan_out_seeds(seed, n_replicates)
    clones: List[SimulationJob] = []
    for index, child in enumerate(seeds):
        clones.append(
            SimulationJob(
                model=job.model,
                t_end=job.t_end,
                simulator=job.simulator,
                schedule=job.schedule,
                sample_interval=job.sample_interval,
                parameter_overrides=job.parameter_overrides,
                initial_state=job.initial_state,
                record_species=job.record_species,
                seed=child,
                tag=tags[index] if tags is not None else job.tag,
                meta=job.meta,
            )
        )
    return clones


def map_over_parameters(
    job: SimulationJob,
    parameter_grid: Sequence[Dict[str, float]],
    *,
    seed: RandomState = None,
    workers: int = 1,
    cache: Optional[CompiledModelCache] = None,
    progress: Optional[ProgressHook] = None,
) -> EnsembleResult:
    """Run ``job`` once per parameter-override set in ``parameter_grid``.

    Each entry of the grid is merged over the template job's own overrides and
    becomes that run's compiled-model cache key, so sweeping a parameter
    compiles each distinct override set once.  Every run gets an independent
    seed fanned out from ``seed``; each job is tagged with its grid entry.
    """
    grid = [dict(entry) for entry in parameter_grid]
    if not grid:
        raise EngineError("map_over_parameters needs a non-empty parameter grid")
    seeds = fan_out_seeds(seed, len(grid))
    jobs: List[SimulationJob] = []
    for entry, child in zip(grid, seeds):
        overrides = dict(job.parameter_overrides or {})
        overrides.update(entry)
        jobs.append(
            SimulationJob(
                model=job.model,
                t_end=job.t_end,
                simulator=job.simulator,
                schedule=job.schedule,
                sample_interval=job.sample_interval,
                parameter_overrides=overrides or None,
                initial_state=job.initial_state,
                record_species=job.record_species,
                seed=child,
                tag=entry,
                meta=job.meta,
            )
        )
    return run_ensemble(
        jobs, workers=workers, cache=cache, progress=progress
    )
