"""Asyncio execution layer of the ensemble engine.

The synchronous engine blocks while a batch executes — fine for scripts and
the CLI, fatal inside an event loop (a web service running a replicate study
per request would stall every other request for the duration of the study).
This module is the non-blocking facade over the same execution machinery:

* :func:`aiter_ensemble` — the async twin of :func:`repro.engine.iter_ensemble`:
  an async generator yielding ``(index, job, trajectory)`` as runs complete,
  with the same bounded ``2 * capacity`` submission window, the same
  ordered/completion-order delivery modes, and the same bit-identical-seeds
  contract (seeds are fanned out before dispatch, so the async path produces
  exactly the trajectories the sync path would);
* :func:`arun_ensemble` — the async twin of :func:`repro.engine.run_ensemble`,
  materialized or ``reduce=``-streamed (the reducer may be a plain function
  or a coroutine function), returning the same :class:`EnsembleResult`;
* :class:`AsyncEnsembleExecutor` — an ``async with`` facade that owns one
  persistent executor (a process pool by default), so many async batches
  share warm worker-side compiled-model caches;
* :func:`gather_studies` — N independent studies (replicate studies, sweeps,
  threshold scans ...) executing *concurrently*, multiplexed over ONE shared
  warm pool.

How it stays non-blocking — and why it is now genuinely thin: there is
exactly ONE windowed submission loop in the engine
(:func:`repro.engine.core.iter_windowed`), shared by every transport, and the
async layer simply pulls that synchronous stream from worker threads via
:func:`asyncio.to_thread`.  Each pull blocks a worker thread, never the loop,
so the async path *is* the sync path — same code, same window accounting,
same delivery buffering, bit-identical results — rather than a re-implemented
mirror of it.  Any executor implementing the
:class:`~repro.engine.core.ExecutorBackend` protocol (serial, process pool,
socket-distributed) therefore gets async execution for free.  Each batch
counts its cache statistics into its own
:class:`~repro.engine.core.BatchCacheStats`, which is what makes the
concurrent-studies pattern report per-study numbers instead of clobbered
executor-global ones.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from contextlib import aclosing
from typing import (
    Any,
    AsyncIterator,
    Callable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import EngineError
from ..stochastic.trajectory import Trajectory
from .api import EnsembleReducer, _batch_stats, _batching_kwargs
from .cache import CompiledModelCache, default_cache
from .core import BatchCacheStats, ProgressHook
from .executors import ProcessPoolEnsembleExecutor, get_executor
from .jobs import EnsembleResult, SimulationJob

__all__ = [
    "AsyncEnsembleExecutor",
    "aiter_ensemble",
    "arun_ensemble",
    "gather_studies",
]

#: A study, as :func:`gather_studies` sees it: a callable taking the shared
#: executor as its only argument.  Plain callables (e.g.
#: ``lambda ex: run_replicate_study(circuit, 20, executor=ex)``) run on a
#: worker thread; coroutine functions are awaited on the loop directly.
#: A :class:`~repro.engine.StudySpec` is accepted directly as shorthand for
#: ``lambda ex: run_replicate_study(spec, executor=ex)``.
Study = Callable[[Any], Any]


class AsyncEnsembleExecutor:
    """``async with`` facade over one persistent synchronous executor.

    Owns (or wraps) an executor — a :class:`ProcessPoolEnsembleExecutor` when
    built from ``workers=N``, or any :class:`~repro.engine.core.ExecutorBackend`
    adapter you pass in (including a
    :class:`~repro.engine.distributed.DistributedEnsembleExecutor`) — whose
    single live transport serves every batch submitted through the async
    APIs, so worker-side compiled-model caches stay warm across batches and
    across *concurrent* studies.  Opening and closing happen on a worker
    thread — pool startup and ``shutdown(wait=True)`` both block, and neither
    should stall the event loop.

    Wrapping an executor you opened yourself leaves its lifecycle with you:
    ``async with AsyncEnsembleExecutor(executor=mine)`` will not close
    ``mine`` on exit.
    """

    name = "async-process-pool"

    def __init__(
        self,
        workers: Optional[int] = None,
        executor=None,
    ):
        if (workers is None) == (executor is None):
            raise EngineError(
                "AsyncEnsembleExecutor needs exactly one of workers=N "
                "(to own a new pool executor) or executor= (to wrap yours)",
            )
        self._owns = executor is None
        self._executor = (
            executor if executor is not None else ProcessPoolEnsembleExecutor(workers)
        )

    @property
    def sync_executor(self):
        """The wrapped synchronous executor (for sync studies sharing the pool)."""
        return self._executor

    @property
    def workers(self) -> int:
        return self._executor.workers

    @property
    def is_open(self) -> bool:
        return getattr(self._executor, "is_open", True)

    async def aopen(self) -> "AsyncEnsembleExecutor":
        """Start the worker pool now, off-loop (otherwise it starts on first use)."""
        await asyncio.to_thread(self._executor.open)
        return self

    async def aclose(self) -> None:
        """Shut the pool down off-loop — only if this facade owns it."""
        if self._owns:
            await asyncio.to_thread(self._executor.close)

    async def __aenter__(self) -> "AsyncEnsembleExecutor":
        return await self.aopen()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


def _resolve_sync(executor):
    """The synchronous executor behind any accepted ``executor=`` argument."""
    if isinstance(executor, AsyncEnsembleExecutor):
        return executor.sync_executor
    return executor


#: Exhaustion marker for pulling a sync iterator from worker threads.
_EXHAUSTED = object()


async def _aclose_iterator(iterator) -> None:
    """Close a sync generator from the event loop, off-loop and race-safely.

    A cancelled pull may leave the generator executing ``next()`` on its
    worker thread; ``close()`` then raises ``ValueError`` ("generator already
    executing") until that pull returns.  Retry until the close lands — this
    is what guarantees an abandoned stream cancels its in-flight work and
    closes its transport deterministically, not at garbage collection.
    """
    closer = getattr(iterator, "close", None)
    if closer is None:
        return
    while True:
        try:
            await asyncio.to_thread(closer)
            return
        except ValueError:
            await asyncio.sleep(0.01)


async def aiter_ensemble(
    jobs: Sequence[SimulationJob],
    *,
    workers: int = 1,
    executor=None,
    cache: Optional[CompiledModelCache] = None,
    progress: Optional[ProgressHook] = None,
    ordered: bool = True,
    batch_stats: Optional[BatchCacheStats] = None,
    batch_size: int = 1,
) -> AsyncIterator[Tuple[int, SimulationJob, Trajectory]]:
    """Async generator over an executing ensemble: ``(index, job, trajectory)``.

    The asyncio twin of :func:`repro.engine.iter_ensemble`, safe to drive
    from inside an event loop: awaiting the next result never blocks the
    loop, because each pull of the underlying synchronous stream executes on
    a worker thread.  Submission, delivery order and seeds ARE the sync
    stream — the same :func:`repro.engine.core.iter_windowed` loop runs
    underneath, so at most ``2 * capacity`` undelivered results are in
    flight, ``ordered=True`` delivers in submission order / ``False`` in
    completion order, and trajectories are bit-identical to
    :func:`repro.engine.run_ensemble` for the same job list because every
    seed was fanned out before dispatch.

    ``executor`` may be any synchronous executor (serial, process-pool,
    distributed) or an :class:`AsyncEnsembleExecutor` facade; its lifecycle
    stays with the caller.  Without one, an ephemeral executor is built from
    ``workers=N`` — lazily, on the first ``async for`` pull, so a generator
    that is never started creates nothing — and closed (off-loop) when the
    generator finishes *or is closed early*: ``aclose()`` cancels in-flight
    runs and closes the ephemeral executor deterministically.
    ``batch_stats`` collects this batch's cache counters for callers
    assembling their own :class:`EnsembleStats`.  ``batch_size=B`` packs
    consecutive same-configuration jobs into lockstep batches of up to B
    replicates per dispatch, exactly as in the sync API — results, order and
    bits are unchanged.

    A ``break`` out of ``async for`` does *not* finalize an async generator
    immediately — cleanup would wait for garbage collection.  When you may
    exit early, iterate under :func:`contextlib.aclosing`::

        async with aclosing(aiter_ensemble(jobs, workers=8)) as stream:
            async for index, job, trajectory in stream:
                break  # cleanup now runs on leaving the with-block
    """
    jobs = list(jobs)
    if not jobs:
        raise EngineError("aiter_ensemble needs at least one job")
    owns_executor = executor is None
    chosen = _resolve_sync(executor) if executor is not None else get_executor(workers)
    cache = cache if cache is not None else default_cache()
    stats = batch_stats if batch_stats is not None else BatchCacheStats()
    iter_kwargs = _batching_kwargs(chosen, batch_size)
    if getattr(chosen, "supports_batch_stats", False):
        iter_kwargs["batch_stats"] = stats
        source = chosen.iter_jobs(
            jobs, cache=cache, progress=progress, ordered=ordered, **iter_kwargs
        )
    else:
        # Third-party executors that predate the ``batch_stats`` keyword are
        # driven without it (their batches simply report no cache statistics).
        source = chosen.iter_jobs(
            jobs, cache=cache, progress=progress, ordered=ordered, **iter_kwargs
        )
    iterator = iter(source)
    try:
        while True:
            item = await asyncio.to_thread(next, iterator, _EXHAUSTED)
            if item is _EXHAUSTED:
                break
            index, trajectory = item
            yield index, jobs[index], trajectory
    finally:
        await _aclose_iterator(iterator)
        if owns_executor:
            await asyncio.to_thread(chosen.close)


async def arun_ensemble(
    jobs: Sequence[SimulationJob],
    *,
    workers: int = 1,
    executor=None,
    cache: Optional[CompiledModelCache] = None,
    progress: Optional[ProgressHook] = None,
    reduce: Optional[EnsembleReducer] = None,
    batch_size: int = 1,
) -> EnsembleResult:
    """Execute a batch without blocking the event loop; same result as sync.

    The asyncio twin of :func:`repro.engine.run_ensemble`: materializes every
    trajectory (in submission order) into an :class:`EnsembleResult`, or —
    with ``reduce=`` — streams, storing per-run summaries at ``.reduced`` and
    dropping each trajectory on completion.  The reducer may be a plain
    function or a coroutine function (awaited per run on the loop).
    Trajectories and statistics match the synchronous API for the same jobs,
    executor kind and root seed.
    """
    jobs = list(jobs)
    if not jobs:
        raise EngineError("arun_ensemble needs at least one job")
    owns_executor = executor is None
    chosen = _resolve_sync(executor) if executor is not None else get_executor(workers)
    cache = cache if cache is not None else default_cache()
    counter = BatchCacheStats() if getattr(chosen, "supports_batch_stats", False) else None
    trajectories: Optional[List[Optional[Trajectory]]] = None
    reduced: Optional[List[Any]] = None
    if reduce is not None:
        reduced = [None] * len(jobs)
    else:
        trajectories = [None] * len(jobs)
    hits_before, misses_before = cache.hits, cache.misses
    started = time.perf_counter()
    try:
        # aclosing: a reducer that raises must still cancel in-flight runs
        # now, not at garbage collection.
        async with aclosing(
            aiter_ensemble(
                jobs,
                executor=chosen,
                cache=cache,
                progress=progress,
                ordered=False,
                batch_stats=counter,
                batch_size=batch_size,
            ),
        ) as stream:
            async for index, job, trajectory in stream:
                if reduce is not None:
                    summary = reduce(index, job, trajectory)
                    if inspect.isawaitable(summary):
                        summary = await summary
                    reduced[index] = summary
                else:
                    trajectories[index] = trajectory
    finally:
        if owns_executor:
            await asyncio.to_thread(chosen.close)
    wall = time.perf_counter() - started
    stats = _batch_stats(
        chosen,
        len(jobs),
        wall,
        cache,
        hits_before,
        misses_before,
        counter=counter,
    )
    return EnsembleResult(jobs=jobs, trajectories=trajectories, stats=stats, reduced=reduced)


async def gather_studies(
    studies: Sequence[Study],
    *,
    workers: Optional[int] = None,
    executor=None,
    return_exceptions: bool = False,
) -> List[Any]:
    """Run independent studies concurrently over ONE shared warm pool.

    Each study is a callable receiving the shared synchronous executor as its
    only argument — e.g. ``lambda ex: run_replicate_study(circuit, 20,
    rng=7, executor=ex)`` or ``lambda ex: threshold_sweep(circuit, values,
    executor=ex)``.  Plain callables run on worker threads (their blocking
    waits never stall the loop); coroutine functions are awaited on the loop
    and may use :func:`arun_ensemble` / :func:`aiter_ensemble` directly.
    Every study submits its batches to the same persistent transport, so each
    distinct model compiles once per worker *across all studies* — every
    study after the first runs on warm worker-side caches — and per-batch
    :class:`~repro.engine.core.BatchCacheStats` keep each study's reported
    statistics its own.

    A :class:`StudySpec` may be passed in place of a callable — it runs as
    ``run_replicate_study(spec, executor=shared)``, which is how the HTTP
    service submits its requests.

    ``executor`` (any synchronous executor or an
    :class:`AsyncEnsembleExecutor`) is shared and left open; without one, an
    ephemeral executor is built from ``workers`` (serial when ``None``/1) and
    closed when all studies finish.  Results come back in ``studies`` order.
    Studies running on threads cannot be cancelled, so a failing study never
    aborts its siblings: every study always runs to completion, then either
    the full result list is returned (``return_exceptions=True`` puts a
    failed study's exception in its slot) or the first failure is re-raised.
    """
    from .spec import StudySpec

    def _spec_study(spec: StudySpec) -> Study:
        def run(shared):
            from ..analysis.replicates import run_replicate_study

            return run_replicate_study(spec, executor=shared)

        return run

    studies = [
        _spec_study(study) if isinstance(study, StudySpec) else study for study in studies
    ]
    if not studies:
        raise EngineError("gather_studies needs at least one study")
    owns_executor = executor is None
    chosen = _resolve_sync(executor) if executor is not None else get_executor(workers or 1)

    async def _run_study(study: Study) -> Any:
        if asyncio.iscoroutinefunction(study):
            return await study(chosen)
        result = await asyncio.to_thread(study, chosen)
        if inspect.isawaitable(result):
            return await result
        return result

    try:
        # Always gather with return_exceptions=True: raising early would
        # cancel sibling *tasks* but not their threads, and the finally below
        # would then shut the shared pool down under studies still running.
        results = await asyncio.gather(
            *(_run_study(study) for study in studies),
            return_exceptions=True,
        )
    finally:
        if owns_executor:
            await asyncio.to_thread(chosen.close)
    if not return_exceptions:
        for result in results:
            if isinstance(result, BaseException):
                raise result
    return results
