"""Asyncio execution layer of the ensemble engine.

The synchronous engine blocks while a batch executes — fine for scripts and
the CLI, fatal inside an event loop (a web service running a replicate study
per request would stall every other request for the duration of the study).
This module is the non-blocking facade over the same execution machinery:

* :func:`aiter_ensemble` — the async twin of :func:`repro.engine.iter_ensemble`:
  an async generator yielding ``(index, job, trajectory)`` as runs complete,
  with the same bounded ``2 * workers`` submission window, the same
  ordered/completion-order delivery modes, and the same bit-identical-seeds
  contract (seeds are fanned out before dispatch, so the async path produces
  exactly the trajectories the sync path would);
* :func:`arun_ensemble` — the async twin of :func:`repro.engine.run_ensemble`,
  materialized or ``reduce=``-streamed (the reducer may be a plain function
  or a coroutine function), returning the same :class:`EnsembleResult`;
* :class:`AsyncEnsembleExecutor` — an ``async with`` facade that owns one
  persistent :class:`ProcessPoolEnsembleExecutor` pool, so many async batches
  share warm worker-side compiled-model caches;
* :func:`gather_studies` — N independent studies (replicate studies, sweeps,
  threshold scans ...) executing *concurrently*, multiplexed over ONE shared
  warm pool.

How it stays non-blocking: pool runs are submitted to the persistent
``concurrent.futures`` pool and their futures bridged onto the event loop
with :func:`asyncio.wrap_future`, so awaiting a batch costs the loop nothing;
serial (``workers=1``) runs and the blocking phases of synchronous study
functions execute on worker threads via :func:`asyncio.to_thread`.  Each
batch counts its cache statistics into its own
:class:`~repro.engine.executors.BatchCacheStats`, which is what makes the
concurrent-studies pattern report per-study numbers instead of clobbered
executor-global ones.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import inspect
import time
from contextlib import aclosing
from typing import (
    Any,
    AsyncIterator,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import EngineError
from ..stochastic.trajectory import Trajectory
from .api import EnsembleReducer, _batch_stats
from .cache import CompiledModelCache, default_cache
from .executors import (
    BatchCacheStats,
    ProcessPoolEnsembleExecutor,
    ProgressHook,
    SerialExecutor,
    _simulate_payload,
    get_executor,
)
from .jobs import EnsembleResult, SimulationJob

__all__ = [
    "AsyncEnsembleExecutor",
    "aiter_ensemble",
    "arun_ensemble",
    "gather_studies",
]

#: A study, as :func:`gather_studies` sees it: a callable taking the shared
#: executor as its only argument.  Plain callables (e.g.
#: ``lambda ex: run_replicate_study(circuit, 20, executor=ex)``) run on a
#: worker thread; coroutine functions are awaited on the loop directly.
Study = Callable[[Any], Any]


class AsyncEnsembleExecutor:
    """``async with`` facade over one persistent process-pool executor.

    Owns (or wraps) a :class:`ProcessPoolEnsembleExecutor` whose single live
    pool serves every batch submitted through the async APIs, so worker-side
    compiled-model caches stay warm across batches and across *concurrent*
    studies.  Opening and closing happen on a worker thread — pool startup
    and ``shutdown(wait=True)`` both block, and neither should stall the
    event loop.

    Wrapping an executor you opened yourself leaves its lifecycle with you:
    ``async with AsyncEnsembleExecutor(executor=mine)`` will not close
    ``mine`` on exit.
    """

    name = "async-process-pool"

    def __init__(
        self,
        workers: Optional[int] = None,
        executor: Optional[ProcessPoolEnsembleExecutor] = None,
    ):
        if (workers is None) == (executor is None):
            raise EngineError(
                "AsyncEnsembleExecutor needs exactly one of workers=N "
                "(to own a new pool executor) or executor= (to wrap yours)",
            )
        self._owns = executor is None
        self._executor = (
            executor if executor is not None else ProcessPoolEnsembleExecutor(workers)
        )

    @property
    def sync_executor(self) -> ProcessPoolEnsembleExecutor:
        """The wrapped synchronous executor (for sync studies sharing the pool)."""
        return self._executor

    @property
    def workers(self) -> int:
        return self._executor.workers

    @property
    def is_open(self) -> bool:
        return self._executor.is_open

    async def aopen(self) -> "AsyncEnsembleExecutor":
        """Start the worker pool now, off-loop (otherwise it starts on first use)."""
        await asyncio.to_thread(self._executor.open)
        return self

    async def aclose(self) -> None:
        """Shut the pool down off-loop — only if this facade owns it."""
        if self._owns:
            await asyncio.to_thread(self._executor.close)

    async def __aenter__(self) -> "AsyncEnsembleExecutor":
        return await self.aopen()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()


def _resolve_sync(executor):
    """The synchronous executor behind any accepted ``executor=`` argument."""
    if isinstance(executor, AsyncEnsembleExecutor):
        return executor.sync_executor
    return executor


async def _drive_pool(
    executor: ProcessPoolEnsembleExecutor,
    jobs: List[SimulationJob],
    *,
    ordered: bool,
    progress: Optional[ProgressHook],
    stats: BatchCacheStats,
) -> AsyncIterator[Tuple[int, Trajectory]]:
    """Submit jobs to the persistent pool, awaiting results on the event loop.

    The mirror image of :meth:`ProcessPoolEnsembleExecutor.iter_jobs` with
    ``concurrent.futures.wait`` replaced by ``asyncio.wait`` over
    :func:`asyncio.wrap_future` bridges: the same ``2 * workers`` in-flight
    window, the same ordered/completion-order delivery, the same
    cancel-on-exit — but zero blocking of the loop between completions.
    """
    # Model pickling and pool startup both block; keep them off the loop.
    payloads = await asyncio.to_thread(executor._payloads, jobs)
    total = len(jobs)
    pool = (await asyncio.to_thread(executor.open))._pool
    window = 2 * executor.workers
    #: asyncio bridge future -> (submission index, underlying pool future)
    pending: Dict[asyncio.Future, Tuple[int, concurrent.futures.Future]] = {}
    buffered: Dict[int, Trajectory] = {}
    next_submit = 0
    next_yield = 0
    done = 0
    try:
        while next_submit < total or pending or buffered:
            while next_submit < total and len(pending) + len(buffered) < window:
                future = pool.submit(_simulate_payload, payloads[next_submit])
                pending[asyncio.wrap_future(future)] = (next_submit, future)
                next_submit += 1
            if pending:
                completed, _ = await asyncio.wait(
                    set(pending),
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for bridge in completed:
                    index, _ = pending.pop(bridge)
                    trajectory, cache_hit = bridge.result()
                    stats.record(cache_hit)
                    done += 1
                    if progress is not None:
                        progress(done, total, jobs[index])
                    if ordered:
                        buffered[index] = trajectory
                    else:
                        yield index, trajectory
            if ordered:
                # The smallest unyielded index is always submitted (jobs are
                # dispatched in order), so this drain cannot starve.
                while next_yield in buffered:
                    yield next_yield, buffered.pop(next_yield)
                    next_yield += 1
    finally:
        for _, future in pending.values():
            future.cancel()
        executor.last_cache_hits = stats.hits
        executor.last_cache_misses = stats.misses


#: Exhaustion marker for pulling a sync iterator from worker threads.
_EXHAUSTED = object()


async def _drive_serial(
    executor: SerialExecutor,
    jobs: List[SimulationJob],
    *,
    cache: CompiledModelCache,
    progress: Optional[ProgressHook],
    stats: BatchCacheStats,
    ordered: bool = True,
) -> AsyncIterator[Tuple[int, Trajectory]]:
    """Pull a non-pool executor's ``iter_jobs`` from worker threads.

    Each pull executes via :func:`asyncio.to_thread`, so the event loop stays
    responsive between (and, GIL releases permitting, during) runs.  With the
    built-in :class:`SerialExecutor`, runs stay strictly sequential on one
    shared in-process cache — trajectories are bit-identical to the
    synchronous serial executor by construction.  ``ordered`` is forwarded so
    duck-typed parallel executors keep their delivery-mode contract;
    third-party executors that predate the ``batch_stats`` keyword are driven
    without it (their batches simply report no cache statistics).
    """
    if getattr(executor, "supports_batch_stats", False):
        source = executor.iter_jobs(
            jobs, cache=cache, progress=progress, ordered=ordered, batch_stats=stats
        )
    else:
        source = executor.iter_jobs(jobs, cache=cache, progress=progress, ordered=ordered)
    iterator = iter(source)
    while True:
        item = await asyncio.to_thread(next, iterator, _EXHAUSTED)
        if item is _EXHAUSTED:
            return
        yield item


async def aiter_ensemble(
    jobs: Sequence[SimulationJob],
    *,
    workers: int = 1,
    executor=None,
    cache: Optional[CompiledModelCache] = None,
    progress: Optional[ProgressHook] = None,
    ordered: bool = True,
    batch_stats: Optional[BatchCacheStats] = None,
) -> AsyncIterator[Tuple[int, SimulationJob, Trajectory]]:
    """Async generator over an executing ensemble: ``(index, job, trajectory)``.

    The asyncio twin of :func:`repro.engine.iter_ensemble`, safe to drive
    from inside an event loop: awaiting the next result never blocks the
    loop, whether the batch runs on worker processes (futures are bridged
    with :func:`asyncio.wrap_future`) or serially (each run executes on a
    worker thread).  Submission, delivery order and seeds follow the sync
    stream exactly — at most ``2 * workers`` undelivered results in flight,
    ``ordered=True`` for submission order / ``False`` for completion order,
    and trajectories bit-identical to :func:`repro.engine.run_ensemble` for
    the same job list because every seed was fanned out before dispatch.

    ``executor`` may be a :class:`ProcessPoolEnsembleExecutor`, an
    :class:`AsyncEnsembleExecutor` facade, or a :class:`SerialExecutor`; its
    lifecycle stays with the caller.  Without one, an ephemeral executor is
    built from ``workers=N`` and closed (off-loop) when the generator
    finishes.  ``batch_stats`` collects this batch's cache counters for
    callers assembling their own :class:`EnsembleStats`.

    A ``break`` out of ``async for`` does *not* finalize an async generator
    immediately — cleanup (cancelling in-flight runs, closing an ephemeral
    executor) would wait for garbage collection.  When you may exit early,
    iterate under :func:`contextlib.aclosing`::

        async with aclosing(aiter_ensemble(jobs, workers=8)) as stream:
            async for index, job, trajectory in stream:
                break  # cleanup now runs on leaving the with-block
    """
    jobs = list(jobs)
    if not jobs:
        raise EngineError("aiter_ensemble needs at least one job")
    owns_executor = executor is None
    chosen = _resolve_sync(executor) if executor is not None else get_executor(workers)
    cache = cache if cache is not None else default_cache()
    stats = batch_stats if batch_stats is not None else BatchCacheStats()
    if isinstance(chosen, ProcessPoolEnsembleExecutor):
        driver = _drive_pool(chosen, jobs, ordered=ordered, progress=progress, stats=stats)
    else:
        driver = _drive_serial(
            chosen, jobs, cache=cache, progress=progress, stats=stats, ordered=ordered
        )
    try:
        async for index, trajectory in driver:
            yield index, jobs[index], trajectory
    finally:
        await driver.aclose()
        if owns_executor:
            await asyncio.to_thread(chosen.close)


async def arun_ensemble(
    jobs: Sequence[SimulationJob],
    *,
    workers: int = 1,
    executor=None,
    cache: Optional[CompiledModelCache] = None,
    progress: Optional[ProgressHook] = None,
    reduce: Optional[EnsembleReducer] = None,
) -> EnsembleResult:
    """Execute a batch without blocking the event loop; same result as sync.

    The asyncio twin of :func:`repro.engine.run_ensemble`: materializes every
    trajectory (in submission order) into an :class:`EnsembleResult`, or —
    with ``reduce=`` — streams, storing per-run summaries at ``.reduced`` and
    dropping each trajectory on completion.  The reducer may be a plain
    function or a coroutine function (awaited per run on the loop).
    Trajectories and statistics match the synchronous API for the same jobs,
    executor kind and root seed.
    """
    jobs = list(jobs)
    if not jobs:
        raise EngineError("arun_ensemble needs at least one job")
    owns_executor = executor is None
    chosen = _resolve_sync(executor) if executor is not None else get_executor(workers)
    cache = cache if cache is not None else default_cache()
    is_pool = isinstance(chosen, ProcessPoolEnsembleExecutor)
    counter = (
        BatchCacheStats()
        if is_pool or getattr(chosen, "supports_batch_stats", False)
        else None
    )
    trajectories: Optional[List[Optional[Trajectory]]] = None
    reduced: Optional[List[Any]] = None
    if reduce is not None:
        reduced = [None] * len(jobs)
    else:
        trajectories = [None] * len(jobs)
    hits_before, misses_before = cache.hits, cache.misses
    started = time.perf_counter()
    try:
        # aclosing: a reducer that raises must still cancel in-flight runs
        # now, not at garbage collection.
        async with aclosing(
            aiter_ensemble(
                jobs,
                executor=chosen,
                cache=cache,
                progress=progress,
                ordered=False,
                batch_stats=counter,
            ),
        ) as stream:
            async for index, job, trajectory in stream:
                if reduce is not None:
                    summary = reduce(index, job, trajectory)
                    if inspect.isawaitable(summary):
                        summary = await summary
                    reduced[index] = summary
                else:
                    trajectories[index] = trajectory
    finally:
        if owns_executor:
            await asyncio.to_thread(chosen.close)
    wall = time.perf_counter() - started
    stats = _batch_stats(
        chosen,
        len(jobs),
        wall,
        cache,
        hits_before,
        misses_before,
        counter=counter,
    )
    return EnsembleResult(jobs=jobs, trajectories=trajectories, stats=stats, reduced=reduced)


async def gather_studies(
    studies: Sequence[Study],
    *,
    workers: Optional[int] = None,
    executor=None,
    return_exceptions: bool = False,
) -> List[Any]:
    """Run independent studies concurrently over ONE shared warm pool.

    Each study is a callable receiving the shared synchronous executor as its
    only argument — e.g. ``lambda ex: run_replicate_study(circuit, 20,
    rng=7, executor=ex)`` or ``lambda ex: threshold_sweep(circuit, values,
    executor=ex)``.  Plain callables run on worker threads (their blocking
    waits never stall the loop); coroutine functions are awaited on the loop
    and may use :func:`arun_ensemble` / :func:`aiter_ensemble` directly.
    Every study submits its batches to the same persistent pool, so each
    distinct model compiles once per worker *across all studies* — every
    study after the first runs on warm worker-side caches — and per-batch
    :class:`~repro.engine.executors.BatchCacheStats` keep each study's
    reported statistics its own.

    ``executor`` (a pool executor, an :class:`AsyncEnsembleExecutor`, or a
    serial executor) is shared and left open; without one, an ephemeral
    executor is built from ``workers`` (serial when ``None``/1) and closed
    when all studies finish.  Results come back in ``studies`` order.
    Studies running on threads cannot be cancelled, so a failing study never
    aborts its siblings: every study always runs to completion, then either
    the full result list is returned (``return_exceptions=True`` puts a
    failed study's exception in its slot) or the first failure is re-raised.
    """
    studies = list(studies)
    if not studies:
        raise EngineError("gather_studies needs at least one study")
    owns_executor = executor is None
    chosen = _resolve_sync(executor) if executor is not None else get_executor(workers or 1)

    async def _run_study(study: Study) -> Any:
        if asyncio.iscoroutinefunction(study):
            return await study(chosen)
        result = await asyncio.to_thread(study, chosen)
        if inspect.isawaitable(result):
            return await result
        return result

    try:
        # Always gather with return_exceptions=True: raising early would
        # cancel sibling *tasks* but not their threads, and the finally below
        # would then shut the shared pool down under studies still running.
        results = await asyncio.gather(
            *(_run_study(study) for study in studies),
            return_exceptions=True,
        )
    finally:
        if owns_executor:
            await asyncio.to_thread(chosen.close)
    if not return_exceptions:
        for result in results:
            if isinstance(result, BaseException):
                raise result
    return results
