"""Compiled-model caching for the ensemble engine.

Compiling a :class:`repro.sbml.Model` into a :class:`CompiledModel` (parsing
kinetic laws, building the dependency graph) costs far more than a short SSA
run, and every multi-run study used to pay it once *per run*.  The engine
pays it once per distinct ``(model identity, frozen parameter overrides)``
pair instead:

* in-process (serial executor and single runs), :class:`CompiledModelCache`
  keys on the model's ``id()`` plus a cheap fingerprint of its mutable state
  (initial amounts, parameter values, boundary flags) so an in-place edit such
  as ``model.set_initial_amount(...)`` correctly invalidates the entry;
* in worker processes (where every unpickled model is a fresh object),
  :func:`worker_compiled` keys on a content fingerprint computed once in the
  parent, so each worker compiles each distinct model once, not once per job.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..stochastic.propensity import CompiledModel

__all__ = [
    "CompiledModelCache",
    "default_cache",
    "model_fingerprint",
    "model_blob",
    "worker_compiled",
    "worker_model_from_blob",
]


def model_fingerprint(model) -> str:
    """A content fingerprint of a model, for cross-process cache keys."""
    return hashlib.sha1(pickle.dumps(model)).hexdigest()


def model_blob(model) -> Tuple[bytes, str]:
    """``(pickled bytes, content fingerprint)`` of a model, serialized once.

    The pool executor ships the blob (not the live object) inside each
    payload: the parent pays one ``pickle.dumps`` per distinct model and
    per-job transfer reduces to a bytes copy, while workers deserialize a
    given fingerprint once and ignore the blob afterwards.
    """
    blob = pickle.dumps(model)
    return blob, hashlib.sha1(blob).hexdigest()


def _state_token(model) -> Tuple:
    """Cheap token over the model state that can change without re-`id`-ing.

    Kinetic-law ASTs are treated as immutable per model object (nothing in the
    package rewrites them in place); initial amounts, boundary/constant flags
    and parameter values *are* edited in place by tests and benchmarks, so
    they participate in the cache key.
    """
    species = tuple(
        (sid, s.initial_amount, s.boundary_condition, s.constant)
        for sid, s in model.species.items()
    )
    parameters = tuple(sorted(model.parameter_values().items()))
    return (species, parameters, len(model.reactions))


class CompiledModelCache:
    """An LRU cache of :class:`CompiledModel` objects with hit/miss counters.

    Lookups are serialized by an internal lock: the shared process-wide cache
    is reachable from several threads at once (``gather_studies`` runs
    synchronous serial studies on worker threads), and the
    lookup/move-to-end/insert/evict sequence is not atomic without it.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, Tuple[object, CompiledModel]]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def get(
        self,
        model,
        overrides: Tuple[Tuple[str, float], ...] = (),
    ) -> CompiledModel:
        """The compiled form of ``model`` under ``overrides`` (compiling on miss).

        The cached entry keeps a strong reference to the source model, so the
        ``id()`` in the key cannot be recycled while the entry is alive.
        """
        return self.lookup(model, overrides)[0]

    def lookup(
        self,
        model,
        overrides: Tuple[Tuple[str, float], ...] = (),
    ) -> Tuple[CompiledModel, bool]:
        """``(compiled, cache_hit)`` — like :meth:`get`, but reporting the hit.

        The flag belongs to *this* lookup, so callers keeping per-batch
        statistics (:class:`~repro.engine.executors.BatchCacheStats`) stay
        accurate even when other threads hit the same cache concurrently —
        a delta on the global counters could not tell the batches apart.
        """
        if isinstance(model, CompiledModel):
            if not overrides:
                return model, False
            # Overrides cannot be applied to an already-compiled model;
            # recompile (with caching) from its source model instead.
            model = model.model
        key = (id(model), _state_token(model), overrides)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry[1], True
            self.misses += 1
            compiled = CompiledModel(model, dict(overrides) if overrides else None)
            self._entries[key] = (model, compiled)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return compiled, False

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}


#: The process-wide cache used when callers do not supply their own.
_DEFAULT_CACHE = CompiledModelCache()


def default_cache() -> CompiledModelCache:
    """The shared in-process compiled-model cache."""
    return _DEFAULT_CACHE


#: Per-worker-process cache, keyed on (content fingerprint, overrides).  Lives
#: at module level so it survives across tasks dispatched to the same worker —
#: and, with persistent executor pools, across *batches* of the same study.
_WORKER_CACHE: Dict[Tuple, CompiledModel] = {}

#: Models this worker has seen, keyed on their content fingerprint.  Payloads
#: carry the pickled model inline (a persistent pool outlives any one batch,
#: so a creation-time initializer cannot know the models of later batches);
#: the worker deserializes each fingerprint once and reuses that canonical
#: instance for every later payload and batch.
_WORKER_MODELS: Dict[str, object] = {}

_WORKER_CACHE_MAX = 64
_WORKER_MODELS_MAX = 64

#: Guards _WORKER_MODELS: pool worker processes are single-threaded, but the
#: blob memo also runs in the *parent* (serial analysis fan-out), where
#: gather_studies may drive it from several threads at once.
_WORKER_MODELS_LOCK = threading.Lock()


def worker_model_from_blob(fingerprint: str, blob: bytes):
    """The canonical model instance for ``fingerprint``, deserializing once.

    Worker-side entry point: the first payload to arrive with a given
    fingerprint pays the ``pickle.loads``; later payloads (and batches) skip
    deserialization entirely, so a fingerprint unpickles and compiles at most
    once per worker process.
    """
    with _WORKER_MODELS_LOCK:
        known = _WORKER_MODELS.get(fingerprint)
        if known is not None:
            # Refresh recency (as worker_compiled does for _WORKER_CACHE): a
            # hot fingerprint reused every batch must outlive stale ones at
            # eviction.
            _WORKER_MODELS.pop(fingerprint)
            _WORKER_MODELS[fingerprint] = known
            return known
    model = pickle.loads(blob)
    with _WORKER_MODELS_LOCK:
        while len(_WORKER_MODELS) >= _WORKER_MODELS_MAX:
            _WORKER_MODELS.pop(next(iter(_WORKER_MODELS)))
        _WORKER_MODELS[fingerprint] = model
    return model


def worker_compiled(
    model,
    fingerprint: Optional[str],
    overrides: Tuple[Tuple[str, float], ...] = (),
) -> Tuple[CompiledModel, bool]:
    """Worker-side compile with memoization on the parent-computed fingerprint.

    Returns ``(compiled, cache_hit)`` so the hit can be reported back to the
    parent and aggregated into the ensemble's statistics.
    """
    if fingerprint is None:
        return CompiledModel(model, dict(overrides) if overrides else None), False
    key = (fingerprint, overrides)
    compiled = _WORKER_CACHE.get(key)
    if compiled is not None:
        # Refresh recency so eviction drops the coldest entry, not this one.
        _WORKER_CACHE.pop(key)
        _WORKER_CACHE[key] = compiled
        return compiled, True
    compiled = CompiledModel(model, dict(overrides) if overrides else None)
    while len(_WORKER_CACHE) >= _WORKER_CACHE_MAX:
        _WORKER_CACHE.pop(next(iter(_WORKER_CACHE)))
    _WORKER_CACHE[key] = compiled
    return compiled, False
