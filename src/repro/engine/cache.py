"""Compiled-model caching for the ensemble engine.

Compiling a :class:`repro.sbml.Model` into a :class:`CompiledModel` (parsing
kinetic laws, building the dependency graph) costs far more than a short SSA
run, and every multi-run study used to pay it once *per run*.  The engine
pays it once per distinct ``(model identity, frozen parameter overrides)``
pair instead:

* in-process (serial executor and single runs), :class:`CompiledModelCache`
  keys on the model's ``id()`` plus a cheap fingerprint of its mutable state
  (initial amounts, parameter values, boundary flags) so an in-place edit such
  as ``model.set_initial_amount(...)`` correctly invalidates the entry;
* in worker processes (where every unpickled model is a fresh object),
  :func:`worker_compiled` keys on a content fingerprint computed once in the
  parent, so each worker compiles each distinct model once, not once per job.

Compiled-propensity serialization: alongside the pickled-model blob, each
worker payload carries the **generated propensity kernel** (source plus
marshalled bytecode) for its own ``(model, overrides)`` pair — attached per
payload rather than per blob so sweep IPC stays linear in the number of
jobs (see :mod:`repro.stochastic.codegen`).  A worker's first compile of a
model then ``exec``'s one shipped module instead of re-parsing and
re-compiling every kinetic-law AST — the parent generates and byte-compiles
each kernel once (:func:`kernel_artifact_for_blob`, content-memoized) and
every worker reuses it, which is what makes ``jobs=N`` cold starts cheap on
big Cello circuits.  The blob envelope can also carry kernels directly
(:func:`model_blob`'s ``kernels`` argument) for callers that ship models
without per-payload metadata.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import pickle
import threading
from collections import OrderedDict
from typing import Dict, Mapping, NamedTuple, Optional, Tuple

from ..stochastic.codegen import compile_kernel
from ..stochastic.propensity import CompiledModel, kernel_source_for

__all__ = [
    "CompiledModelCache",
    "default_cache",
    "model_fingerprint",
    "model_blob",
    "KernelArtifact",
    "kernel_artifact_for_blob",
    "register_worker_kernel",
    "worker_compiled",
    "worker_model_from_blob",
]


def model_fingerprint(model) -> str:
    """A content fingerprint of a model, for cross-process cache keys."""
    return hashlib.sha1(pickle.dumps(model)).hexdigest()


class _ModelBlob:
    """Worker-bound envelope: pickled model + generated kernel sources.

    ``kernels`` maps frozen parameter-override tuples to the generated
    propensity kernel for ``(model, overrides)`` — a :class:`KernelArtifact`
    or a bare source string.  The model stays a nested pickle so the content
    fingerprint — and with it every worker-side cache key — is computed over
    the *model alone*, unchanged by whichever kernels happen to ride along.
    """

    __slots__ = ("model_pickle", "kernels")

    def __init__(self, model_pickle: bytes, kernels: Dict[Tuple, str]):
        self.model_pickle = model_pickle
        self.kernels = kernels

    def __getstate__(self):
        return (self.model_pickle, self.kernels)

    def __setstate__(self, state):
        self.model_pickle, self.kernels = state


def model_blob(model, kernels: Optional[Mapping[Tuple, object]] = None) -> Tuple[bytes, str]:
    """``(pickled envelope, content fingerprint)`` of a model, serialized once.

    The pool executor ships the blob (not the live object) inside each
    payload: the parent pays one ``pickle.dumps`` per distinct model and
    per-job transfer reduces to a bytes copy, while workers deserialize a
    given fingerprint once and ignore the model bytes afterwards.
    ``kernels`` (frozen overrides -> generated kernel source or
    :class:`KernelArtifact`) rides along in the envelope and is registered
    worker-side on arrival.
    """
    data = pickle.dumps(model)
    fingerprint = hashlib.sha1(data).hexdigest()
    envelope = _ModelBlob(data, dict(kernels) if kernels else {})
    return pickle.dumps(envelope), fingerprint


class KernelArtifact(NamedTuple):
    """A shippable compiled-propensity kernel.

    ``bytecode`` is the marshalled code object of ``source``, tagged with the
    interpreter's bytecode ``magic`` so a worker only reuses it when it runs
    the same Python build (always true for a process pool; the source is the
    portable fallback for everything else).
    """

    source: str
    magic: bytes
    bytecode: bytes


def _make_kernel_artifact(source: str) -> KernelArtifact:
    return KernelArtifact(
        source=source,
        magic=bytes(importlib.util.MAGIC_NUMBER),
        bytecode=marshal.dumps(compile_kernel(source)),
    )


#: Parent-side memo of generated kernel artifacts, keyed on
#: ``(content fingerprint, frozen overrides)`` — content-addressed, so it is
#: immune to in-place model edits and safe to share across batches.
_KERNEL_ARTIFACTS: "OrderedDict[Tuple[str, Tuple], KernelArtifact]" = OrderedDict()
_KERNEL_ARTIFACTS_MAX = 128
_KERNEL_ARTIFACTS_LOCK = threading.Lock()


def kernel_artifact_for_blob(model, fingerprint: str, overrides: Tuple = ()) -> KernelArtifact:
    """The generated kernel artifact for ``(model, overrides)``, memoized.

    The parent pays source generation plus one byte-compilation per distinct
    ``(model, overrides)`` pair; every worker then skips both and goes
    straight to ``exec``.
    """
    key = (fingerprint, overrides)
    with _KERNEL_ARTIFACTS_LOCK:
        artifact = _KERNEL_ARTIFACTS.get(key)
        if artifact is not None:
            _KERNEL_ARTIFACTS.move_to_end(key)
            return artifact
    source = kernel_source_for(model, dict(overrides) if overrides else None)
    artifact = _make_kernel_artifact(source)
    with _KERNEL_ARTIFACTS_LOCK:
        _KERNEL_ARTIFACTS[key] = artifact
        while len(_KERNEL_ARTIFACTS) > _KERNEL_ARTIFACTS_MAX:
            _KERNEL_ARTIFACTS.popitem(last=False)
    return artifact


def _state_token(model) -> Tuple:
    """Cheap token over the model state that can change without re-`id`-ing.

    Kinetic-law ASTs are treated as immutable per model object (nothing in the
    package rewrites them in place); initial amounts, boundary/constant flags
    and parameter values *are* edited in place by tests and benchmarks, so
    they participate in the cache key.
    """
    species = tuple(
        (sid, s.initial_amount, s.boundary_condition, s.constant)
        for sid, s in model.species.items()
    )
    parameters = tuple(sorted(model.parameter_values().items()))
    return (species, parameters, len(model.reactions))


class CompiledModelCache:
    """An LRU cache of :class:`CompiledModel` objects with hit/miss counters.

    Lookups are serialized by an internal lock: the shared process-wide cache
    is reachable from several threads at once (``gather_studies`` runs
    synchronous serial studies on worker threads), and the
    lookup/move-to-end/insert/evict sequence is not atomic without it.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, Tuple[object, CompiledModel]]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def get(
        self,
        model,
        overrides: Tuple[Tuple[str, float], ...] = (),
    ) -> CompiledModel:
        """The compiled form of ``model`` under ``overrides`` (compiling on miss).

        The cached entry keeps a strong reference to the source model, so the
        ``id()`` in the key cannot be recycled while the entry is alive.
        """
        return self.lookup(model, overrides)[0]

    def lookup(
        self,
        model,
        overrides: Tuple[Tuple[str, float], ...] = (),
    ) -> Tuple[CompiledModel, bool]:
        """``(compiled, cache_hit)`` — like :meth:`get`, but reporting the hit.

        The flag belongs to *this* lookup, so callers keeping per-batch
        statistics (:class:`~repro.engine.executors.BatchCacheStats`) stay
        accurate even when other threads hit the same cache concurrently —
        a delta on the global counters could not tell the batches apart.
        """
        if isinstance(model, CompiledModel):
            if not overrides:
                return model, False
            # Overrides cannot be applied to an already-compiled model;
            # recompile (with caching) from its source model instead.
            model = model.model
        key = (id(model), _state_token(model), overrides)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry[1], True
            self.misses += 1
            compiled = CompiledModel(model, dict(overrides) if overrides else None)
            self._entries[key] = (model, compiled)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return compiled, False

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}


#: The process-wide cache used when callers do not supply their own.
_DEFAULT_CACHE = CompiledModelCache()


def default_cache() -> CompiledModelCache:
    """The shared in-process compiled-model cache."""
    return _DEFAULT_CACHE


#: Per-worker-process cache, keyed on (content fingerprint, overrides).  Lives
#: at module level so it survives across tasks dispatched to the same worker —
#: and, with persistent executor pools, across *batches* of the same study.
_WORKER_CACHE: Dict[Tuple, CompiledModel] = {}

#: Models this worker has seen, keyed on their content fingerprint.  Payloads
#: carry the pickled model inline (a persistent pool outlives any one batch,
#: so a creation-time initializer cannot know the models of later batches);
#: the worker deserializes each fingerprint once and reuses that canonical
#: instance for every later payload and batch.
_WORKER_MODELS: Dict[str, object] = {}

#: Kernel artifacts (or bare sources) received inside blob envelopes, keyed
#: on ``(fingerprint, frozen overrides)``.  Consulted by
#: :func:`worker_compiled` so a worker's first compile of a model exec's the
#: generated module instead of re-compiling the kinetic-law ASTs.
_WORKER_KERNELS: Dict[Tuple[str, Tuple], object] = {}

#: Blobs this worker has fully processed, as ``(fingerprint, len(blob))``
#: pairs.  A repeat of the same blob skips deserialization entirely (the old
#: known-fingerprint fast path); a *different* blob for a known fingerprint —
#: e.g. a later sweep batch adding kernels for new override sets — has a
#: different length in practice and is processed again.  A length collision
#: only costs the worker a fallback AST compile for the unseen overrides; it
#: can never produce wrong results.
_WORKER_BLOBS_SEEN: Dict[Tuple[str, int], bool] = {}
_WORKER_BLOBS_SEEN_MAX = 256

_WORKER_CACHE_MAX = 64
_WORKER_MODELS_MAX = 64
_WORKER_KERNELS_MAX = 256

#: Guards _WORKER_MODELS / _WORKER_KERNELS: pool worker processes are
#: single-threaded, but the blob memo also runs in the *parent* (serial
#: analysis fan-out), where gather_studies may drive it from several threads
#: at once.
_WORKER_MODELS_LOCK = threading.Lock()


def worker_model_from_blob(fingerprint: str, blob: bytes):
    """The canonical model instance for ``fingerprint``, deserializing once.

    Worker-side entry point: the first payload to arrive with a given
    fingerprint pays the inner-model ``pickle.loads``; later payloads (and
    batches) only decode the cheap envelope, so a fingerprint unpickles and
    compiles at most once per worker process.  Kernel sources in the envelope
    are always registered first — a later batch may bring kernels for
    override sets this worker has not seen, even when the model itself is
    already known.
    """
    seen_key = (fingerprint, len(blob))
    with _WORKER_MODELS_LOCK:
        known = _WORKER_MODELS.get(fingerprint)
        if known is not None and seen_key in _WORKER_BLOBS_SEEN:
            # Exact repeat of an already-processed blob (the common case: one
            # blob shared by every payload of a batch): skip deserialization
            # entirely, as the pre-envelope fast path did.  Refresh recency
            # (as worker_compiled does for _WORKER_CACHE): a hot fingerprint
            # reused every batch must outlive stale ones at eviction.
            _WORKER_MODELS.pop(fingerprint)
            _WORKER_MODELS[fingerprint] = known
            return known
    payload = pickle.loads(blob)
    if isinstance(payload, _ModelBlob):
        inner, legacy = payload.model_pickle, None
        if payload.kernels:
            with _WORKER_MODELS_LOCK:
                for overrides, source in payload.kernels.items():
                    _WORKER_KERNELS.setdefault((fingerprint, overrides), source)
                while len(_WORKER_KERNELS) > _WORKER_KERNELS_MAX:
                    _WORKER_KERNELS.pop(next(iter(_WORKER_KERNELS)))
    else:
        # Legacy raw-model blob (a plain pickle of the object itself).
        inner, legacy = None, payload
    with _WORKER_MODELS_LOCK:
        _WORKER_BLOBS_SEEN[seen_key] = True
        while len(_WORKER_BLOBS_SEEN) > _WORKER_BLOBS_SEEN_MAX:
            _WORKER_BLOBS_SEEN.pop(next(iter(_WORKER_BLOBS_SEEN)))
        known = _WORKER_MODELS.get(fingerprint)
        if known is not None:
            _WORKER_MODELS.pop(fingerprint)
            _WORKER_MODELS[fingerprint] = known
            return known
    model = pickle.loads(inner) if inner is not None else legacy
    with _WORKER_MODELS_LOCK:
        while len(_WORKER_MODELS) >= _WORKER_MODELS_MAX:
            _WORKER_MODELS.pop(next(iter(_WORKER_MODELS)))
        _WORKER_MODELS[fingerprint] = model
    return model


def register_worker_kernel(fingerprint: Optional[str], overrides: Tuple, kernel) -> None:
    """Register one job's shipped kernel for :func:`worker_compiled` (worker side).

    The executor attaches each payload's own ``(model, overrides)`` kernel to
    the payload (not every override set of the batch to every payload, which
    would make sweep IPC quadratic); this records it under the worker's
    ``(fingerprint, overrides)`` key.  ``None`` kernels are a no-op.
    """
    if kernel is None or fingerprint is None:
        return
    key = (fingerprint, overrides)
    with _WORKER_MODELS_LOCK:
        if key not in _WORKER_KERNELS:
            _WORKER_KERNELS[key] = kernel
            while len(_WORKER_KERNELS) > _WORKER_KERNELS_MAX:
                _WORKER_KERNELS.pop(next(iter(_WORKER_KERNELS)))


def worker_compiled(
    model,
    fingerprint: Optional[str],
    overrides: Tuple[Tuple[str, float], ...] = (),
) -> Tuple[CompiledModel, bool]:
    """Worker-side compile with memoization on the parent-computed fingerprint.

    Returns ``(compiled, cache_hit)`` so the hit can be reported back to the
    parent and aggregated into the ensemble's statistics.  When the parent
    shipped generated kernel source for this ``(fingerprint, overrides)``
    pair, the compile exec's that source instead of re-deriving it from the
    model's kinetic-law ASTs — the cheap cold-start path.
    """
    if fingerprint is None:
        return CompiledModel(model, dict(overrides) if overrides else None), False
    key = (fingerprint, overrides)
    compiled = _WORKER_CACHE.get(key)
    if compiled is not None:
        # Refresh recency so eviction drops the coldest entry, not this one.
        _WORKER_CACHE.pop(key)
        _WORKER_CACHE[key] = compiled
        return compiled, True
    with _WORKER_MODELS_LOCK:
        entry = _WORKER_KERNELS.get(key)
        if entry is not None:
            # Refresh recency so eviction drops the coldest kernel, not one
            # that is re-read every batch (same LRU discipline as the other
            # worker-side caches).
            _WORKER_KERNELS.pop(key)
            _WORKER_KERNELS[key] = entry
    compiled = None
    if entry is not None:
        source = entry
        code = None
        if isinstance(entry, tuple):  # a KernelArtifact (possibly re-pickled)
            source = entry[0]
            if bytes(entry[1]) == bytes(importlib.util.MAGIC_NUMBER):
                try:
                    code = marshal.loads(entry[2])
                except Exception:
                    code = None
        try:
            compiled = CompiledModel(
                model,
                dict(overrides) if overrides else None,
                kernel_source=source,
                kernel_code=code,
            )
        except Exception:
            # A stale or incompatible kernel must never fail the run; fall
            # back to compiling from the model's ASTs below.
            compiled = None
    if compiled is None:
        compiled = CompiledModel(model, dict(overrides) if overrides else None)
    while len(_WORKER_CACHE) >= _WORKER_CACHE_MAX:
        _WORKER_CACHE.pop(next(iter(_WORKER_CACHE)))
    _WORKER_CACHE[key] = compiled
    return compiled, False
