"""Socket-based multi-host transport for the ensemble engine.

:class:`DistributedEnsembleExecutor` runs ensemble batches on worker
*processes that may live on other machines*, speaking a length-prefixed
pickle protocol over TCP to ``genlogic worker`` processes.  It is a thin
adapter over the engine's shared submission core — the same
:class:`~repro.engine.core.BaseEnsembleExecutor` surface, the same windowed
submission loop, the same declarative payload envelope (model blob keyed on a
content fingerprint, generated propensity-kernel artifact per ``(model,
overrides)`` pair) and therefore the same worker-side fingerprint seen-set
and warm-cache discipline as the process pool — so every study that accepts
``executor=`` shards across machines with no study-code changes, and results
are bit-identical to the serial executor because seeds are fanned out before
dispatch.

Two ways to assemble a fabric (the wire protocol is identical once a
connection is up; the worker always speaks first with a ``hello`` frame):

* **coordinator listens** (``listen="host:port"``): workers dial in with
  ``genlogic worker --connect host:port``.  New workers may join mid-batch —
  capacity grows and the submission window widens on the next scheduling
  round — which is also how a lost worker's replacement re-enters the fabric.
* **coordinator dials** (``connect=["host:port", ...]``): workers were
  started with ``genlogic worker --listen host:port`` and the executor
  connects out to each — the shape behind the CLI's ``--dispatch`` flag.

Fault tolerance: every dispatched task is tracked per connection; when a
worker is lost (socket error, process death) its in-flight tasks are requeued
at the front of the dispatch queue and rerun on surviving or newly joined
workers — safe because payloads are deterministic pure functions of their
pre-fanned-out seeds.  A task that keeps killing workers fails after
``MAX_TASK_ATTEMPTS`` dispatches instead of cycling forever, and a
coordinator left with no workers and no way to get one fails the batch with
:class:`WorkerConnectionError` rather than hanging.

Wire format: each frame is a 4-byte big-endian length followed by a pickled
message dict — see :func:`send_message` / :func:`recv_message`, shared
verbatim by :mod:`repro.engine.worker`.  Lockstep batches (``batch_size=B``)
ride the same frames: the executor inherits ``batch_transport = "frame"``
from the base, so a B-replicate result crosses the socket as one compact
binary trajectory frame (raw little-endian float64 blocks plus a species
table encoded once per batch, :func:`repro.stochastic.encode_trajectories`)
inside the result message, instead of B pickled ``Trajectory`` objects.

.. warning:: **Trust model.**  The protocol is pickle over plain TCP with no
   authentication or encryption — like :mod:`multiprocessing` sockets
   without an authkey, anyone who can reach a listening port can execute
   arbitrary code on that process (``pickle.loads`` of attacker bytes), on
   the worker *and* the coordinator side alike.  Run fabrics only on
   trusted, isolated networks (bind loopback or a private interface, never a
   public one) or inside an authenticated tunnel (SSH/WireGuard/VPN).  An
   HMAC handshake à la ``multiprocessing.connection`` is on the roadmap.
   The HTTP tier inherits this trust model: ``genlogic serve`` refuses to
   bind a non-loopback address until that handshake lands — expose it only
   behind an authenticating reverse proxy.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import EngineError
from .core import BaseEnsembleExecutor, BatchCacheStats

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteWorkerError",
    "WorkerConnectionError",
    "DistributedEnsembleExecutor",
    "parse_address",
    "parse_dispatch_spec",
    "send_message",
    "recv_message",
    "spawn_worker_process",
]

#: Bumped on incompatible frame-format changes; exchanged in the hello frame.
PROTOCOL_VERSION = 1

#: Frames carry a 4-byte unsigned length; anything larger is a protocol error.
_MAX_FRAME_BYTES = (1 << 32) - 1

#: A task is dispatched at most this many times (first try + requeues after
#: worker loss) before its future fails instead of hunting for a next victim.
MAX_TASK_ATTEMPTS = 3


class RemoteWorkerError(EngineError):
    """A shipped task raised on the worker; carries the remote traceback text."""


class WorkerConnectionError(EngineError):
    """The coordinator lost (or never had) the workers a batch needs."""


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (host defaults to all interfaces)."""
    host, separator, port = address.rpartition(":")
    if not separator or not port.isdigit():
        raise EngineError(f"worker address {address!r} is not of the form host:port")
    return host or "0.0.0.0", int(port)


def parse_dispatch_spec(spec: str) -> List[str]:
    """Split a CLI ``--dispatch host:port,host:port`` spec, validating each."""
    addresses = [entry.strip() for entry in spec.split(",") if entry.strip()]
    if not addresses:
        raise EngineError("--dispatch needs at least one host:port worker address")
    for address in addresses:
        parse_address(address)
    return addresses


# -- framing (shared with repro.engine.worker) --------------------------------------


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed pickled frame."""
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > _MAX_FRAME_BYTES:
        raise EngineError(f"protocol frame of {len(data)} bytes exceeds the 4 GiB limit")
    sock.sendall(struct.pack(">I", len(data)) + data)


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Read one length-prefixed pickled frame (raises ConnectionError on EOF)."""
    header = sock.recv(4)
    if not header:
        raise ConnectionError("peer closed the connection")
    if len(header) < 4:
        header += _recv_exact(sock, 4 - len(header))
    (length,) = struct.unpack(">I", header)
    return pickle.loads(_recv_exact(sock, length))


# -- coordinator-side task bookkeeping ----------------------------------------------


class _Task:
    """One submitted call: its future plus dispatch bookkeeping."""

    __slots__ = ("task_id", "fn", "payload", "future", "attempts")

    def __init__(self, task_id: int, fn: Callable[[Any], Any], payload: Any):
        self.task_id = task_id
        self.fn = fn
        self.payload = payload
        self.future: concurrent.futures.Future = concurrent.futures.Future()
        self.attempts = 0


class _WorkerLink:
    """One connected worker: its socket, capacity, and in-flight tasks."""

    def __init__(self, link_id: int, sock: socket.socket, capacity: int, peer: str):
        self.link_id = link_id
        self.sock = sock
        self.capacity = max(1, int(capacity))
        self.peer = peer
        self.in_flight: Dict[int, _Task] = {}
        self.send_lock = threading.Lock()
        self.alive = True

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.in_flight)


class DistributedEnsembleExecutor(BaseEnsembleExecutor):
    """Run ensemble jobs on ``genlogic worker`` processes over TCP.

    Exactly one of ``connect`` (dial out to listening workers) or ``listen``
    (bind and accept dialing workers; block in :meth:`open` until
    ``min_workers`` have joined) must be given.  The executor then behaves
    like any other engine executor: a context manager with a persistent
    transport, ``iter_jobs`` / ``run_jobs`` / ``map`` inherited from the
    shared core, per-batch :class:`BatchCacheStats`, and submission-order
    result delivery bit-identical to the serial executor for the same seeds.
    Worker processes keep their fingerprint-keyed model and kernel caches
    across batches exactly like pool workers, so a closed-and-reopened batch
    on the same fabric starts warm.

    ``close()`` cancels queued work, asks each worker to shut down (dial-in
    workers exit; ``--listen`` workers go back to accepting the next
    coordinator) and releases the sockets; like the pool executor, the next
    use transparently re-opens the fabric.
    """

    name = "distributed"

    def __init__(
        self,
        connect: Optional[Sequence[str]] = None,
        *,
        listen: Optional[str] = None,
        min_workers: Optional[int] = None,
        connect_timeout: float = 30.0,
        regrow_timeout: Optional[float] = None,
    ):
        if (connect is None) == (listen is None):
            raise EngineError(
                "DistributedEnsembleExecutor needs exactly one of connect=[...] "
                "(dial listening workers) or listen='host:port' (accept dialing "
                "workers)",
            )
        self._addresses = [str(address) for address in connect] if connect else []
        for address in self._addresses:
            parse_address(address)
        self._listen_address = listen
        if listen is not None:
            parse_address(listen)
        self._min_workers = (
            int(min_workers) if min_workers is not None else max(1, len(self._addresses))
        )
        if self._min_workers < 1:
            raise EngineError("a distributed executor needs at least one worker")
        self.connect_timeout = float(connect_timeout)
        #: How long a workerless fabric may wait for a replacement to join
        #: before failing the queued batch (defaults to ``connect_timeout``).
        self.regrow_timeout = (
            float(regrow_timeout) if regrow_timeout is not None else self.connect_timeout
        )
        self.last_cache_hits = 0
        self.last_cache_misses = 0
        self._lifecycle_lock = threading.Lock()
        self._state = threading.Condition()
        self._open = False
        self._queue: Deque[_Task] = deque()
        self._links: List[_WorkerLink] = []
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._task_ids = itertools.count()
        self._link_ids = itertools.count()
        #: The address actually bound in listen mode (real port for ":0").
        self.bound_address: Optional[Tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def workers(self) -> int:
        """Workers connected right now (``min_workers`` while none are).

        Live, not the configured floor: a listening fabric that eight workers
        joined reports eight in :class:`EnsembleStats`, and loses them again
        as they leave.
        """
        with self._state:
            live = len(self._links)
        return live or self._min_workers

    @property
    def capacity(self) -> int:
        """Live parallel slots across every connected worker.

        Never reports zero: while the fabric is (re)assembling, the nominal
        worker count keeps the submission window open so tasks queue instead
        of stalling submission.
        """
        with self._state:
            live = sum(link.capacity for link in self._links if link.alive)
        return live or max(1, self._min_workers)

    def open(self) -> "DistributedEnsembleExecutor":
        """Assemble the worker fabric now (otherwise on first use).

        Dial mode connects to every configured address; listen mode binds,
        starts accepting, and blocks until ``min_workers`` workers have said
        hello (``WorkerConnectionError`` after ``connect_timeout`` seconds).
        """
        with self._lifecycle_lock:
            if self._open:
                return self
            self._queue.clear()
            self._links = []
            self._open = True
            try:
                self._assemble()
                self._start_thread(self._dispatch_loop, "genlogic-dispatch")
                self._await_assembled()
            except Exception:
                self._teardown()
                raise
        return self

    def _assemble(self) -> None:
        """Start acquiring workers (subclass hook; runs before the dispatcher)."""
        if self._listen_address is not None:
            self._start_listening()
        else:
            for address in self._addresses:
                self._dial(address)

    def _await_assembled(self) -> None:
        """Block until the fabric is usable (runs after the dispatcher starts)."""
        if self._listen_address is not None:
            self._await_min_workers()

    def close(self) -> None:
        """Tear the fabric down.  Idempotent; next use re-opens it."""
        with self._lifecycle_lock:
            self._teardown()

    def _teardown(self) -> None:
        with self._state:
            self._open = False
            queued, self._queue = list(self._queue), deque()
            links, self._links = list(self._links), []
            in_flight: List[_Task] = []
            for link in links:
                # Mark dead under the lock so reader threads' _drop_link
                # becomes a no-op and cannot requeue into the dead queue.
                link.alive = False
                in_flight.extend(link.in_flight.values())
                link.in_flight.clear()
            self._state.notify_all()
        for task in queued + in_flight:
            # Every outstanding future must settle: a caller blocked in
            # wait_any on a task we will never hear back about would
            # otherwise hang forever.
            if not task.future.cancel() and not task.future.done():
                task.future.set_exception(
                    WorkerConnectionError(
                        "the distributed executor was closed with this task "
                        "still in flight",
                    ),
                )
        server, self._server = self._server, None
        if server is not None:
            _close_quietly(server)
        for link in links:
            try:
                with link.send_lock:
                    send_message(link.sock, {"type": "shutdown"})
            except OSError:
                pass
            _close_quietly(link.sock)
        threads, self._threads = self._threads, []
        for thread in threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)

    def __del__(self):  # pragma: no cover - GC safety net
        if getattr(self, "_open", False):
            try:
                self.close()
            except Exception:
                pass

    # -- fabric assembly -----------------------------------------------------------
    def _start_thread(self, target, name: str, *args) -> None:
        thread = threading.Thread(target=target, args=args, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()

    def _start_listening(self) -> None:
        host, port = parse_address(self._listen_address)
        server = socket.create_server((host, port))
        server.settimeout(0.2)
        self._server = server
        self.bound_address = server.getsockname()[:2]
        self._start_thread(self._accept_loop, "genlogic-accept", server)

    def _accept_loop(self, server: socket.socket) -> None:
        while self._open:
            try:
                sock, _ = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                self._adopt(sock)
            except (OSError, ConnectionError, EngineError):
                _close_quietly(sock)

    def _dial(self, address: str) -> None:
        host, port = parse_address(address)
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=self.connect_timeout)
                break
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise WorkerConnectionError(
                        f"could not reach worker at {address} within "
                        f"{self.connect_timeout:.0f} s: {error}",
                    ) from error
                time.sleep(0.1)
        self._adopt(sock)

    def _adopt(self, sock: socket.socket) -> None:
        """Handshake a fresh worker socket and add it to the fabric."""
        sock.settimeout(self.connect_timeout)
        hello = recv_message(sock)
        if hello.get("type") != "hello":
            raise EngineError(f"expected a hello frame, got {hello.get('type')!r}")
        if hello.get("version") != PROTOCOL_VERSION:
            raise EngineError(
                f"worker speaks protocol {hello.get('version')!r}, "
                f"coordinator speaks {PROTOCOL_VERSION}",
            )
        sock.settimeout(None)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - transport nicety only
            pass
        peer_host, peer_port = sock.getpeername()[:2]
        peer = f"{peer_host}:{peer_port}"
        link = _WorkerLink(next(self._link_ids), sock, hello.get("capacity", 1), peer)
        with self._state:
            self._links.append(link)
            self._state.notify_all()
        self._start_thread(self._reader_loop, f"genlogic-read-{link.link_id}", link)

    def _await_min_workers(self) -> None:
        deadline = time.monotonic() + self.connect_timeout
        with self._state:
            while len(self._links) < self._min_workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WorkerConnectionError(
                        f"only {len(self._links)} of {self._min_workers} workers "
                        f"connected within {self.connect_timeout:.0f} s",
                    )
                self._state.wait(timeout=min(remaining, 0.2))

    # -- dispatch ------------------------------------------------------------------
    def submit(self, fn, payload) -> concurrent.futures.Future:
        task = _Task(next(self._task_ids), fn, payload)
        with self._state:
            if not self._open:
                raise EngineError("this distributed executor is closed")
            self._queue.append(task)
            self._state.notify_all()
        return task.future

    # wait_any: the base's first-completion wait (reader threads resolve the
    # futures as result frames arrive).

    def _record_last_stats(self, stats: BatchCacheStats) -> None:
        self.last_cache_hits = stats.hits
        self.last_cache_misses = stats.misses

    def _dispatch_loop(self) -> None:
        """Move queued tasks onto workers with free slots (single scheduler)."""
        workerless_since: Optional[float] = None
        while True:
            task: Optional[_Task] = None
            link: Optional[_WorkerLink] = None
            redial = False
            with self._state:
                while self._open:
                    if self._queue and not self._links:
                        # A workerless fabric gets ``regrow_timeout`` seconds
                        # for a replacement to join (on its own in listen
                        # mode; via re-dial in connect mode) before the
                        # queued batch fails instead of hanging forever.
                        now = time.monotonic()
                        if workerless_since is None:
                            workerless_since = now
                        if now - workerless_since > self.regrow_timeout:
                            self._fail_everything_locked(
                                WorkerConnectionError(
                                    "no workers joined within "
                                    f"{self.regrow_timeout:.0f} s of losing the "
                                    "last one; failing the queued batch",
                                ),
                            )
                            workerless_since = None
                            continue
                        if self._listen_address is None:
                            # Blocking connect + hello handshake must happen
                            # OUTSIDE the lock: submit(), capacity reads and
                            # reader threads all contend on _state.
                            redial = True
                            break
                    elif self._links:
                        workerless_since = None
                    if self._queue:
                        link = self._pick_link()
                        if link is not None:
                            task = self._queue.popleft()
                            if task.future.cancelled():
                                task = None
                                continue
                            task.attempts += 1
                            link.in_flight[task.task_id] = task
                            break
                    self._state.wait(timeout=0.2)
                if not self._open:
                    return
            if redial:
                self._try_regrow()
                time.sleep(0.1)
            elif task is not None:
                self._send_task(link, task)

    def _pick_link(self) -> Optional[_WorkerLink]:
        """The live worker with the most free slots (None when all are full)."""
        best = None
        for link in self._links:
            if link.alive and link.free_slots > 0:
                if best is None or link.free_slots > best.free_slots:
                    best = link
        return best

    def _try_regrow(self) -> None:
        """Re-dial the configured addresses, looking for a restarted worker.

        Dial mode only (a listening fabric regrows through its acceptor);
        called by the dispatcher WITHOUT ``_state`` held, because connects
        and the hello handshake block.
        """
        for address in self._addresses:
            try:
                host, port = parse_address(address)
                sock = socket.create_connection((host, port), timeout=1.0)
            except OSError:
                continue
            try:
                self._adopt(sock)
                return
            except (OSError, ConnectionError, EngineError):
                _close_quietly(sock)

    def _send_task(self, link: _WorkerLink, task: _Task) -> None:
        # The call travels as a nested pickle: the outer frame stays decodable
        # (plain types only) even when fn/payload cannot be unpickled on the
        # worker, so the worker reports a per-task failure instead of dying.
        try:
            call = pickle.dumps((task.fn, task.payload), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            with self._state:
                link.in_flight.pop(task.task_id, None)
                self._state.notify_all()
            if not task.future.cancelled():
                task.future.set_exception(error)
            return
        message = {"type": "job", "id": task.task_id, "call": call}
        try:
            with link.send_lock:
                send_message(link.sock, message)
        except (OSError, ConnectionError):
            self._drop_link(link)
        except Exception as error:
            # The task itself is unshippable (e.g. an unpicklable payload):
            # that is the caller's error, not the worker's.
            with self._state:
                link.in_flight.pop(task.task_id, None)
                self._state.notify_all()
            if not task.future.cancelled():
                task.future.set_exception(error)

    def _reader_loop(self, link: _WorkerLink) -> None:
        while True:
            try:
                message = recv_message(link.sock)
            except Exception:
                # EOF, socket error, or an undecodable frame: either way this
                # link is no longer trustworthy — drop it and requeue its work.
                self._drop_link(link)
                return
            if message.get("type") != "result":
                continue
            with self._state:
                task = link.in_flight.pop(message["id"], None)
                self._state.notify_all()
            if task is None or task.future.cancelled():
                continue
            if message.get("ok"):
                task.future.set_result(message["value"])
            else:
                task.future.set_exception(_remote_error(message))

    def _drop_link(self, link: _WorkerLink) -> None:
        """Remove a dead worker and requeue its in-flight tasks (front first)."""
        with self._state:
            if not link.alive:
                return
            link.alive = False
            if link in self._links:
                self._links.remove(link)
            orphans = [link.in_flight.pop(task_id) for task_id in sorted(link.in_flight)]
            for task in reversed(orphans):
                if task.future.cancelled():
                    continue
                if not self._open:
                    # Tearing down: settle the future instead of requeueing
                    # into a queue nobody will drain.
                    task.future.cancel()
                elif task.attempts >= MAX_TASK_ATTEMPTS:
                    task.future.set_exception(
                        WorkerConnectionError(
                            f"task failed {task.attempts} workers (last: "
                            f"{link.peer}); giving up instead of requeueing",
                        ),
                    )
                else:
                    self._queue.appendleft(task)
            self._state.notify_all()
        _close_quietly(link.sock)

    def _fail_everything_locked(self, error: Exception) -> None:
        """Fail every queued task (called with ``_state`` held)."""
        while self._queue:
            task = self._queue.popleft()
            if not task.future.cancelled():
                task.future.set_exception(error)
        self._state.notify_all()

    # -- convenience fabrics ---------------------------------------------------------
    @classmethod
    def loopback(
        cls,
        n_workers: int = 2,
        *,
        capacity: int = 1,
        connect_timeout: float = 60.0,
    ) -> "DistributedEnsembleExecutor":
        """A self-contained local fabric: listen on an ephemeral loopback port
        and spawn ``n_workers`` ``genlogic worker --connect`` subprocesses.

        The degenerate-but-real deployment used by the conformance tests, the
        distributed benchmark and CI's distributed-smoke job: every byte goes
        through the actual TCP protocol, only the machines are the same.
        ``close()`` additionally terminates the spawned worker processes.
        """
        executor = _LoopbackExecutor(
            n_workers,
            capacity=capacity,
            connect_timeout=connect_timeout,
        )
        return executor


class _LoopbackExecutor(DistributedEnsembleExecutor):
    """Listen-mode executor that owns its spawned local worker subprocesses."""

    def __init__(self, n_workers: int, *, capacity: int = 1, connect_timeout: float = 60.0):
        super().__init__(
            listen="127.0.0.1:0",
            min_workers=n_workers,
            connect_timeout=connect_timeout,
        )
        self._spawn_capacity = capacity
        self._processes: List[subprocess.Popen] = []

    def _assemble(self) -> None:
        super()._assemble()
        host, port = self.bound_address
        for _ in range(self._min_workers):
            self._processes.append(
                spawn_worker_process(
                    f"{host}:{port}",
                    capacity=self._spawn_capacity,
                ),
            )

    def _teardown(self) -> None:
        super()._teardown()
        processes, self._processes = self._processes, []
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                process.kill()
                process.wait(timeout=5.0)


def spawn_worker_process(
    connect: str,
    *,
    capacity: int = 1,
    python: Optional[str] = None,
) -> subprocess.Popen:
    """Start a local ``genlogic worker --connect`` subprocess.

    Runs ``python -m repro.cli worker`` with the current interpreter and the
    parent's full ``sys.path`` exported as ``PYTHONPATH`` — so a local worker
    can import exactly what the parent can (source checkouts, test modules),
    matching the visibility a forked pool worker would have.  Remote machines
    start the same entry point by hand and must have the dispatched functions
    importable themselves.
    """
    command = [
        python or sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "--connect",
        connect,
        "--capacity",
        str(int(capacity)),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(path for path in sys.path if path)
    return subprocess.Popen(command, env=env)


def _remote_error(message: Dict[str, Any]) -> BaseException:
    """Reconstruct a worker-side failure as a raisable exception.

    The nested error pickle is decoded defensively: if the exception's class
    does not exist on this machine, the failure degrades to a
    :class:`RemoteWorkerError` carrying the remote traceback text — per
    task, without poisoning the connection it arrived on.
    """
    blob = message.get("error_pickle")
    if blob is not None:
        try:
            error = pickle.loads(blob)
        except Exception:
            error = None
        if isinstance(error, BaseException):
            return error
    detail = message.get("traceback") or "(no traceback shipped)"
    return RemoteWorkerError(f"worker-side task failure: {detail}")


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - close() on a dead socket
        pass
