"""Socket-based multi-host transport for the ensemble engine.

:class:`DistributedEnsembleExecutor` runs ensemble batches on worker
*processes that may live on other machines*, speaking a length-prefixed
pickle protocol over TCP to ``genlogic worker`` processes.  It is a thin
adapter over the engine's shared submission core — the same
:class:`~repro.engine.core.BaseEnsembleExecutor` surface, the same windowed
submission loop, the same declarative payload envelope (model blob keyed on a
content fingerprint, generated propensity-kernel artifact per ``(model,
overrides)`` pair) and therefore the same worker-side fingerprint seen-set
and warm-cache discipline as the process pool — so every study that accepts
``executor=`` shards across machines with no study-code changes, and results
are bit-identical to the serial executor because seeds are fanned out before
dispatch.

Two ways to assemble a fabric (the wire protocol is identical once a
connection is up; the worker always speaks first with a ``hello`` frame):

* **coordinator listens** (``listen="host:port"``): workers dial in with
  ``genlogic worker --connect host:port``.  New workers may join mid-batch —
  capacity grows and the submission window widens on the next scheduling
  round — which is also how a lost worker's replacement re-enters the fabric.
* **coordinator dials** (``connect=["host:port", ...]``): workers were
  started with ``genlogic worker --listen host:port`` and the executor
  connects out to each — the shape behind the CLI's ``--dispatch`` flag.

Fault tolerance: every dispatched task is tracked per connection; when a
worker is lost (socket error, process death) its in-flight tasks are requeued
at the front of the dispatch queue and rerun on surviving or newly joined
workers — safe because payloads are deterministic pure functions of their
pre-fanned-out seeds.  A task that keeps killing workers fails after
``MAX_TASK_ATTEMPTS`` dispatches instead of cycling forever, and a
coordinator left with no workers and no way to get one fails the batch with
:class:`WorkerConnectionError` rather than hanging.

Wire format: each frame is a 4-byte big-endian length followed by a pickled
message dict — see :func:`send_message` / :func:`recv_message`, shared
verbatim by :mod:`repro.engine.worker`.  Lockstep batches (``batch_size=B``)
ride the same frames: the executor inherits ``batch_transport = "frame"``
from the base, so a B-replicate result crosses the socket as one compact
binary trajectory frame (raw little-endian float64 blocks plus a species
table encoded once per batch, :func:`repro.stochastic.encode_trajectories`)
inside the result message, instead of B pickled ``Trajectory`` objects.

Liveness: the coordinator pings every link on a configurable
``heartbeat_interval`` and retires any worker not heard from within
``heartbeat_timeout`` — so a *hung* worker (process alive, socket open,
nothing moving) is detected in seconds, its in-flight tasks requeued on
survivors, without waiting for TCP keepalive to give up.  All retry loops
(dialing, re-dialing a lost fabric, the supervisor's restarts) share the
capped exponential backoff policy in :mod:`repro.engine.backoff`.

.. warning:: **Trust model.**  The protocol is pickle over TCP: whoever
   completes a connection gets its frames unpickled — code execution — on
   the worker *and* the coordinator side alike.  Protocol 2 therefore gates
   every connection behind the mutual HMAC-SHA256 challenge–response in
   :mod:`repro.engine.auth`: with a shared secret configured (env
   ``GENLOGIC_FABRIC_KEY``, ``--key-file``, or ``key=`` in code) an
   unauthenticated or wrong-key peer is rejected *before any byte it sent
   is unpickled*, and ``genlogic serve`` may bind a non-loopback address.
   Without a key the fabric runs in the explicit trusted-network mode:
   same preamble, no proof — keep it on loopback, a private interface, or
   an authenticated tunnel (SSH/WireGuard/VPN).  The handshake
   authenticates but does not encrypt; confidential traffic still needs
   the tunnel.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import EngineError
from .auth import (
    KEY_ENV,
    ROLE_COORDINATOR,
    ROLE_WORKER,
    ProtocolError,
    handshake,
    resolve_key,
)
from .backoff import Backoff, BackoffPolicy
from .core import BaseEnsembleExecutor, BatchCacheStats

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME_BYTES",
    "FRAME_CAP_ENV",
    "RemoteWorkerError",
    "WorkerConnectionError",
    "DistributedEnsembleExecutor",
    "parse_address",
    "parse_dispatch_spec",
    "send_message",
    "recv_message",
    "spawn_worker_process",
]

#: Bumped on incompatible wire changes.  2 = the authenticated preamble
#: handshake (:mod:`repro.engine.auth`) runs before any pickled frame, and
#: ping/pong heartbeat frames exist.  v1 and v2 endpoints reject each other
#: cleanly at the preamble — upgrade coordinators and workers together.
PROTOCOL_VERSION = 2

#: Frames carry a 4-byte unsigned length; anything larger is a protocol error.
_MAX_FRAME_BYTES = (1 << 32) - 1

#: Default per-frame receive cap.  A corrupt length prefix can claim up to
#: 4 GiB; refusing anything above this *before allocating* turns a flipped
#: bit into a clean :class:`ProtocolError` instead of an allocation bomb.
#: Raise via ``max_frame_bytes=`` or the env var below for enormous models.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Environment override for the receive cap (bytes), honoured by both ends.
FRAME_CAP_ENV = "GENLOGIC_MAX_FRAME_BYTES"

#: A task is dispatched at most this many times (first try + requeues after
#: worker loss) before its future fails instead of hunting for a next victim.
MAX_TASK_ATTEMPTS = 3

#: Coordinator → worker ping cadence (seconds); the dead-worker timeout
#: defaults to four missed intervals.
DEFAULT_HEARTBEAT_INTERVAL = 5.0

#: Re-dial schedule after losing dial-mode workers: capped low so a fabric
#: inside its ``regrow_timeout`` window probes briskly, jittered so a fleet
#: of coordinators does not stampede a restarting worker.
REDIAL_BACKOFF = BackoffPolicy(initial=0.05, multiplier=2.0, maximum=1.0, jitter=0.5)


def frame_cap(max_bytes: Optional[int] = None) -> int:
    """The effective receive cap: explicit value, else env, else the default."""
    if max_bytes is not None:
        return min(int(max_bytes), _MAX_FRAME_BYTES)
    env_value = os.environ.get(FRAME_CAP_ENV)
    if env_value:
        try:
            return min(int(env_value), _MAX_FRAME_BYTES)
        except ValueError:
            raise EngineError(f"{FRAME_CAP_ENV}={env_value!r} is not an integer") from None
    return DEFAULT_MAX_FRAME_BYTES


class RemoteWorkerError(EngineError):
    """A shipped task raised on the worker; carries the remote traceback text."""


class WorkerConnectionError(EngineError):
    """The coordinator lost (or never had) the workers a batch needs."""


def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (host defaults to all interfaces)."""
    host, separator, port = address.rpartition(":")
    if not separator or not port.isdigit():
        raise EngineError(f"worker address {address!r} is not of the form host:port")
    return host or "0.0.0.0", int(port)


def parse_dispatch_spec(spec: str) -> List[str]:
    """Split a CLI ``--dispatch host:port,host:port`` spec, validating each."""
    addresses = [entry.strip() for entry in spec.split(",") if entry.strip()]
    if not addresses:
        raise EngineError("--dispatch needs at least one host:port worker address")
    for address in addresses:
        parse_address(address)
    return addresses


# -- framing (shared with repro.engine.worker) --------------------------------------


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one length-prefixed pickled frame."""
    data = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > _MAX_FRAME_BYTES:
        raise EngineError(f"protocol frame of {len(data)} bytes exceeds the 4 GiB limit")
    sock.sendall(struct.pack(">I", len(data)) + data)


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket, *, max_bytes: Optional[int] = None) -> Dict[str, Any]:
    """Read one length-prefixed pickled frame (raises ConnectionError on EOF).

    The length prefix is validated against :func:`frame_cap` *before* any
    allocation, and an undecodable body raises :class:`ProtocolError` rather
    than a raw unpickling crash — a corrupted or hostile frame retires the
    connection cleanly instead of taking the process down with it.
    """
    header = sock.recv(4)
    if not header:
        raise ConnectionError("peer closed the connection")
    if len(header) < 4:
        header += _recv_exact(sock, 4 - len(header))
    (length,) = struct.unpack(">I", header)
    cap = frame_cap(max_bytes)
    if length > cap:
        raise ProtocolError(
            f"frame length prefix claims {length} bytes, above the {cap}-byte "
            f"cap (corrupt prefix, or raise {FRAME_CAP_ENV}); refusing to "
            "allocate",
        )
    body = _recv_exact(sock, length)
    try:
        message = pickle.loads(body)
    except Exception as error:
        raise ProtocolError(f"undecodable protocol frame ({error!r})") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol frame decoded to {type(message).__name__}, expected a message dict",
        )
    return message


# -- coordinator-side task bookkeeping ----------------------------------------------


class _Task:
    """One submitted call: its future plus dispatch bookkeeping."""

    __slots__ = ("task_id", "fn", "payload", "future", "attempts")

    def __init__(self, task_id: int, fn: Callable[[Any], Any], payload: Any):
        self.task_id = task_id
        self.fn = fn
        self.payload = payload
        self.future: concurrent.futures.Future = concurrent.futures.Future()
        self.attempts = 0


class _WorkerLink:
    """One connected worker: socket, capacity, in-flight tasks, health counters."""

    def __init__(self, link_id: int, sock: socket.socket, capacity: int, peer: str):
        self.link_id = link_id
        self.sock = sock
        self.capacity = max(1, int(capacity))
        self.peer = peer
        self.in_flight: Dict[int, _Task] = {}
        self.send_lock = threading.Lock()
        self.alive = True
        now = time.monotonic()
        self.connected_at = now
        #: Last time ANY frame arrived from this worker (results count as
        #: liveness just as much as pongs — a busy worker is not a dead one).
        self.last_heard = now
        self.dispatched = 0
        self.completed = 0
        self.requeued = 0

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.in_flight)

    def health(self) -> Dict[str, Any]:
        now = time.monotonic()
        uptime = max(now - self.connected_at, 1e-9)
        return {
            "peer": self.peer,
            "capacity": self.capacity,
            "in_flight": len(self.in_flight),
            "dispatched": self.dispatched,
            "completed": self.completed,
            "requeued": self.requeued,
            "uptime_seconds": round(now - self.connected_at, 3),
            "tasks_per_second": round(self.completed / uptime, 4),
            "seconds_since_heard": round(now - self.last_heard, 3),
        }


class DistributedEnsembleExecutor(BaseEnsembleExecutor):
    """Run ensemble jobs on ``genlogic worker`` processes over TCP.

    Exactly one of ``connect`` (dial out to listening workers) or ``listen``
    (bind and accept dialing workers; block in :meth:`open` until
    ``min_workers`` have joined) must be given.  The executor then behaves
    like any other engine executor: a context manager with a persistent
    transport, ``iter_jobs`` / ``run_jobs`` / ``map`` inherited from the
    shared core, per-batch :class:`BatchCacheStats`, and submission-order
    result delivery bit-identical to the serial executor for the same seeds.
    Worker processes keep their fingerprint-keyed model and kernel caches
    across batches exactly like pool workers, so a closed-and-reopened batch
    on the same fabric starts warm.

    ``close()`` cancels queued work, asks each worker to shut down (dial-in
    workers exit; ``--listen`` workers go back to accepting the next
    coordinator) and releases the sockets; like the pool executor, the next
    use transparently re-opens the fabric.
    """

    name = "distributed"

    def __init__(
        self,
        connect: Optional[Sequence[str]] = None,
        *,
        listen: Optional[str] = None,
        min_workers: Optional[int] = None,
        connect_timeout: float = 30.0,
        regrow_timeout: Optional[float] = None,
        key: Optional[Any] = None,
        key_file: Optional[str] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: Optional[float] = None,
        max_frame_bytes: Optional[int] = None,
    ):
        if (connect is None) == (listen is None):
            raise EngineError(
                "DistributedEnsembleExecutor needs exactly one of connect=[...] "
                "(dial listening workers) or listen='host:port' (accept dialing "
                "workers)",
            )
        self._addresses = [str(address) for address in connect] if connect else []
        for address in self._addresses:
            parse_address(address)
        self._listen_address = listen
        if listen is not None:
            parse_address(listen)
        self._min_workers = (
            int(min_workers) if min_workers is not None else max(1, len(self._addresses))
        )
        if self._min_workers < 1:
            raise EngineError("a distributed executor needs at least one worker")
        self.connect_timeout = float(connect_timeout)
        #: How long a workerless fabric may wait for a replacement to join
        #: before failing the queued batch (defaults to ``connect_timeout``).
        self.regrow_timeout = (
            float(regrow_timeout) if regrow_timeout is not None else self.connect_timeout
        )
        #: Shared fabric secret (``None`` = explicit trusted-network mode).
        self._key = resolve_key(key, key_file)
        self.heartbeat_interval = float(heartbeat_interval)
        if self.heartbeat_interval <= 0:
            raise EngineError("heartbeat_interval must be positive")
        #: A worker silent this long is declared dead and its tasks requeued.
        self.heartbeat_timeout = (
            float(heartbeat_timeout)
            if heartbeat_timeout is not None
            else 4.0 * self.heartbeat_interval
        )
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise EngineError("heartbeat_timeout must exceed heartbeat_interval")
        self.max_frame_bytes = frame_cap(max_frame_bytes)
        self._requeues_total = 0
        self._links_dropped = 0
        self._tasks_completed = 0
        self.last_cache_hits = 0
        self.last_cache_misses = 0
        self._lifecycle_lock = threading.Lock()
        self._state = threading.Condition()
        self._open = False
        self._queue: Deque[_Task] = deque()
        self._links: List[_WorkerLink] = []
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._task_ids = itertools.count()
        self._link_ids = itertools.count()
        #: The address actually bound in listen mode (real port for ":0").
        self.bound_address: Optional[Tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def workers(self) -> int:
        """Workers connected right now (``min_workers`` while none are).

        Live, not the configured floor: a listening fabric that eight workers
        joined reports eight in :class:`EnsembleStats`, and loses them again
        as they leave.
        """
        with self._state:
            live = len(self._links)
        return live or self._min_workers

    @property
    def capacity(self) -> int:
        """Live parallel slots across every connected worker.

        Never reports zero: while the fabric is (re)assembling, the nominal
        worker count keeps the submission window open so tasks queue instead
        of stalling submission.
        """
        with self._state:
            live = sum(link.capacity for link in self._links if link.alive)
        return live or max(1, self._min_workers)

    @property
    def authenticated(self) -> bool:
        """Whether connections run the keyed HMAC handshake."""
        return self._key is not None

    def health(self) -> Dict[str, Any]:
        """A point-in-time fabric health snapshot (plain JSON-able types).

        The supervisor's status endpoint and the service's ``/v1/stats``
        surface this as their backpressure signal: per-worker throughput and
        staleness, queue depth, and cumulative requeue/drop counters.
        """
        with self._state:
            workers = [link.health() for link in self._links if link.alive]
            queue_depth = len(self._queue)
        return {
            "protocol_version": PROTOCOL_VERSION,
            "authenticated": self.authenticated,
            "open": self._open,
            "workers": workers,
            "queue_depth": queue_depth,
            "tasks_completed": self._tasks_completed,
            "tasks_requeued": self._requeues_total,
            "links_dropped": self._links_dropped,
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_timeout": self.heartbeat_timeout,
        }

    def open(self) -> "DistributedEnsembleExecutor":
        """Assemble the worker fabric now (otherwise on first use).

        Dial mode connects to every configured address; listen mode binds,
        starts accepting, and blocks until ``min_workers`` workers have said
        hello (``WorkerConnectionError`` after ``connect_timeout`` seconds).
        """
        with self._lifecycle_lock:
            if self._open:
                return self
            self._queue.clear()
            self._links = []
            self._open = True
            try:
                self._assemble()
                self._start_thread(self._dispatch_loop, "genlogic-dispatch")
                self._start_thread(self._heartbeat_loop, "genlogic-heartbeat")
                self._await_assembled()
            except Exception:
                self._teardown()
                raise
        return self

    def _assemble(self) -> None:
        """Start acquiring workers (subclass hook; runs before the dispatcher)."""
        if self._listen_address is not None:
            self._start_listening()
        else:
            for address in self._addresses:
                self._dial(address)

    def _await_assembled(self) -> None:
        """Block until the fabric is usable (runs after the dispatcher starts)."""
        if self._listen_address is not None:
            self._await_min_workers()

    def close(self) -> None:
        """Tear the fabric down.  Idempotent; next use re-opens it."""
        with self._lifecycle_lock:
            self._teardown()

    def _teardown(self) -> None:
        with self._state:
            self._open = False
            queued, self._queue = list(self._queue), deque()
            links, self._links = list(self._links), []
            in_flight: List[_Task] = []
            for link in links:
                # Mark dead under the lock so reader threads' _drop_link
                # becomes a no-op and cannot requeue into the dead queue.
                link.alive = False
                in_flight.extend(link.in_flight.values())
                link.in_flight.clear()
            self._state.notify_all()
        for task in queued + in_flight:
            # Every outstanding future must settle: a caller blocked in
            # wait_any on a task we will never hear back about would
            # otherwise hang forever.
            if not task.future.cancel() and not task.future.done():
                task.future.set_exception(
                    WorkerConnectionError(
                        "the distributed executor was closed with this task "
                        "still in flight",
                    ),
                )
        server, self._server = self._server, None
        if server is not None:
            _close_quietly(server)
        for link in links:
            try:
                with link.send_lock:
                    send_message(link.sock, {"type": "shutdown"})
            except OSError:
                pass
            _close_quietly(link.sock)
        threads, self._threads = self._threads, []
        for thread in threads:
            if thread is not threading.current_thread():
                thread.join(timeout=5.0)

    def __del__(self):  # pragma: no cover - GC safety net
        if getattr(self, "_open", False):
            try:
                self.close()
            except Exception:
                pass

    # -- fabric assembly -----------------------------------------------------------
    def _start_thread(self, target, name: str, *args) -> None:
        thread = threading.Thread(target=target, args=args, name=name, daemon=True)
        self._threads.append(thread)
        thread.start()

    def _start_listening(self) -> None:
        host, port = parse_address(self._listen_address)
        server = socket.create_server((host, port))
        server.settimeout(0.2)
        self._server = server
        self.bound_address = server.getsockname()[:2]
        self._start_thread(self._accept_loop, "genlogic-accept", server)

    def _accept_loop(self, server: socket.socket) -> None:
        while self._open:
            try:
                sock, _ = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                self._adopt(sock)
            except (OSError, ConnectionError, EngineError):
                _close_quietly(sock)

    def _dial(self, address: str) -> None:
        host, port = parse_address(address)
        deadline = time.monotonic() + self.connect_timeout
        backoff = Backoff(REDIAL_BACKOFF)
        while True:
            try:
                sock = socket.create_connection((host, port), timeout=self.connect_timeout)
                break
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise WorkerConnectionError(
                        f"could not reach worker at {address} within "
                        f"{self.connect_timeout:.0f} s: {error}",
                    ) from error
                time.sleep(backoff.next_delay())
        self._adopt(sock)

    def _adopt(self, sock: socket.socket) -> None:
        """Authenticate a fresh worker socket and add it to the fabric.

        The :mod:`repro.engine.auth` handshake runs first — an
        unauthenticated, wrong-key, or protocol-1 peer is rejected here,
        before :func:`recv_message` ever unpickles a frame it sent.
        """
        sock.settimeout(self.connect_timeout)
        handshake(sock, self._key, role=ROLE_COORDINATOR, peer_role=ROLE_WORKER)
        hello = recv_message(sock, max_bytes=self.max_frame_bytes)
        if hello.get("type") != "hello":
            raise ProtocolError(f"expected a hello frame, got {hello.get('type')!r}")
        if hello.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"worker speaks protocol {hello.get('version')!r}, "
                f"coordinator speaks {PROTOCOL_VERSION}",
            )
        sock.settimeout(None)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - transport nicety only
            pass
        peer_host, peer_port = sock.getpeername()[:2]
        peer = f"{peer_host}:{peer_port}"
        link = _WorkerLink(next(self._link_ids), sock, hello.get("capacity", 1), peer)
        with self._state:
            self._links.append(link)
            self._state.notify_all()
        self._start_thread(self._reader_loop, f"genlogic-read-{link.link_id}", link)

    def _await_min_workers(self) -> None:
        deadline = time.monotonic() + self.connect_timeout
        with self._state:
            while len(self._links) < self._min_workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise WorkerConnectionError(
                        f"only {len(self._links)} of {self._min_workers} workers "
                        f"connected within {self.connect_timeout:.0f} s",
                    )
                self._state.wait(timeout=min(remaining, 0.2))

    # -- dispatch ------------------------------------------------------------------
    def submit(self, fn, payload) -> concurrent.futures.Future:
        task = _Task(next(self._task_ids), fn, payload)
        with self._state:
            if not self._open:
                raise EngineError("this distributed executor is closed")
            self._queue.append(task)
            self._state.notify_all()
        return task.future

    # wait_any: the base's first-completion wait (reader threads resolve the
    # futures as result frames arrive).

    def _record_last_stats(self, stats: BatchCacheStats) -> None:
        self.last_cache_hits = stats.hits
        self.last_cache_misses = stats.misses

    def _dispatch_loop(self) -> None:
        """Move queued tasks onto workers with free slots (single scheduler)."""
        workerless_since: Optional[float] = None
        redial_backoff = Backoff(REDIAL_BACKOFF)
        while True:
            task: Optional[_Task] = None
            link: Optional[_WorkerLink] = None
            redial = False
            with self._state:
                while self._open:
                    if self._queue and not self._links:
                        # A workerless fabric gets ``regrow_timeout`` seconds
                        # for a replacement to join (on its own in listen
                        # mode; via re-dial in connect mode) before the
                        # queued batch fails instead of hanging forever.
                        now = time.monotonic()
                        if workerless_since is None:
                            workerless_since = now
                        if now - workerless_since > self.regrow_timeout:
                            self._fail_everything_locked(
                                WorkerConnectionError(
                                    "no workers joined within "
                                    f"{self.regrow_timeout:.0f} s of losing the "
                                    "last one; failing the queued batch",
                                ),
                            )
                            workerless_since = None
                            continue
                        if self._listen_address is None:
                            # Blocking connect + hello handshake must happen
                            # OUTSIDE the lock: submit(), capacity reads and
                            # reader threads all contend on _state.
                            redial = True
                            break
                    elif self._links:
                        workerless_since = None
                        redial_backoff.reset()
                    if self._queue:
                        link = self._pick_link()
                        if link is not None:
                            task = self._queue.popleft()
                            if task.future.cancelled():
                                task = None
                                continue
                            task.attempts += 1
                            link.in_flight[task.task_id] = task
                            break
                    self._state.wait(timeout=0.2)
                if not self._open:
                    return
            if redial:
                if self._try_regrow():
                    redial_backoff.reset()
                else:
                    # Capped exponential + jitter (shared policy with the
                    # supervisor's restarts): probe briskly right after the
                    # loss, back off while the outage lasts, never sleep past
                    # the cap so ``regrow_timeout`` expiry stays prompt.
                    time.sleep(redial_backoff.next_delay())
            elif task is not None:
                self._send_task(link, task)

    def _pick_link(self) -> Optional[_WorkerLink]:
        """The live worker with the most free slots (None when all are full)."""
        best = None
        for link in self._links:
            if link.alive and link.free_slots > 0:
                if best is None or link.free_slots > best.free_slots:
                    best = link
        return best

    def _try_regrow(self) -> bool:
        """Re-dial the configured addresses, looking for a restarted worker.

        Dial mode only (a listening fabric regrows through its acceptor);
        called by the dispatcher WITHOUT ``_state`` held, because connects
        and the hello handshake block.  Returns whether a worker was adopted.
        """
        for address in self._addresses:
            try:
                host, port = parse_address(address)
                sock = socket.create_connection((host, port), timeout=1.0)
            except OSError:
                continue
            try:
                self._adopt(sock)
                return True
            except (OSError, ConnectionError, EngineError):
                _close_quietly(sock)
        return False

    def _send_task(self, link: _WorkerLink, task: _Task) -> None:
        # The call travels as a nested pickle: the outer frame stays decodable
        # (plain types only) even when fn/payload cannot be unpickled on the
        # worker, so the worker reports a per-task failure instead of dying.
        try:
            call = pickle.dumps((task.fn, task.payload), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            with self._state:
                link.in_flight.pop(task.task_id, None)
                self._state.notify_all()
            if not task.future.cancelled():
                task.future.set_exception(error)
            return
        message = {"type": "job", "id": task.task_id, "call": call}
        try:
            with link.send_lock:
                send_message(link.sock, message)
            with self._state:
                link.dispatched += 1
        except (OSError, ConnectionError):
            self._drop_link(link, reason="send failed")
        except Exception as error:
            # The task itself is unshippable (e.g. an unpicklable payload):
            # that is the caller's error, not the worker's.
            with self._state:
                link.in_flight.pop(task.task_id, None)
                self._state.notify_all()
            if not task.future.cancelled():
                task.future.set_exception(error)

    def _heartbeat_loop(self) -> None:
        """Ping every link on the heartbeat cadence; retire the silent ones.

        Liveness is judged on ``last_heard`` (any frame counts), so a worker
        busy computing stays alive as long as its reader thread answers
        pings — only a truly wedged or blackholed peer goes stale.  Dropping
        here (not in the reader) is the point: a half-open TCP connection
        delivers no error for minutes, but it does go silent.
        """
        next_ping = time.monotonic()
        while True:
            with self._state:
                if not self._open:
                    return
                stale = [
                    link
                    for link in self._links
                    if time.monotonic() - link.last_heard > self.heartbeat_timeout
                ]
                targets = [link for link in self._links if link not in stale]
            for link in stale:
                self._drop_link(link, reason="heartbeat timeout")
            now = time.monotonic()
            if now >= next_ping:
                next_ping = now + self.heartbeat_interval
                for link in targets:
                    try:
                        with link.send_lock:
                            send_message(link.sock, {"type": "ping", "t": now})
                    except (OSError, ConnectionError):
                        self._drop_link(link, reason="ping send failed")
            # Short sleeps keep both close() responsive and stale detection
            # fine-grained even with second-scale heartbeat intervals.
            time.sleep(min(0.2, self.heartbeat_interval / 4.0))

    def _reader_loop(self, link: _WorkerLink) -> None:
        while True:
            try:
                message = recv_message(link.sock, max_bytes=self.max_frame_bytes)
            except Exception:
                # EOF, socket error, or an undecodable frame: either way this
                # link is no longer trustworthy — drop it and requeue its work.
                self._drop_link(link, reason="connection lost")
                return
            link.last_heard = time.monotonic()
            if message.get("type") != "result":
                continue  # pongs (and unknown frame types) only refresh liveness
            with self._state:
                task = link.in_flight.pop(message["id"], None)
                link.completed += 1
                self._tasks_completed += 1
                self._state.notify_all()
            if task is None or task.future.cancelled():
                continue
            if message.get("ok"):
                task.future.set_result(message["value"])
            else:
                task.future.set_exception(_remote_error(message))

    def _drop_link(self, link: _WorkerLink, *, reason: str = "connection lost") -> None:
        """Remove a dead worker and requeue its in-flight tasks (front first)."""
        with self._state:
            if not link.alive:
                return
            link.alive = False
            if link in self._links:
                self._links.remove(link)
            self._links_dropped += 1
            orphans = [link.in_flight.pop(task_id) for task_id in sorted(link.in_flight)]
            for task in reversed(orphans):
                if task.future.cancelled():
                    continue
                if not self._open:
                    # Tearing down: settle the future instead of requeueing
                    # into a queue nobody will drain.
                    task.future.cancel()
                elif task.attempts >= MAX_TASK_ATTEMPTS:
                    task.future.set_exception(
                        WorkerConnectionError(
                            f"task failed {task.attempts} workers (last: "
                            f"{link.peer}, {reason}); giving up instead of "
                            "requeueing",
                        ),
                    )
                else:
                    link.requeued += 1
                    self._requeues_total += 1
                    self._queue.appendleft(task)
            self._state.notify_all()
        _close_quietly(link.sock)

    def _fail_everything_locked(self, error: Exception) -> None:
        """Fail every queued task (called with ``_state`` held)."""
        while self._queue:
            task = self._queue.popleft()
            if not task.future.cancelled():
                task.future.set_exception(error)
        self._state.notify_all()

    # -- convenience fabrics ---------------------------------------------------------
    @classmethod
    def loopback(
        cls,
        n_workers: int = 2,
        *,
        capacity: int = 1,
        connect_timeout: float = 60.0,
        key: Optional[Any] = None,
        **kwargs: Any,
    ) -> "DistributedEnsembleExecutor":
        """A self-contained local fabric: listen on an ephemeral loopback port
        and spawn ``n_workers`` ``genlogic worker --connect`` subprocesses.

        The degenerate-but-real deployment used by the conformance tests, the
        distributed benchmark and CI's distributed-smoke job: every byte goes
        through the actual TCP protocol, only the machines are the same.
        ``key=`` threads a shared secret through to both the coordinator and
        the spawned workers (via their environment), so the authenticated
        handshake is exercised end to end.  ``close()`` additionally
        terminates the spawned worker processes.
        """
        executor = _LoopbackExecutor(
            n_workers,
            capacity=capacity,
            connect_timeout=connect_timeout,
            key=key,
            **kwargs,
        )
        return executor


class _LoopbackExecutor(DistributedEnsembleExecutor):
    """Listen-mode executor that owns its spawned local worker subprocesses."""

    def __init__(
        self,
        n_workers: int,
        *,
        capacity: int = 1,
        connect_timeout: float = 60.0,
        key: Optional[Any] = None,
        **kwargs: Any,
    ):
        super().__init__(
            listen="127.0.0.1:0",
            min_workers=n_workers,
            connect_timeout=connect_timeout,
            key=key,
            **kwargs,
        )
        self._spawn_capacity = capacity
        self._processes: List[subprocess.Popen] = []

    def _assemble(self) -> None:
        super()._assemble()
        host, port = self.bound_address
        for _ in range(self._min_workers):
            self._processes.append(
                spawn_worker_process(
                    f"{host}:{port}",
                    capacity=self._spawn_capacity,
                    key=self._key,
                ),
            )

    def _teardown(self) -> None:
        super()._teardown()
        processes, self._processes = self._processes, []
        for process in processes:
            if process.poll() is None:
                process.terminate()
        for process in processes:
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                process.kill()
                process.wait(timeout=5.0)


def spawn_worker_process(
    connect: Optional[str] = None,
    *,
    listen: Optional[str] = None,
    capacity: int = 1,
    python: Optional[str] = None,
    key: Optional[bytes] = None,
) -> subprocess.Popen:
    """Start a local ``genlogic worker`` subprocess (dial-out or listening).

    Runs ``python -m repro.cli worker`` with the current interpreter and the
    parent's full ``sys.path`` exported as ``PYTHONPATH`` — so a local worker
    can import exactly what the parent can (source checkouts, test modules),
    matching the visibility a forked pool worker would have.  A fabric ``key``
    travels via the child's ``GENLOGIC_FABRIC_KEY`` environment variable (not
    argv, which is world-readable in ``ps``).  Remote machines start the same
    entry point by hand and must have the dispatched functions importable
    themselves.
    """
    if (connect is None) == (listen is None):
        raise EngineError("spawn_worker_process needs exactly one of connect= or listen=")
    command = [
        python or sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "--capacity",
        str(int(capacity)),
    ]
    if connect is not None:
        command += ["--connect", connect]
    else:
        command += ["--listen", listen]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(path for path in sys.path if path)
    if key is not None:
        env[KEY_ENV] = key.decode("utf-8", errors="surrogateescape")
    else:
        env.pop(KEY_ENV, None)
    return subprocess.Popen(command, env=env)


def _remote_error(message: Dict[str, Any]) -> BaseException:
    """Reconstruct a worker-side failure as a raisable exception.

    The nested error pickle is decoded defensively: if the exception's class
    does not exist on this machine, the failure degrades to a
    :class:`RemoteWorkerError` carrying the remote traceback text — per
    task, without poisoning the connection it arrived on.
    """
    blob = message.get("error_pickle")
    if blob is not None:
        try:
            error = pickle.loads(blob)
        except Exception:
            error = None
        if isinstance(error, BaseException):
            return error
    detail = message.get("traceback") or "(no traceback shipped)"
    return RemoteWorkerError(f"worker-side task failure: {detail}")


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - close() on a dead socket
        pass
