"""The canonical study request object: :class:`StudySpec`.

Before this module existed, the parameters of a replicate study were
scattered across divergent keyword forms — ``workers=`` on the engine APIs,
``--jobs`` on the CLI, ``executor=`` / ``batch_size=`` / ``analysis_jobs=``
threaded ad hoc through :mod:`repro.analysis.replicates` and
:mod:`repro.vlab.experiment` — which meant there was no single serializable
object that *names a study*.  A web tier needs exactly that object twice
over: once as the request schema (``POST /v1/studies`` bodies are StudySpec
JSON) and once as the identity under content-addressed result caching.

:class:`StudySpec` is that object.  It is

* **frozen** — hashable, safe as a dict key, immune to accidental mutation
  between submission and execution;
* **canonical** — the simulator name is canonicalized, overrides are sorted,
  so two specs describing the same study compare (and serialize) equal;
* **JSON round-trippable** — :meth:`to_json` / :meth:`from_json` with a
  versioned ``schema`` field, so persisted or on-the-wire specs from a newer
  schema are rejected loudly instead of misread;
* **content-addressable** — :meth:`cache_key` digests everything that
  determines the study's *result*: the resolved circuit model's content
  fingerprint (:func:`repro.engine.cache.model_fingerprint`), the frozen
  parameter overrides, the seed, the stimulus protocol (hold time, repeats,
  input clamp levels, schedule), the sampling interval, the simulator, the
  replicate count and the analyzer configuration.  Execution knobs
  (``workers``, ``batch_size``, ``analysis_jobs``) are deliberately
  *excluded*: the engine guarantees bit-identical results across executors
  and batch sizes, so they cannot change the answer — only how fast it
  arrives.  The digest is deterministic across processes and machines
  (verified by the worker-process tests), which is what lets a service
  parent and a fabric worker agree on a key without talking to each other.

The same spec is consumed identically by the Python API
(:func:`repro.analysis.run_replicate_study` /
:func:`~repro.analysis.arun_replicate_study`), the CLI (``genlogic verify
--spec study.json``) and the HTTP service (:mod:`repro.service`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from ..errors import EngineError
from ..stochastic import canonical_simulator_name

__all__ = ["STUDY_SPEC_SCHEMA", "StudySpec", "canonical_workers", "frozen_overrides"]

#: Version of the StudySpec wire schema.  Bump when a field is added,
#: removed or changes meaning; :meth:`StudySpec.from_dict` rejects specs from
#: a *newer* schema instead of silently dropping fields it does not know.
STUDY_SPEC_SCHEMA = 1


def canonical_workers(
    workers: Optional[int],
    jobs: Optional[int],
    *,
    default: int = 1,
) -> int:
    """Resolve the canonical ``workers`` value, honouring the ``jobs`` alias.

    ``workers`` is the canonical name of the concurrency knob everywhere in
    the package (it always meant the same thing as the CLI's ``--jobs``);
    ``jobs=`` is kept as a deprecated alias so existing call sites keep
    working, but it warns and may not disagree with an explicit ``workers=``.
    """
    if jobs is not None:
        warnings.warn(
            "the 'jobs' keyword is deprecated; use 'workers' (same meaning)",
            DeprecationWarning,
            stacklevel=3,
        )
        if workers is not None and int(workers) != int(jobs):
            raise EngineError(
                "pass either workers= or the deprecated jobs= alias, not "
                f"conflicting values of both (workers={workers!r}, jobs={jobs!r})",
            )
        return int(jobs)
    return default if workers is None else int(workers)


def frozen_overrides(
    overrides: Union[None, Mapping[str, float], Iterable[Tuple[str, float]]],
) -> Tuple[Tuple[str, float], ...]:
    """Overrides as a sorted, hashable ``((name, value), ...)`` tuple.

    The canonical frozen form shared by every spec that carries parameter
    overrides (:class:`StudySpec` here, :class:`repro.search.SearchSpec`'s
    variant grid): sorted by name, values coerced to float, duplicate names
    rejected — so two equal override sets always compare, hash and serialize
    identically.
    """
    if overrides is None:
        return ()
    if isinstance(overrides, Mapping):
        items = overrides.items()
    else:
        items = list(overrides)
    frozen = tuple(sorted((str(name), float(value)) for name, value in items))
    names = [name for name, _ in frozen]
    if len(set(names)) != len(names):
        raise EngineError(f"duplicate parameter override names in {names}")
    return frozen


#: Backwards-compatible alias of :func:`frozen_overrides` (pre-public name).
_frozen_overrides = frozen_overrides


@dataclass(frozen=True)
class StudySpec:
    """One replicate study, described declaratively and canonically.

    Parameters
    ----------
    circuit:
        Built-in circuit name (``"and"``, ``"0x0B"``, ``"cello_0x0b"`` ...),
        resolved through :func:`repro.gates.resolve_circuit`.  Specs built
        from a live :class:`~repro.gates.GeneticCircuit` via
        :meth:`for_circuit` carry the object along, so unnamed custom
        circuits work everywhere except JSON re-resolution.
    n_replicates:
        Independent seeded experiments to aggregate.
    threshold / fov_ud:
        Analyzer configuration (digital threshold, acceptable fraction of
        variation).
    hold_time / repeats:
        Stimulus protocol: how long each input combination is held, and how
        many times the exhaustive walk repeats.
    simulator:
        Canonical simulator name or documented alias.
    seed:
        Root seed the per-replicate seeds are fanned out from.  ``None``
        draws fresh entropy — such a spec executes fine but has no stable
        :meth:`cache_key` (and the service will refuse to cache it).
    sample_interval:
        Trace sampling interval of the virtual-laboratory run.
    overrides:
        Parameter overrides applied at model-compile time (part of the
        compiled-model cache key and of :meth:`cache_key`).
    workers / batch_size / analysis_jobs:
        Execution knobs: worker processes, lockstep replicates per dispatch,
        analysis fan-out.  They tune *how* the study runs, never what it
        computes — results are bit-identical by the engine's contract — so
        they are excluded from :meth:`cache_key`.
    schema:
        Wire-schema version (see :data:`STUDY_SPEC_SCHEMA`).
    """

    circuit: str
    n_replicates: int = 5
    threshold: float = 15.0
    fov_ud: float = 0.25
    hold_time: float = 200.0
    repeats: int = 1
    simulator: str = "ssa"
    seed: Optional[int] = None
    sample_interval: float = 1.0
    overrides: Tuple[Tuple[str, float], ...] = ()
    workers: int = 1
    batch_size: int = 1
    analysis_jobs: int = 1
    schema: int = STUDY_SPEC_SCHEMA

    def __post_init__(self) -> None:
        if not isinstance(self.circuit, str) or not self.circuit:
            raise EngineError("StudySpec.circuit must be a non-empty circuit name")
        object.__setattr__(self, "simulator", canonical_simulator_name(self.simulator))
        object.__setattr__(self, "overrides", _frozen_overrides(self.overrides))
        if self.seed is not None:
            if isinstance(self.seed, bool) or not isinstance(self.seed, int):
                try:
                    coerced = int(self.seed)  # numpy integers
                except (TypeError, ValueError):
                    raise EngineError(
                        "StudySpec.seed must be an integer or None (live "
                        "generators cannot be serialized; pass them through "
                        "the legacy rng= form instead)",
                    ) from None
                if isinstance(self.seed, float) and self.seed != coerced:
                    raise EngineError("StudySpec.seed must be an integer or None")
                object.__setattr__(self, "seed", coerced)
        for name in ("n_replicates", "repeats", "workers", "batch_size", "analysis_jobs"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise EngineError(f"StudySpec.{name} must be a positive integer")
        for name in ("threshold", "fov_ud", "hold_time", "sample_interval"):
            value = float(getattr(self, name))
            object.__setattr__(self, name, value)
            if value <= 0:
                raise EngineError(f"StudySpec.{name} must be positive")
        if not isinstance(self.schema, int) or self.schema < 1:
            raise EngineError("StudySpec.schema must be a positive integer")
        if self.schema > STUDY_SPEC_SCHEMA:
            raise EngineError(
                f"StudySpec schema {self.schema} is newer than this package "
                f"understands (max {STUDY_SPEC_SCHEMA}); upgrade genlogic",
            )

    # -- construction ----------------------------------------------------------
    @classmethod
    def for_circuit(cls, circuit, **fields: Any) -> "StudySpec":
        """Build a spec from a circuit *name or live object* plus field values.

        A :class:`~repro.gates.GeneticCircuit` instance is attached to the
        spec (so resolution never consults the name registry), with its
        ``name`` recorded as the ``circuit`` field; a string is stored as-is
        and resolved lazily on first use.
        """
        if isinstance(circuit, str):
            return cls(circuit=circuit, **fields)
        name = getattr(circuit, "name", None)
        if not name:
            raise EngineError("StudySpec.for_circuit needs a circuit name or GeneticCircuit")
        spec = cls(circuit=str(name), **fields)
        object.__setattr__(spec, "_circuit", circuit)
        return spec

    def replace(self, **changes: Any) -> "StudySpec":
        """A copy with ``changes`` applied (re-validated and re-canonicalized).

        The resolved circuit object (if any) is carried over, so replacing
        execution knobs on a spec built from a live circuit keeps working
        without a registry lookup.
        """
        clone = dataclasses.replace(self, **changes)
        attached = self.__dict__.get("_circuit")
        if attached is not None:
            object.__setattr__(clone, "_circuit", attached)
        return clone

    # -- resolution ------------------------------------------------------------
    def resolve_circuit(self):
        """The :class:`~repro.gates.GeneticCircuit` this spec names (memoized)."""
        attached = self.__dict__.get("_circuit")
        if attached is not None:
            return attached
        from ..gates.circuits import resolve_circuit

        circuit = resolve_circuit(self.circuit)
        object.__setattr__(self, "_circuit", circuit)
        return circuit

    def experiment(self):
        """The :class:`~repro.vlab.LogicExperiment` configured by this spec."""
        from ..vlab.experiment import LogicExperiment

        return LogicExperiment.for_spec(self)

    def template_job(self):
        """The :class:`~repro.engine.SimulationJob` template (seedless).

        Per-replicate seeds are fanned out from :attr:`seed` by
        :func:`repro.engine.replicate_jobs` at submission time; the template
        itself carries none.
        """
        return self.experiment().job(
            hold_time=self.hold_time,
            repeats=self.repeats,
            overrides=dict(self.overrides) if self.overrides else None,
        )

    # -- content addressing ----------------------------------------------------
    def cache_key(self) -> str:
        """A content-addressed digest of everything that determines the result.

        Two specs share a key exactly when they describe the same
        computation: same resolved model *content* (via
        :func:`~repro.engine.cache.model_fingerprint`, so rebuilding a
        circuit from scratch — in another process, on another machine —
        produces the same key), same stimulus schedule and clamp levels,
        same sampling, simulator, seed, replicate count, overrides and
        analyzer configuration.  Execution knobs do not participate, because
        the engine's bit-identical contract makes them irrelevant to the
        result.  Raises :class:`~repro.errors.EngineError` when the spec has
        no seed — an unseeded study draws fresh entropy per run and has no
        stable identity to cache under.
        """
        if self.seed is None:
            raise EngineError(
                "a StudySpec without a seed has no stable cache key (every "
                "execution draws fresh entropy); set seed= to make the study "
                "content-addressable",
            )
        from .cache import model_fingerprint

        experiment = self.experiment()
        job = self.template_job()
        # The schedule is a plain tree of floats/strings built deterministically
        # from the protocol, so its pickle is a stable content token.
        schedule_digest = hashlib.sha256(pickle.dumps(job.schedule)).hexdigest()
        payload = {
            "schema": self.schema,
            "model": model_fingerprint(experiment.model),
            "experiment": {
                "inputs": list(experiment.input_species),
                "output": experiment.output_species,
                "input_high": experiment.input_high,
                "input_low": experiment.input_low,
            },
            "job": {
                "simulator": job.simulator,
                "t_end": job.t_end,
                "sample_interval": job.sample_interval,
                "schedule": schedule_digest,
                "overrides": [list(pair) for pair in self.overrides],
            },
            "study": {
                "n_replicates": self.n_replicates,
                "seed": self.seed,
            },
            "analyzer": {
                "threshold": self.threshold,
                "fov_ud": self.fov_ud,
            },
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- serialization ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (overrides become ``[[name, value], ...]``)."""
        data = dataclasses.asdict(self)
        data["overrides"] = [list(pair) for pair in self.overrides]
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudySpec":
        """Parse a dict (e.g. a decoded request body), rejecting unknown keys.

        Unknown fields raise instead of being dropped: a typo in a request
        (``"thresold"``) must not silently run the default study, and a field
        from a future schema must not be half-honoured.
        """
        if not isinstance(data, Mapping):
            raise EngineError("a StudySpec must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise EngineError(
                f"unknown StudySpec field(s) {unknown}; known fields: {sorted(known)}",
            )
        if "circuit" not in data:
            raise EngineError("a StudySpec needs a 'circuit' field")
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: Union[str, bytes]) -> "StudySpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise EngineError(f"StudySpec JSON is malformed: {error}") from None
        return cls.from_dict(data)

    # -- pickling --------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        # Drop the memoized circuit: pickles stay light and deterministic, and
        # the receiving process re-resolves (or re-attaches) its own instance.
        return {k: v for k, v in self.__dict__.items() if not k.startswith("_")}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
