"""Transport-agnostic submission core of the ensemble engine.

Every executor in the engine — serial, process pool, socket-distributed, and
the asyncio facade over any of them — used to carry its own copy of the same
orchestration logic: windowed submission (at most ``2 * capacity`` undelivered
results in flight), ordered-vs-completion-order delivery, cancel-on-failure,
per-batch :class:`BatchCacheStats`, and the model-blob + kernel-artifact
payload envelope with its repeat-blob fast path.  This module is where all of
that now lives, exactly once:

* :class:`ExecutorBackend` — the narrow transport protocol a backend has to
  implement: ``submit(fn, payload) -> Future``, ``wait_any``, a ``capacity``,
  and an ``open``/``close`` lifecycle.  Everything else is shared.
* :func:`iter_windowed` — THE windowed submission loop.  Each backend brings
  only its transport; the window accounting, delivery buffering, progress
  hooks and cancel-on-exit semantics are identical for every transport.
* :func:`job_payloads` / :func:`simulate_payload` — the declarative worker
  envelope (pickled model blob keyed on a content fingerprint, plus the
  generated propensity-kernel artifact per ``(model, overrides)`` pair) and
  its remote entry point, shared verbatim by pool workers and socket workers
  so both populate the same worker-side fingerprint seen-set.
* :class:`BaseEnsembleExecutor` — the public executor surface (``iter_jobs``
  / ``run_jobs`` / ``map`` / context-managed lifecycle) expressed once over
  the protocol; concrete executors subclass it and implement transport only.

Determinism contract: the core never *creates* randomness.  Every job arrives
with its seed already fanned out from the root seed, so any two backends —
and the streamed, materialized, sync and async delivery modes — produce
bit-identical trajectories for the same job list.
"""

from __future__ import annotations

import concurrent.futures
import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import (
    Any,
    Callable,
    Collection,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from ..errors import EngineError
from ..stochastic import resolve_simulator
from ..stochastic.batch import simulate_ssa_batch
from ..stochastic.codegen import BACKEND_CODEGEN, default_backend
from ..stochastic.trajectory import Trajectory, decode_trajectories, encode_trajectories
from .cache import (
    CompiledModelCache,
    kernel_artifact_for_blob,
    model_blob,
    register_worker_kernel,
    worker_compiled,
    worker_model_from_blob,
)
from .jobs import SimulationJob

__all__ = [
    "ProgressHook",
    "BatchCacheStats",
    "ExecutorBackend",
    "BaseEnsembleExecutor",
    "iter_windowed",
    "submission_window",
    "job_payloads",
    "simulate_payload",
    "BATCH_TRANSPORTS",
    "batch_job_groups",
    "batch_job_payloads",
    "simulate_batch_payload",
    "decode_batch_result",
    "discard_batch_segment",
]

#: Called after each completed run.  ``executor.map`` hooks receive
#: ``(done_count, total, payload_index)``; ``run_jobs`` / ``iter_jobs`` hooks
#: receive ``(done_count, total, job)``.
ProgressHook = Callable[[int, int, Any], None]


@dataclass
class BatchCacheStats:
    """Compiled-model cache counters of ONE batch iteration.

    Each ``iter_jobs`` / ``run_jobs`` call accumulates into its own instance,
    so concurrent batches on a shared executor (e.g. several studies
    multiplexed over one pool by :func:`repro.engine.gather_studies`) cannot
    clobber each other's statistics.  The executor-global
    ``last_cache_hits`` / ``last_cache_misses`` attributes survive only as a
    snapshot of the most recently *finished* batch.
    """

    hits: int = 0
    misses: int = 0

    def record(self, cache_hit: bool) -> None:
        if cache_hit:
            self.hits += 1
        else:
            self.misses += 1


@runtime_checkable
class ExecutorBackend(Protocol):
    """The transport half of an executor: what :func:`iter_windowed` drives.

    A backend is *only* responsible for moving one callable-plus-payload to
    wherever it executes and exposing the result as a
    :class:`concurrent.futures.Future`.  Windowing, delivery order, progress,
    statistics and cancellation policy belong to the shared core — a new
    transport (a socket fabric, an SSH fan-out, a batch queue) implements
    these four methods plus ``capacity`` and inherits the rest.
    """

    #: Human-readable transport name (lands in :class:`EnsembleStats`).
    name: str

    @property
    def capacity(self) -> int:
        """Parallel slots available now; the in-flight window is twice this.

        May change between waits (a distributed backend grows when workers
        join), so the core re-reads it every scheduling round.
        """
        ...

    def open(self) -> None:
        """Acquire transport resources (idempotent; called before first submit)."""
        ...

    def close(self) -> None:
        """Release transport resources (idempotent)."""
        ...

    def submit(self, fn: Callable[[Any], Any], payload: Any) -> "concurrent.futures.Future":
        """Dispatch one call; the returned future resolves to ``fn(payload)``."""
        ...

    def wait_any(
        self,
        pending: Mapping["concurrent.futures.Future", int],
    ) -> Collection["concurrent.futures.Future"]:
        """Block until at least one of ``pending`` (future -> submission index,
        in submission order) is done, and return the completed futures."""
        ...


def submission_window(capacity: int) -> int:
    """In-flight budget for a backend: ``2 * capacity``, never below one.

    Twice the parallel slots keeps every slot busy while the previous result
    travels back, without letting a long batch pile onto the transport queue
    — the bound that makes streamed parents hold O(capacity) trajectories.
    """
    return max(1, 2 * int(capacity))


def iter_windowed(
    backend: ExecutorBackend,
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    ordered: bool = True,
    progress: Optional[ProgressHook] = None,
    items: Optional[Sequence[Any]] = None,
    weights: Optional[Sequence[int]] = None,
    drain_on_close: bool = False,
) -> Iterator[Tuple[int, Any]]:
    """THE windowed submission loop, yielding ``(index, result)`` per payload.

    This is the one implementation behind every executor's ``iter_jobs`` and
    ``map``: at most ``submission_window(backend.capacity)`` submitted-but-
    undelivered results exist at any moment, later payloads are dispatched
    only as earlier results are consumed, and delivery is either submission
    order (``ordered=True``, completed-out-of-order results are buffered and
    count against the window) or completion order.  ``progress`` fires at
    completion time with ``(done, total, items[index])`` — ``items`` defaults
    to the payload index, which is the ``map`` contract.

    ``weights`` makes the window count *work units* instead of payloads: a
    batch payload carrying B replicates weighs B, so the in-flight bound
    stays "at most ``2 * capacity`` undelivered *runs*" regardless of how
    runs are packed into frames.  Submission stops while the summed weight of
    pending-plus-buffered payloads meets the window (a single over-weight
    payload still submits alone rather than deadlocking).

    Failure and abandonment semantics: a payload whose future raises
    propagates its exception to the consumer, and the ``finally`` below
    cancels every still-pending future — whether the loop ended by
    exhaustion, by a raising payload, or by the consumer closing the
    generator mid-stream, the backend is never left grinding through work
    nobody will collect.  ``drain_on_close=True`` additionally *waits* for
    futures that refused cancellation (they were already executing) before
    returning — required when results own external resources (shared-memory
    segments) that the caller sweeps up right after the loop ends.
    """
    payloads = list(payloads)
    total = len(payloads)
    if total == 0:
        return
    weight = [1] * total if weights is None else [max(1, int(w)) for w in weights]
    if len(weight) != total:
        raise EngineError(f"{len(weight)} weights for {total} payloads")
    backend.open()
    pending: Dict[concurrent.futures.Future, int] = {}
    buffered: Dict[int, Any] = {}
    in_flight = 0  # summed weight of pending + (ordered) buffered payloads
    next_submit = 0
    next_yield = 0
    done = 0
    try:
        while next_submit < total or pending or buffered:
            # Capacity is re-read every round: a distributed backend's window
            # widens as workers join and narrows when they are lost.
            window = submission_window(backend.capacity)
            while next_submit < total and in_flight < window:
                future = backend.submit(fn, payloads[next_submit])
                pending[future] = next_submit
                in_flight += weight[next_submit]
                next_submit += 1
            if pending:
                completed = backend.wait_any(pending)
                for future in completed:
                    index = pending.pop(future)
                    result = future.result()
                    done += 1
                    if progress is not None:
                        progress(done, total, items[index] if items is not None else index)
                    if ordered:
                        buffered[index] = result
                    else:
                        in_flight -= weight[index]
                        yield index, result
            if ordered:
                # The smallest unyielded index is always submitted (payloads
                # are dispatched in order), so this drain cannot starve.
                while next_yield in buffered:
                    in_flight -= weight[next_yield]
                    yield next_yield, buffered.pop(next_yield)
                    next_yield += 1
    finally:
        uncancellable = [future for future in pending if not future.cancel()]
        if drain_on_close and uncancellable:
            concurrent.futures.wait(uncancellable)


def job_payloads(jobs: Sequence[SimulationJob]) -> List[Dict[str, Any]]:
    """Declarative worker payloads, with one pickled blob per distinct model.

    The blob is serialized once per distinct model and shared by every
    payload referencing it, so per-job submission pays a bytes copy rather
    than re-pickling the model object graph.  With the codegen backend
    active, each payload also carries the generated propensity-kernel
    artifact for *its own* ``(model, overrides)`` pair (not the whole batch's
    override grid — that would make sweep IPC quadratic): the worker
    ``exec``'s the shipped module instead of re-compiling kinetic-law ASTs on
    its first job.  Pool workers and socket workers receive exactly this
    envelope, so both share the fingerprint seen-set fast path.
    """
    ship_kernels = default_backend() == BACKEND_CODEGEN
    blobs: Dict[int, Tuple[bytes, str]] = {}
    kernels: Dict[Tuple[int, Tuple], Any] = {}
    payloads = []
    for job in jobs:
        if isinstance(job.seed, np.random.Generator):
            raise EngineError(
                "jobs dispatched to worker processes need picklable seeds "
                "(None, int or SeedSequence), not a live Generator; fan the "
                "root seed out with repro.stochastic.fan_out_seeds first",
            )
        key = id(job.model)
        if key not in blobs:
            blobs[key] = model_blob(job.model)
        blob, fingerprint = blobs[key]
        frozen = job.frozen_overrides()
        kernel = None
        if ship_kernels:
            kernel_key = (key, frozen)
            if kernel_key not in kernels:
                try:
                    kernels[kernel_key] = kernel_artifact_for_blob(
                        job.model,
                        fingerprint,
                        frozen,
                    )
                except Exception:
                    # Codegen failures are not fatal at dispatch time: the
                    # worker falls back to an AST compile, which surfaces any
                    # real model error where it always did.
                    kernels[kernel_key] = None
            kernel = kernels[kernel_key]
        payloads.append(
            {
                "fingerprint": fingerprint,
                "model_blob": blob,
                "overrides": frozen,
                "simulator": job.simulator,
                "t_end": job.t_end,
                "seed": job.seed,
                "kwargs": job.simulate_kwargs(),
                "kernel": kernel,
            },
        )
    return payloads


def simulate_payload(payload: Dict[str, Any]) -> Tuple[Trajectory, bool]:
    """Execute one declarative simulation payload (remote-side entry point).

    The payload is a plain dict (not a :class:`SimulationJob`) so the worker
    does not re-validate the job.  It carries the pickled model together with
    a parent-computed content fingerprint; the worker deserializes each
    fingerprint once, so each distinct model unpickles and compiles once per
    worker process regardless of how many jobs or batches reference it.
    Returns ``(trajectory, cache_hit)``; the hit flag lets the parent
    aggregate worker-side cache statistics.  Pool workers call this through
    pickled-by-reference function dispatch and socket workers through the
    wire protocol — one entry point, one seen-set, one cache discipline.
    """
    fingerprint = payload["fingerprint"]
    model = worker_model_from_blob(fingerprint, payload["model_blob"])
    overrides = payload.get("overrides", ())
    register_worker_kernel(fingerprint, overrides, payload.get("kernel"))
    compiled, cache_hit = worker_compiled(model, fingerprint, overrides)
    simulate = resolve_simulator(payload["simulator"])
    trajectory = simulate(
        compiled,
        payload["t_end"],
        rng=payload["seed"],
        **payload["kwargs"],
    )
    return trajectory, cache_hit


# -- batch-lockstep payloads ----------------------------------------------------
#
# With ``batch_size > 1`` the engine packs consecutive jobs that share one
# simulation configuration (same model, overrides, simulator, schedule and
# sampling) into one *batch payload*: the worker advances all B replicates in
# lockstep (``repro.stochastic.batch``) and returns one compact binary frame
# instead of B pickled trajectories.  Dispatch overhead and result framing are
# paid once per batch, which is the whole point; per-replicate seeds are still
# fanned out by the parent, so every replicate stays bit-identical to its
# serial ``batch_size=1`` run.

#: How a backend wants batch results returned.  ``"inline"`` — in-process
#: objects (serial); ``"frame"`` — the binary frame as bytes riding the
#: transport's existing result path (sockets); ``"shm"`` — the frame in a
#: ``multiprocessing.shared_memory`` segment, name + size returned (pools).
BATCH_TRANSPORTS = ("inline", "frame", "shm")


def _batch_config_key(job: SimulationJob) -> Tuple:
    """Everything replicates must share to run in one lockstep batch."""
    initial = tuple(sorted(job.initial_state.items())) if job.initial_state else None
    record = tuple(job.record_species) if job.record_species is not None else None
    return (
        id(job.model),
        job.frozen_overrides(),
        job.simulator,
        float(job.t_end),
        # InputSchedule has no value equality; replicate_jobs clones share
        # the schedule object, which is exactly the batchable case.
        id(job.schedule) if job.schedule is not None else None,
        float(job.sample_interval),
        initial,
        record,
    )


def batch_job_groups(jobs: Sequence[SimulationJob], batch_size: int) -> List[List[int]]:
    """Pack job indices into batches of at most ``batch_size``.

    Only *consecutive* jobs sharing one configuration (same model, overrides,
    simulator, ``t_end``, schedule object, sampling and recording) batch
    together — submission order, and therefore ordered delivery, is
    preserved.  A replicate fan-out becomes ``ceil(n / batch_size)`` groups
    (the remainder group is simply smaller); a parameter sweep degenerates to
    singleton groups, which run exactly like ``batch_size=1``.
    """
    batch_size = int(batch_size)
    if batch_size < 1:
        raise EngineError("batch_size must be a positive integer")
    groups: List[List[int]] = []
    current: List[int] = []
    current_key: Optional[Tuple] = None
    for index, job in enumerate(jobs):
        key = _batch_config_key(job)
        if current and (key != current_key or len(current) >= batch_size):
            groups.append(current)
            current = []
        current.append(index)
        current_key = key
    if current:
        groups.append(current)
    return groups


def batch_job_payloads(
    jobs: Sequence[SimulationJob],
    groups: Sequence[Sequence[int]],
    transport: str = "frame",
) -> List[Dict[str, Any]]:
    """One declarative batch payload per group (model blob + seed list).

    The payload is the single-job envelope of :func:`job_payloads` with the
    scalar ``seed`` replaced by the group's ``seeds`` list plus the result
    ``transport`` the backend wants; shared-memory transports pre-assign the
    segment name here, in the parent, so an abandoned or failed batch can be
    swept up by name no matter how far the worker got.
    """
    if transport not in BATCH_TRANSPORTS:
        raise EngineError(f"unknown batch transport {transport!r}")
    for job in jobs:
        if isinstance(job.seed, np.random.Generator):
            raise EngineError(
                "jobs dispatched to worker processes need picklable seeds "
                "(None, int or SeedSequence), not a live Generator; fan the "
                "root seed out with repro.stochastic.fan_out_seeds first",
            )
    payloads = job_payloads([jobs[group[0]] for group in groups])
    for payload, group in zip(payloads, groups):
        del payload["seed"]
        payload["seeds"] = [jobs[index].seed for index in group]
        payload["transport"] = transport
        if transport == "shm":
            payload["shm_name"] = "glt_" + secrets.token_hex(8)
    return payloads


def _untrack_segment(segment) -> None:
    """Forget a segment in this process's resource tracker (3.11 registers on
    both create and attach; whoever is *not* responsible for the unlink must
    unregister, or a clean exit would tear the segment down under the reader)."""
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker already gone at shutdown
        pass


def _unlink_segment(segment) -> None:
    """Close and remove a segment, leaving the resource tracker consistent."""
    segment.close()
    try:
        segment.unlink()  # unregisters on success
    except OSError:  # pragma: no cover - raced with another unlinker
        _untrack_segment(segment)


def _pack_batch_result(trajectories: List[Trajectory], payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker side: wrap a batch's trajectories for the requested transport.

    Shared-memory packing degrades gracefully: if the segment cannot be
    created (exhausted ``/dev/shm``, unsupported platform) the frame rides
    the ordinary result path inline.  After a successful write the worker
    unregisters the segment from *its* resource tracker — the parent owns the
    unlink once it has decoded (or swept) the segment.
    """
    transport = payload.get("transport", "inline")
    if transport == "inline":
        return {"kind": "inline", "trajectories": trajectories}
    frame = encode_trajectories(trajectories)
    if transport == "shm":
        name = payload.get("shm_name")
        try:
            segment = shared_memory.SharedMemory(name=name, create=True, size=len(frame))
        except (OSError, ValueError):
            return {"kind": "frame", "frame": frame}
        try:
            segment.buf[: len(frame)] = frame
        except BaseException:
            _unlink_segment(segment)
            raise
        segment.close()
        _untrack_segment(segment)
        return {"kind": "shm", "shm_name": name, "frame_bytes": len(frame)}
    return {"kind": "frame", "frame": frame}


def simulate_batch_payload(payload: Dict[str, Any]) -> Tuple[Dict[str, Any], bool]:
    """Execute one batch payload (remote-side entry point).

    The SSA runs all replicates through the lockstep stepper
    (:func:`repro.stochastic.batch.simulate_ssa_batch`); other simulators run
    their replicates sequentially inside the one dispatch — the dispatch and
    result-transport amortization still applies, only the stepping is not
    vectorised.  Returns ``(packed_result, cache_hit)``; unpack with
    :func:`decode_batch_result`.
    """
    fingerprint = payload["fingerprint"]
    model = worker_model_from_blob(fingerprint, payload["model_blob"])
    overrides = payload.get("overrides", ())
    register_worker_kernel(fingerprint, overrides, payload.get("kernel"))
    compiled, cache_hit = worker_compiled(model, fingerprint, overrides)
    seeds = payload["seeds"]
    kwargs = payload["kwargs"]
    if payload["simulator"] == "ssa":
        trajectories = simulate_ssa_batch(compiled, payload["t_end"], seeds, **kwargs)
    else:
        simulate = resolve_simulator(payload["simulator"])
        trajectories = [
            simulate(compiled, payload["t_end"], rng=seed, **kwargs) for seed in seeds
        ]
    return _pack_batch_result(trajectories, payload), cache_hit


def decode_batch_result(result: Dict[str, Any]) -> List[Trajectory]:
    """Parent side: unpack a batch result, releasing its transport resources.

    For shared-memory results this attaches, copies the frame out, and
    **unlinks** the segment — decode is the hand-off point of the segment
    lifetime contract (worker creates, parent removes).
    """
    kind = result.get("kind")
    if kind == "inline":
        return result["trajectories"]
    if kind == "frame":
        return decode_trajectories(result["frame"])
    if kind == "shm":
        segment = shared_memory.SharedMemory(name=result["shm_name"])
        try:
            frame = bytes(segment.buf[: result["frame_bytes"]])
        finally:
            _unlink_segment(segment)
        return decode_trajectories(frame)
    raise EngineError(f"unknown batch result kind {kind!r}")


def discard_batch_segment(name: str) -> None:
    """Best-effort sweep of one pre-assigned segment name (idempotent).

    Used for payloads whose results were never decoded — a worker died
    mid-batch, or the consumer abandoned the stream: if the worker got far
    enough to create the segment, remove it; if not, there is nothing to do.
    """
    try:
        segment = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError, ValueError):
        return
    _unlink_segment(segment)


class BaseEnsembleExecutor:
    """Shared orchestration surface of every executor; transport left abstract.

    Subclasses implement the :class:`ExecutorBackend` protocol (``submit`` /
    ``wait_any`` / ``capacity`` / ``open`` / ``close``) plus one hook —
    :meth:`_job_submissions`, choosing between in-process execution and the
    shipped payload envelope — and inherit ``iter_jobs`` / ``run_jobs`` /
    ``map``, the context-manager lifecycle, and the per-batch statistics
    discipline from here.  That inheritance is the refactor's point: the
    windowed loop exists once, in :func:`iter_windowed`, and a new transport
    cannot accidentally fork its semantics.
    """

    name = "backend"
    #: Parallelism reported in :class:`EnsembleStats` (subclasses override).
    workers = 1
    #: This executor's ``iter_jobs`` / ``run_jobs`` accept a per-batch
    #: :class:`BatchCacheStats` sink (see that class for why).
    supports_batch_stats = True
    #: This executor's ``iter_jobs`` / ``run_jobs`` accept ``batch_size``.
    supports_job_batching = True
    #: How batch results travel back (one of :data:`BATCH_TRANSPORTS`).
    #: ``"frame"`` — raw binary frame bytes on the existing result path — is
    #: the safe default for any remote transport; pools override to ``"shm"``
    #: and the in-process serial executor bypasses transport entirely.
    batch_transport = "frame"

    # -- transport protocol (ExecutorBackend) — subclasses implement ---------------
    @property
    def capacity(self) -> int:
        """Parallel slots available now (defaults to the nominal worker count)."""
        return self.workers

    def open(self):
        """Acquire transport resources; returns ``self`` for chaining."""
        return self

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def submit(self, fn, payload) -> "concurrent.futures.Future":
        raise NotImplementedError

    def wait_any(self, pending):
        """Default for transports whose futures complete on their own (a pool
        or an I/O thread resolves them): block on the first completion.  A
        lazy transport, where waiting is what *runs* the work, overrides."""
        done, _ = concurrent.futures.wait(
            pending,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )
        return done

    def __enter__(self):
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared orchestration -------------------------------------------------------
    def _job_submissions(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache],
    ) -> Tuple[Callable[[Any], Tuple[Trajectory, bool]], Sequence[Any]]:
        """``(fn, payloads)`` executing this batch's jobs on this transport.

        Remote transports ship :func:`simulate_payload` over declarative
        :func:`job_payloads` envelopes (the default).  The serial executor
        overrides this to run jobs in-process against the shared
        compiled-model ``cache``.  Either way ``fn(payload)`` returns
        ``(trajectory, cache_hit)``.
        """
        return simulate_payload, job_payloads(jobs)

    def _batch_submissions(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache],
        batch_size: int,
    ) -> Tuple[Callable[[Any], Tuple[Dict[str, Any], bool]], Sequence[Any], List[List[int]]]:
        """``(fn, payloads, groups)`` for a batched submission.

        ``fn(payload)`` returns ``(packed_result, cache_hit)`` where the
        packed result decodes through :func:`decode_batch_result` into one
        trajectory per job index in the matching group.  The default ships
        :func:`simulate_batch_payload` envelopes over this backend's
        ``batch_transport``; the serial executor overrides to run lockstep
        batches in-process against the shared ``cache``.
        """
        groups = batch_job_groups(jobs, batch_size)
        payloads = batch_job_payloads(jobs, groups, transport=self.batch_transport)
        return simulate_batch_payload, payloads, groups

    def _record_last_stats(self, stats: BatchCacheStats) -> None:
        """Snapshot hook for the legacy ``last_cache_hits/misses`` attributes."""

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        progress: Optional[ProgressHook] = None,
    ) -> List[Any]:
        """Apply ``fn`` across the transport, preserving payload order.

        Submission is windowed exactly like :meth:`iter_jobs` — at most
        ``2 * capacity`` payloads pending at any moment — and a raising
        payload cancels the remaining queued payloads before the exception
        propagates: a failed batch does not leave the transport grinding
        through work nobody will collect.
        """
        payloads = list(payloads)
        results: List[Any] = [None] * len(payloads)
        for index, value in iter_windowed(
            self,
            fn,
            payloads,
            ordered=False,
            progress=progress,
        ):
            results[index] = value
        return results

    def iter_jobs(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache] = None,
        progress: Optional[ProgressHook] = None,
        ordered: bool = True,
        batch_stats: Optional[BatchCacheStats] = None,
        batch_size: int = 1,
    ) -> Iterator[Tuple[int, Trajectory]]:
        """Yield ``(index, trajectory)`` pairs as runs complete.

        With ``ordered=True`` (the default) results are delivered in
        submission order; ``ordered=False`` delivers them in completion order
        for minimum latency.  Either way at most ``2 * capacity`` results are
        submitted-but-unconsumed at any moment — later jobs are only
        dispatched as earlier results are yielded, so the parent's peak
        trajectory memory is bounded by the window, not by ``len(jobs)``.

        ``batch_size=B`` packs consecutive same-configuration jobs into
        lockstep batch payloads of up to B replicates (see
        :func:`batch_job_groups`); yielded pairs, delivery order and
        bit-identity are unchanged — batching is purely a dispatch/transport
        amortization, and the window counts replicates, not payloads.

        Cache hits/misses accumulate into ``batch_stats`` (this batch's own
        counter, so concurrent batches on one shared executor never clobber
        each other); when the batch finishes — or is abandoned via generator
        ``close()`` — its totals are snapshotted through
        :meth:`_record_last_stats`.  ``cache`` is used only by in-process
        transports (remote workers keep their own caches).
        """
        jobs = list(jobs)
        stats = batch_stats if batch_stats is not None else BatchCacheStats()
        if not jobs:
            return
        size = 1 if batch_size is None else int(batch_size)
        if size < 1:
            raise EngineError("batch_size must be a positive integer")
        if size > 1:
            inner = self._iter_jobs_batched(jobs, cache, progress, ordered, stats, size)
        else:
            inner = self._iter_jobs_single(jobs, cache, progress, ordered, stats)
        try:
            yield from inner
        finally:
            # Legacy snapshot of the batch that finished (or was abandoned)
            # last; concurrent batches should read their own ``batch_stats``.
            self._record_last_stats(stats)

    def _iter_jobs_single(self, jobs, cache, progress, ordered, stats):
        """The one-payload-per-job path (``batch_size=1``; today's behaviour)."""
        fn, payloads = self._job_submissions(jobs, cache)
        for index, (trajectory, cache_hit) in iter_windowed(
            self,
            fn,
            payloads,
            ordered=ordered,
            progress=progress,
            items=jobs,
        ):
            stats.record(cache_hit)
            yield index, trajectory

    def _iter_jobs_batched(self, jobs, cache, progress, ordered, stats, batch_size):
        """The batched path: one payload per group, decoded back to per-job yields.

        Statistics discipline: the worker reports one compile-cache flag per
        batch (its first replicate); the remaining ``B - 1`` replicates reuse
        that compiled model by construction and are recorded as hits, so
        ``hits + misses == len(jobs)`` holds exactly as at ``batch_size=1``.

        Shared-memory hygiene: segment names are pre-assigned in the parent,
        decode unlinks each segment, and the ``finally`` sweeps every payload
        that was submitted but never decoded (worker death, abandoned
        stream) — combined with ``drain_on_close`` there are no leaked
        ``/dev/shm`` entries on any exit path.
        """
        fn, payloads, groups = self._batch_submissions(jobs, cache, batch_size)
        weights = [len(group) for group in groups]
        shm_names = {
            index: payload["shm_name"]
            for index, payload in enumerate(payloads)
            if isinstance(payload, dict) and payload.get("transport") == "shm"
        }
        decoded = set()
        hook = None
        if progress is not None:
            total_jobs = len(jobs)
            done_jobs = [0]

            def hook(done, total, group):
                done_jobs[0] += len(group)
                progress(done_jobs[0], total_jobs, jobs[group[-1]])

        try:
            for payload_index, (result, cache_hit) in iter_windowed(
                self,
                fn,
                payloads,
                ordered=ordered,
                progress=hook,
                items=groups,
                weights=weights,
                drain_on_close=bool(shm_names),
            ):
                group = groups[payload_index]
                trajectories = decode_batch_result(result)
                decoded.add(payload_index)
                if len(trajectories) != len(group):
                    raise EngineError(
                        f"batch payload returned {len(trajectories)} trajectories "
                        f"for {len(group)} jobs",
                    )
                stats.record(cache_hit)
                for _ in range(len(group) - 1):
                    stats.record(True)
                for job_index, trajectory in zip(group, trajectories):
                    yield job_index, trajectory
        finally:
            for payload_index, name in shm_names.items():
                if payload_index not in decoded:
                    discard_batch_segment(name)

    def run_jobs(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache] = None,
        progress: Optional[ProgressHook] = None,
        batch_stats: Optional[BatchCacheStats] = None,
        batch_size: int = 1,
    ) -> List[Trajectory]:
        """Materialize the whole batch, in submission order."""
        jobs = list(jobs)
        results: List[Optional[Trajectory]] = [None] * len(jobs)
        for index, trajectory in self.iter_jobs(
            jobs,
            cache=cache,
            progress=progress,
            ordered=False,
            batch_stats=batch_stats,
            batch_size=batch_size,
        ):
            results[index] = trajectory
        return results
