"""Transport-agnostic submission core of the ensemble engine.

Every executor in the engine — serial, process pool, socket-distributed, and
the asyncio facade over any of them — used to carry its own copy of the same
orchestration logic: windowed submission (at most ``2 * capacity`` undelivered
results in flight), ordered-vs-completion-order delivery, cancel-on-failure,
per-batch :class:`BatchCacheStats`, and the model-blob + kernel-artifact
payload envelope with its repeat-blob fast path.  This module is where all of
that now lives, exactly once:

* :class:`ExecutorBackend` — the narrow transport protocol a backend has to
  implement: ``submit(fn, payload) -> Future``, ``wait_any``, a ``capacity``,
  and an ``open``/``close`` lifecycle.  Everything else is shared.
* :func:`iter_windowed` — THE windowed submission loop.  Each backend brings
  only its transport; the window accounting, delivery buffering, progress
  hooks and cancel-on-exit semantics are identical for every transport.
* :func:`job_payloads` / :func:`simulate_payload` — the declarative worker
  envelope (pickled model blob keyed on a content fingerprint, plus the
  generated propensity-kernel artifact per ``(model, overrides)`` pair) and
  its remote entry point, shared verbatim by pool workers and socket workers
  so both populate the same worker-side fingerprint seen-set.
* :class:`BaseEnsembleExecutor` — the public executor surface (``iter_jobs``
  / ``run_jobs`` / ``map`` / context-managed lifecycle) expressed once over
  the protocol; concrete executors subclass it and implement transport only.

Determinism contract: the core never *creates* randomness.  Every job arrives
with its seed already fanned out from the root seed, so any two backends —
and the streamed, materialized, sync and async delivery modes — produce
bit-identical trajectories for the same job list.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Collection,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from ..errors import EngineError
from ..stochastic import resolve_simulator
from ..stochastic.codegen import BACKEND_CODEGEN, default_backend
from ..stochastic.trajectory import Trajectory
from .cache import (
    CompiledModelCache,
    kernel_artifact_for_blob,
    model_blob,
    register_worker_kernel,
    worker_compiled,
    worker_model_from_blob,
)
from .jobs import SimulationJob

__all__ = [
    "ProgressHook",
    "BatchCacheStats",
    "ExecutorBackend",
    "BaseEnsembleExecutor",
    "iter_windowed",
    "submission_window",
    "job_payloads",
    "simulate_payload",
]

#: Called after each completed run.  ``executor.map`` hooks receive
#: ``(done_count, total, payload_index)``; ``run_jobs`` / ``iter_jobs`` hooks
#: receive ``(done_count, total, job)``.
ProgressHook = Callable[[int, int, Any], None]


@dataclass
class BatchCacheStats:
    """Compiled-model cache counters of ONE batch iteration.

    Each ``iter_jobs`` / ``run_jobs`` call accumulates into its own instance,
    so concurrent batches on a shared executor (e.g. several studies
    multiplexed over one pool by :func:`repro.engine.gather_studies`) cannot
    clobber each other's statistics.  The executor-global
    ``last_cache_hits`` / ``last_cache_misses`` attributes survive only as a
    snapshot of the most recently *finished* batch.
    """

    hits: int = 0
    misses: int = 0

    def record(self, cache_hit: bool) -> None:
        if cache_hit:
            self.hits += 1
        else:
            self.misses += 1


@runtime_checkable
class ExecutorBackend(Protocol):
    """The transport half of an executor: what :func:`iter_windowed` drives.

    A backend is *only* responsible for moving one callable-plus-payload to
    wherever it executes and exposing the result as a
    :class:`concurrent.futures.Future`.  Windowing, delivery order, progress,
    statistics and cancellation policy belong to the shared core — a new
    transport (a socket fabric, an SSH fan-out, a batch queue) implements
    these four methods plus ``capacity`` and inherits the rest.
    """

    #: Human-readable transport name (lands in :class:`EnsembleStats`).
    name: str

    @property
    def capacity(self) -> int:
        """Parallel slots available now; the in-flight window is twice this.

        May change between waits (a distributed backend grows when workers
        join), so the core re-reads it every scheduling round.
        """
        ...

    def open(self) -> None:
        """Acquire transport resources (idempotent; called before first submit)."""
        ...

    def close(self) -> None:
        """Release transport resources (idempotent)."""
        ...

    def submit(self, fn: Callable[[Any], Any], payload: Any) -> "concurrent.futures.Future":
        """Dispatch one call; the returned future resolves to ``fn(payload)``."""
        ...

    def wait_any(
        self,
        pending: Mapping["concurrent.futures.Future", int],
    ) -> Collection["concurrent.futures.Future"]:
        """Block until at least one of ``pending`` (future -> submission index,
        in submission order) is done, and return the completed futures."""
        ...


def submission_window(capacity: int) -> int:
    """In-flight budget for a backend: ``2 * capacity``, never below one.

    Twice the parallel slots keeps every slot busy while the previous result
    travels back, without letting a long batch pile onto the transport queue
    — the bound that makes streamed parents hold O(capacity) trajectories.
    """
    return max(1, 2 * int(capacity))


def iter_windowed(
    backend: ExecutorBackend,
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    ordered: bool = True,
    progress: Optional[ProgressHook] = None,
    items: Optional[Sequence[Any]] = None,
) -> Iterator[Tuple[int, Any]]:
    """THE windowed submission loop, yielding ``(index, result)`` per payload.

    This is the one implementation behind every executor's ``iter_jobs`` and
    ``map``: at most ``submission_window(backend.capacity)`` submitted-but-
    undelivered results exist at any moment, later payloads are dispatched
    only as earlier results are consumed, and delivery is either submission
    order (``ordered=True``, completed-out-of-order results are buffered and
    count against the window) or completion order.  ``progress`` fires at
    completion time with ``(done, total, items[index])`` — ``items`` defaults
    to the payload index, which is the ``map`` contract.

    Failure and abandonment semantics: a payload whose future raises
    propagates its exception to the consumer, and the ``finally`` below
    cancels every still-pending future — whether the loop ended by
    exhaustion, by a raising payload, or by the consumer closing the
    generator mid-stream, the backend is never left grinding through work
    nobody will collect.
    """
    payloads = list(payloads)
    total = len(payloads)
    if total == 0:
        return
    backend.open()
    pending: Dict[concurrent.futures.Future, int] = {}
    buffered: Dict[int, Any] = {}
    next_submit = 0
    next_yield = 0
    done = 0
    try:
        while next_submit < total or pending or buffered:
            # Capacity is re-read every round: a distributed backend's window
            # widens as workers join and narrows when they are lost.
            window = submission_window(backend.capacity)
            while next_submit < total and len(pending) + len(buffered) < window:
                future = backend.submit(fn, payloads[next_submit])
                pending[future] = next_submit
                next_submit += 1
            if pending:
                completed = backend.wait_any(pending)
                for future in completed:
                    index = pending.pop(future)
                    result = future.result()
                    done += 1
                    if progress is not None:
                        progress(done, total, items[index] if items is not None else index)
                    if ordered:
                        buffered[index] = result
                    else:
                        yield index, result
            if ordered:
                # The smallest unyielded index is always submitted (payloads
                # are dispatched in order), so this drain cannot starve.
                while next_yield in buffered:
                    yield next_yield, buffered.pop(next_yield)
                    next_yield += 1
    finally:
        for future in pending:
            future.cancel()


def job_payloads(jobs: Sequence[SimulationJob]) -> List[Dict[str, Any]]:
    """Declarative worker payloads, with one pickled blob per distinct model.

    The blob is serialized once per distinct model and shared by every
    payload referencing it, so per-job submission pays a bytes copy rather
    than re-pickling the model object graph.  With the codegen backend
    active, each payload also carries the generated propensity-kernel
    artifact for *its own* ``(model, overrides)`` pair (not the whole batch's
    override grid — that would make sweep IPC quadratic): the worker
    ``exec``'s the shipped module instead of re-compiling kinetic-law ASTs on
    its first job.  Pool workers and socket workers receive exactly this
    envelope, so both share the fingerprint seen-set fast path.
    """
    ship_kernels = default_backend() == BACKEND_CODEGEN
    blobs: Dict[int, Tuple[bytes, str]] = {}
    kernels: Dict[Tuple[int, Tuple], Any] = {}
    payloads = []
    for job in jobs:
        if isinstance(job.seed, np.random.Generator):
            raise EngineError(
                "jobs dispatched to worker processes need picklable seeds "
                "(None, int or SeedSequence), not a live Generator; fan the "
                "root seed out with repro.stochastic.fan_out_seeds first",
            )
        key = id(job.model)
        if key not in blobs:
            blobs[key] = model_blob(job.model)
        blob, fingerprint = blobs[key]
        frozen = job.frozen_overrides()
        kernel = None
        if ship_kernels:
            kernel_key = (key, frozen)
            if kernel_key not in kernels:
                try:
                    kernels[kernel_key] = kernel_artifact_for_blob(
                        job.model,
                        fingerprint,
                        frozen,
                    )
                except Exception:
                    # Codegen failures are not fatal at dispatch time: the
                    # worker falls back to an AST compile, which surfaces any
                    # real model error where it always did.
                    kernels[kernel_key] = None
            kernel = kernels[kernel_key]
        payloads.append(
            {
                "fingerprint": fingerprint,
                "model_blob": blob,
                "overrides": frozen,
                "simulator": job.simulator,
                "t_end": job.t_end,
                "seed": job.seed,
                "kwargs": job.simulate_kwargs(),
                "kernel": kernel,
            },
        )
    return payloads


def simulate_payload(payload: Dict[str, Any]) -> Tuple[Trajectory, bool]:
    """Execute one declarative simulation payload (remote-side entry point).

    The payload is a plain dict (not a :class:`SimulationJob`) so the worker
    does not re-validate the job.  It carries the pickled model together with
    a parent-computed content fingerprint; the worker deserializes each
    fingerprint once, so each distinct model unpickles and compiles once per
    worker process regardless of how many jobs or batches reference it.
    Returns ``(trajectory, cache_hit)``; the hit flag lets the parent
    aggregate worker-side cache statistics.  Pool workers call this through
    pickled-by-reference function dispatch and socket workers through the
    wire protocol — one entry point, one seen-set, one cache discipline.
    """
    fingerprint = payload["fingerprint"]
    model = worker_model_from_blob(fingerprint, payload["model_blob"])
    overrides = payload.get("overrides", ())
    register_worker_kernel(fingerprint, overrides, payload.get("kernel"))
    compiled, cache_hit = worker_compiled(model, fingerprint, overrides)
    simulate = resolve_simulator(payload["simulator"])
    trajectory = simulate(
        compiled,
        payload["t_end"],
        rng=payload["seed"],
        **payload["kwargs"],
    )
    return trajectory, cache_hit


class BaseEnsembleExecutor:
    """Shared orchestration surface of every executor; transport left abstract.

    Subclasses implement the :class:`ExecutorBackend` protocol (``submit`` /
    ``wait_any`` / ``capacity`` / ``open`` / ``close``) plus one hook —
    :meth:`_job_submissions`, choosing between in-process execution and the
    shipped payload envelope — and inherit ``iter_jobs`` / ``run_jobs`` /
    ``map``, the context-manager lifecycle, and the per-batch statistics
    discipline from here.  That inheritance is the refactor's point: the
    windowed loop exists once, in :func:`iter_windowed`, and a new transport
    cannot accidentally fork its semantics.
    """

    name = "backend"
    #: Parallelism reported in :class:`EnsembleStats` (subclasses override).
    workers = 1
    #: This executor's ``iter_jobs`` / ``run_jobs`` accept a per-batch
    #: :class:`BatchCacheStats` sink (see that class for why).
    supports_batch_stats = True

    # -- transport protocol (ExecutorBackend) — subclasses implement ---------------
    @property
    def capacity(self) -> int:
        """Parallel slots available now (defaults to the nominal worker count)."""
        return self.workers

    def open(self):
        """Acquire transport resources; returns ``self`` for chaining."""
        return self

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def submit(self, fn, payload) -> "concurrent.futures.Future":
        raise NotImplementedError

    def wait_any(self, pending):
        """Default for transports whose futures complete on their own (a pool
        or an I/O thread resolves them): block on the first completion.  A
        lazy transport, where waiting is what *runs* the work, overrides."""
        done, _ = concurrent.futures.wait(
            pending,
            return_when=concurrent.futures.FIRST_COMPLETED,
        )
        return done

    def __enter__(self):
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared orchestration -------------------------------------------------------
    def _job_submissions(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache],
    ) -> Tuple[Callable[[Any], Tuple[Trajectory, bool]], Sequence[Any]]:
        """``(fn, payloads)`` executing this batch's jobs on this transport.

        Remote transports ship :func:`simulate_payload` over declarative
        :func:`job_payloads` envelopes (the default).  The serial executor
        overrides this to run jobs in-process against the shared
        compiled-model ``cache``.  Either way ``fn(payload)`` returns
        ``(trajectory, cache_hit)``.
        """
        return simulate_payload, job_payloads(jobs)

    def _record_last_stats(self, stats: BatchCacheStats) -> None:
        """Snapshot hook for the legacy ``last_cache_hits/misses`` attributes."""

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        progress: Optional[ProgressHook] = None,
    ) -> List[Any]:
        """Apply ``fn`` across the transport, preserving payload order.

        Submission is windowed exactly like :meth:`iter_jobs` — at most
        ``2 * capacity`` payloads pending at any moment — and a raising
        payload cancels the remaining queued payloads before the exception
        propagates: a failed batch does not leave the transport grinding
        through work nobody will collect.
        """
        payloads = list(payloads)
        results: List[Any] = [None] * len(payloads)
        for index, value in iter_windowed(
            self,
            fn,
            payloads,
            ordered=False,
            progress=progress,
        ):
            results[index] = value
        return results

    def iter_jobs(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache] = None,
        progress: Optional[ProgressHook] = None,
        ordered: bool = True,
        batch_stats: Optional[BatchCacheStats] = None,
    ) -> Iterator[Tuple[int, Trajectory]]:
        """Yield ``(index, trajectory)`` pairs as runs complete.

        With ``ordered=True`` (the default) results are delivered in
        submission order; ``ordered=False`` delivers them in completion order
        for minimum latency.  Either way at most ``2 * capacity`` results are
        submitted-but-unconsumed at any moment — later jobs are only
        dispatched as earlier results are yielded, so the parent's peak
        trajectory memory is bounded by the window, not by ``len(jobs)``.

        Cache hits/misses accumulate into ``batch_stats`` (this batch's own
        counter, so concurrent batches on one shared executor never clobber
        each other); when the batch finishes — or is abandoned via generator
        ``close()`` — its totals are snapshotted through
        :meth:`_record_last_stats`.  ``cache`` is used only by in-process
        transports (remote workers keep their own caches).
        """
        jobs = list(jobs)
        stats = batch_stats if batch_stats is not None else BatchCacheStats()
        if not jobs:
            return
        fn, payloads = self._job_submissions(jobs, cache)
        try:
            for index, (trajectory, cache_hit) in iter_windowed(
                self,
                fn,
                payloads,
                ordered=ordered,
                progress=progress,
                items=jobs,
            ):
                stats.record(cache_hit)
                yield index, trajectory
        finally:
            # Legacy snapshot of the batch that finished (or was abandoned)
            # last; concurrent batches should read their own ``batch_stats``.
            self._record_last_stats(stats)

    def run_jobs(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache] = None,
        progress: Optional[ProgressHook] = None,
        batch_stats: Optional[BatchCacheStats] = None,
    ) -> List[Trajectory]:
        """Materialize the whole batch, in submission order."""
        jobs = list(jobs)
        results: List[Optional[Trajectory]] = [None] * len(jobs)
        for index, trajectory in self.iter_jobs(
            jobs,
            cache=cache,
            progress=progress,
            ordered=False,
            batch_stats=batch_stats,
        ):
            results[index] = trajectory
        return results
