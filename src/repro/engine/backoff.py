"""Capped exponential backoff with jitter — the fabric's one retry policy.

Every place the production fabric waits for something to come back — the
coordinator re-dialing a lost ``--dispatch`` worker, a workerless fabric
polling for a replacement, the supervisor restarting a crashed worker
process — shares this module, so the retry behaviour is tuned (and tested)
exactly once.  The policy is the classic capped exponential:

    ``delay(n) = min(maximum, initial * multiplier ** n)``, jittered.

Jitter matters operationally: a fleet of workers that all died together (a
rebooted coordinator, a network partition healing) must not re-dial in
lockstep, and a supervisor restarting N crashed workers must not hammer a
struggling machine with N simultaneous execs.  ``jitter`` is the fraction of
each delay that is randomized *downward*: the returned delay is uniform in
``[base * (1 - jitter), base]``, so the cap is a hard upper bound and two
peers with the same policy still spread out.

Two surfaces:

* :class:`BackoffPolicy` — the frozen, shareable configuration.  Pure:
  ``delay(attempt, rng=...)`` is deterministic for a seeded
  :class:`random.Random`, which is how the unit tests pin the schedule.
* :class:`Backoff` — one retry *sequence*: a policy plus an attempt counter.
  ``next_delay()`` advances, ``reset()`` rewinds after success (a worker that
  stayed up, a dial that connected), so transient faults pay the small
  initial delay again instead of inheriting an earlier outage's cap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import EngineError

__all__ = ["BackoffPolicy", "Backoff"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff schedule (``initial * multiplier ** n``, jittered).

    ``jitter=0.5`` (the default) means every delay is drawn uniformly from
    the upper half of its nominal value — enough spread to break retry
    lockstep without ever waiting longer than the nominal schedule.
    """

    initial: float = 0.1
    multiplier: float = 2.0
    maximum: float = 5.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.initial <= 0:
            raise EngineError("backoff initial delay must be positive")
        if self.multiplier < 1.0:
            raise EngineError("backoff multiplier must be at least 1")
        if self.maximum < self.initial:
            raise EngineError("backoff maximum must be at least the initial delay")
        if not 0.0 <= self.jitter <= 1.0:
            raise EngineError("backoff jitter must be a fraction in [0, 1]")

    def base_delay(self, attempt: int) -> float:
        """The un-jittered delay of retry ``attempt`` (0-based), capped."""
        if attempt < 0:
            raise EngineError("backoff attempt must be non-negative")
        # Guard the exponentiation: past the cap the exact power is irrelevant
        # and float overflow at huge attempt counts would be a silly way to die.
        exponent = min(attempt, 64)
        return min(self.maximum, self.initial * self.multiplier**exponent)

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The jittered delay of retry ``attempt``: uniform in
        ``[base * (1 - jitter), base]``.  Pass a seeded ``rng`` for a
        deterministic schedule (tests); defaults to the module RNG."""
        base = self.base_delay(attempt)
        if self.jitter == 0.0:
            return base
        draw = (rng or random).random()
        return base * (1.0 - self.jitter * draw)

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """An endless stream of jittered delays (attempt 0, 1, 2, ...)."""
        attempt = 0
        while True:
            yield self.delay(attempt, rng=rng)
            attempt += 1


class Backoff:
    """One retry sequence: a :class:`BackoffPolicy` plus an attempt counter.

    Thread-compatibility note: each retrying site owns its own instance (one
    per supervised worker slot, one per executor re-dial loop); instances are
    not shared across threads.
    """

    def __init__(self, policy: Optional[BackoffPolicy] = None, rng: Optional[random.Random] = None):
        self.policy = policy if policy is not None else BackoffPolicy()
        self._rng = rng
        self._attempt = 0

    @property
    def attempt(self) -> int:
        """Retries taken since the last :meth:`reset`."""
        return self._attempt

    def next_delay(self) -> float:
        """The delay to wait before the next retry; advances the counter."""
        delay = self.policy.delay(self._attempt, rng=self._rng)
        self._attempt += 1
        return delay

    def reset(self) -> None:
        """Rewind to the initial delay (call after the retried thing succeeds)."""
        self._attempt = 0
