"""The ``genlogic worker`` process: one node of a distributed fabric.

A worker is the remote half of
:class:`~repro.engine.distributed.DistributedEnsembleExecutor`: it speaks the
same length-prefixed pickle protocol, executes the same declarative payloads
through the same entry points as a process-pool worker
(:func:`repro.engine.core.simulate_payload` and friends, dispatched by
pickled-by-reference function name), and therefore shares the pool workers'
cache discipline verbatim — the fingerprint-keyed model seen-set, the shipped
propensity-kernel registry and the compiled-model LRU all live in this
process's :mod:`repro.engine.cache` module state and stay warm across batches
and across coordinators.

Two ways to join a fabric:

* ``genlogic worker --connect host:port`` dials a listening coordinator and
  serves it until the coordinator shuts the session down, then exits;
* ``genlogic worker --listen host:port`` binds and serves coordinators one
  after another (each ``--dispatch`` run is one session), which is the shape
  behind the CLI's ``--dispatch host:port,...`` flag.

Protocol (worker side): every connection starts with the mutual handshake of
:mod:`repro.engine.auth` — keyed HMAC challenge–response when a fabric secret
is configured (``GENLOGIC_FABRIC_KEY`` / ``--key-file``), bare preamble
otherwise — so no coordinator frame is unpickled before the peer proved
itself (or the operator explicitly chose trusted-network mode).  The worker
then speaks first with a ``hello`` frame carrying its protocol version and
capacity; afterwards it answers every ``job`` frame with a ``result`` frame
(``ok=True`` plus the return value, or ``ok=False`` plus the pickled
exception and traceback text) and exits the session on a ``shutdown`` frame
or EOF.  A dedicated reader thread answers the coordinator's ``ping`` frames
with ``pong`` *while jobs are computing*, so a busy worker never looks dead
to the heartbeat monitor — only a wedged or unreachable one does.  Batched
payloads (:func:`repro.engine.core.simulate_batch_payload`, dispatched at
``batch_size > 1``) need no protocol change: the worker runs the lockstep
batch and the ``result`` frame's value carries the replicates as one compact
binary trajectory frame (``bytes``) instead of per-replicate pickled
``Trajectory`` objects.  Task failures never kill the worker — only
transport failures (and the operator's Ctrl-C) end a session.

.. warning:: The handshake authenticates the peer; the frames themselves are
   still pickle, so an *authenticated* coordinator fully controls this
   process, and nothing is encrypted in transit.  Unkeyed workers execute
   whatever any connected peer sends — only listen unkeyed on trusted,
   isolated networks.  See the trust-model warning in
   :mod:`repro.engine.distributed`.
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import sys
import threading
import traceback
from typing import Optional

from ..errors import EngineError
from .auth import ROLE_COORDINATOR, ROLE_WORKER, handshake, resolve_key
from .distributed import (
    PROTOCOL_VERSION,
    RemoteWorkerError,
    parse_address,
    recv_message,
    send_message,
)

__all__ = ["serve_connection", "run_worker"]

#: A coordinator that connects but never completes the handshake is cut off
#: after this many seconds, freeing the worker to serve the next session.
HANDSHAKE_TIMEOUT = 30.0


def _result_frame(task_id: int, value) -> dict:
    return {"type": "result", "id": task_id, "ok": True, "value": value}


def _error_frame(task_id: int, error: BaseException) -> dict:
    """A failure frame whose exception survives the trip back if it can.

    The exception travels as a *nested* pickle so the outer frame stays
    decodable even when the exception's class is not importable on the
    coordinator (e.g. a worker-only dependency): the coordinator then falls
    back to a :class:`RemoteWorkerError` carrying the traceback text for
    that one task, instead of treating the whole connection as broken.
    """
    detail = "".join(traceback.format_exception(type(error), error, error.__traceback__))
    try:
        shipped: Optional[bytes] = pickle.dumps(error, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        shipped = None
    return {
        "type": "result",
        "id": task_id,
        "ok": False,
        "error_pickle": shipped,
        "traceback": detail,
    }


def serve_connection(
    sock: socket.socket,
    *,
    capacity: int = 1,
    key: Optional[bytes] = None,
) -> int:
    """Serve one coordinator session on an established socket.

    Runs the authentication handshake, sends the hello frame, then executes
    job frames **sequentially** until a shutdown frame or EOF, while a reader
    thread keeps draining the socket so heartbeat pings are answered even
    mid-computation.  ``capacity`` is the pipelining depth advertised to the
    coordinator — how many jobs it may keep in flight on this socket so the
    next one is already queued when the current one finishes.  It is *not*
    worker-side parallelism: run one worker process per core for that.
    Returns the number of jobs executed.  The caller owns the socket (and
    closes it).
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - transport nicety only
        pass
    sock.settimeout(HANDSHAKE_TIMEOUT)
    handshake(sock, key, role=ROLE_WORKER, peer_role=ROLE_COORDINATOR)
    sock.settimeout(None)
    send_lock = threading.Lock()
    with send_lock:
        send_message(
            sock,
            {
                "type": "hello",
                "version": PROTOCOL_VERSION,
                "capacity": max(1, int(capacity)),
                "pid": os.getpid(),
            },
        )
    # The reader thread owns the receiving half: it answers pings on the spot
    # (the whole point — liveness must not wait for the current job) and
    # feeds jobs to the sequential executor below; ``None`` means "session
    # over" (shutdown frame, EOF, or a transport error).
    jobs: "queue.Queue[Optional[dict]]" = queue.Queue()

    def _reader() -> None:
        while True:
            try:
                message = recv_message(sock)
            except Exception:
                jobs.put(None)
                return
            kind = message.get("type")
            if kind == "ping":
                try:
                    with send_lock:
                        send_message(sock, {"type": "pong", "t": message.get("t")})
                except Exception:
                    jobs.put(None)
                    return
            elif kind == "shutdown":
                jobs.put(None)
                return
            elif kind == "job":
                jobs.put(message)
            # Unknown frame types are ignored for forward compatibility.

    reader = threading.Thread(target=_reader, name="genlogic-worker-read", daemon=True)
    reader.start()
    executed = 0
    while True:
        message = jobs.get()
        if message is None:
            return executed
        task_id = message.get("id")
        try:
            # The nested call pickle may fail to decode here (e.g. the
            # dispatched function is not importable on this machine); that is
            # a per-task failure to report, not a reason to die.  Exceptions
            # only: an operator's Ctrl-C (KeyboardInterrupt) or a SystemExit
            # must stop THIS worker, not travel to the coordinator as a task
            # failure while the worker keeps serving.
            fn, payload = pickle.loads(message["call"])
            result = fn(payload)
            frame = _result_frame(task_id, result)
        except Exception as error:
            frame = _error_frame(task_id, error)
        try:
            with send_lock:
                send_message(sock, frame)
        except (ConnectionError, OSError):
            return executed
        except Exception as error:
            # An unpicklable / oversized *result* must not kill the session:
            # report the shipping failure for this task and keep serving.
            try:
                with send_lock:
                    send_message(
                        sock,
                        _error_frame(
                            task_id,
                            RemoteWorkerError(f"result could not be shipped back: {error!r}"),
                        ),
                    )
            except (ConnectionError, OSError):
                return executed
        executed += 1


def run_worker(
    connect: Optional[str] = None,
    listen: Optional[str] = None,
    *,
    capacity: int = 1,
    max_sessions: Optional[int] = None,
    on_ready=None,
    key: Optional[bytes] = None,
    key_file: Optional[str] = None,
) -> int:
    """Worker main loop (the ``genlogic worker`` subcommand body).

    ``connect`` dials a listening coordinator and serves that one session.
    ``listen`` binds and serves coordinator sessions back to back —
    ``max_sessions`` bounds how many (mostly for tests); ``on_ready`` (if
    given) is called with the bound ``(host, port)`` once accepting, so
    embedding callers can synchronize instead of polling.  The fabric secret
    comes from ``key`` / ``key_file`` or falls back to the
    ``GENLOGIC_FABRIC_KEY`` environment (:func:`repro.engine.auth.resolve_key`).
    In listen mode a peer that fails the handshake is turned away with a
    warning and the worker keeps serving; in connect mode the failure is
    fatal (the one coordinator we were told to trust is not trustworthy).
    Returns the total number of jobs executed.
    """
    if (connect is None) == (listen is None):
        raise EngineError("worker needs exactly one of --connect or --listen")
    secret = resolve_key(key, key_file)
    if connect is not None:
        host, port = parse_address(connect)
        with socket.create_connection((host, port)) as sock:
            return serve_connection(sock, capacity=capacity, key=secret)
    host, port = parse_address(listen)
    executed = 0
    sessions = 0
    with socket.create_server((host, port)) as server:
        if on_ready is not None:
            on_ready(server.getsockname()[:2])
        while max_sessions is None or sessions < max_sessions:
            sock, peer = server.accept()
            try:
                executed += serve_connection(sock, capacity=capacity, key=secret)
            except (EngineError, ConnectionError, OSError) as error:
                # One hostile or broken peer must not take the worker down —
                # nor burn a --max-sessions slot: a peer turned away at the
                # handshake was never a served session.  Note it and go back
                # to accepting the next coordinator.
                print(
                    f"genlogic worker: rejected session from {peer[0]}:{peer[1]}: {error}",
                    file=sys.stderr,
                )
            else:
                sessions += 1
            finally:
                sock.close()
    return executed


def main(argv=None) -> int:  # pragma: no cover - exercised via the CLI tests
    """Standalone entry point (``python -m repro.engine.worker``)."""
    from ..cli import main as cli_main

    return cli_main(["worker", *(argv if argv is not None else sys.argv[1:])])
