"""The ``genlogic worker`` process: one node of a distributed fabric.

A worker is the remote half of
:class:`~repro.engine.distributed.DistributedEnsembleExecutor`: it speaks the
same length-prefixed pickle protocol, executes the same declarative payloads
through the same entry points as a process-pool worker
(:func:`repro.engine.core.simulate_payload` and friends, dispatched by
pickled-by-reference function name), and therefore shares the pool workers'
cache discipline verbatim — the fingerprint-keyed model seen-set, the shipped
propensity-kernel registry and the compiled-model LRU all live in this
process's :mod:`repro.engine.cache` module state and stay warm across batches
and across coordinators.

Two ways to join a fabric:

* ``genlogic worker --connect host:port`` dials a listening coordinator and
  serves it until the coordinator shuts the session down, then exits;
* ``genlogic worker --listen host:port`` binds and serves coordinators one
  after another (each ``--dispatch`` run is one session), which is the shape
  behind the CLI's ``--dispatch host:port,...`` flag.

Protocol (worker side): on connect the worker speaks first with a ``hello``
frame carrying its protocol version and capacity; afterwards it answers every
``job`` frame with a ``result`` frame (``ok=True`` plus the return value, or
``ok=False`` plus the pickled exception and traceback text) and exits the
session on a ``shutdown`` frame or EOF.  Batched payloads
(:func:`repro.engine.core.simulate_batch_payload`, dispatched at
``batch_size > 1``) need no protocol change: the worker runs the lockstep
batch and the ``result`` frame's value carries the replicates as one compact
binary trajectory frame (``bytes``) instead of per-replicate pickled
``Trajectory`` objects.  Task failures never kill the worker
— only transport failures (and the operator's Ctrl-C) end a session.

.. warning:: The wire protocol is unauthenticated pickle: a worker executes
   whatever a connected coordinator sends it.  Only listen on trusted,
   isolated networks — see the trust-model warning in
   :mod:`repro.engine.distributed`.
"""

from __future__ import annotations

import os
import pickle
import socket
import sys
import traceback
from typing import Optional

from ..errors import EngineError
from .distributed import (
    PROTOCOL_VERSION,
    RemoteWorkerError,
    parse_address,
    recv_message,
    send_message,
)

__all__ = ["serve_connection", "run_worker"]


def _result_frame(task_id: int, value) -> dict:
    return {"type": "result", "id": task_id, "ok": True, "value": value}


def _error_frame(task_id: int, error: BaseException) -> dict:
    """A failure frame whose exception survives the trip back if it can.

    The exception travels as a *nested* pickle so the outer frame stays
    decodable even when the exception's class is not importable on the
    coordinator (e.g. a worker-only dependency): the coordinator then falls
    back to a :class:`RemoteWorkerError` carrying the traceback text for
    that one task, instead of treating the whole connection as broken.
    """
    detail = "".join(traceback.format_exception(type(error), error, error.__traceback__))
    try:
        shipped: Optional[bytes] = pickle.dumps(error, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        shipped = None
    return {
        "type": "result",
        "id": task_id,
        "ok": False,
        "error_pickle": shipped,
        "traceback": detail,
    }


def serve_connection(sock: socket.socket, *, capacity: int = 1) -> int:
    """Serve one coordinator session on an established socket.

    Sends the hello frame, then executes job frames **sequentially** until a
    shutdown frame or EOF.  ``capacity`` is the pipelining depth advertised
    to the coordinator — how many jobs it may keep in flight on this socket
    so the next one is already queued when the current one finishes.  It is
    *not* worker-side parallelism: run one worker process per core for that.
    Returns the number of jobs executed.  The caller owns the socket (and
    closes it).
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:  # pragma: no cover - transport nicety only
        pass
    send_message(
        sock,
        {
            "type": "hello",
            "version": PROTOCOL_VERSION,
            "capacity": max(1, int(capacity)),
            "pid": os.getpid(),
        },
    )
    executed = 0
    while True:
        try:
            message = recv_message(sock)
        except (ConnectionError, OSError):
            return executed
        kind = message.get("type")
        if kind == "shutdown":
            return executed
        if kind != "job":
            continue
        task_id = message.get("id")
        try:
            # The nested call pickle may fail to decode here (e.g. the
            # dispatched function is not importable on this machine); that is
            # a per-task failure to report, not a reason to die.  Exceptions
            # only: an operator's Ctrl-C (KeyboardInterrupt) or a SystemExit
            # must stop THIS worker, not travel to the coordinator as a task
            # failure while the worker keeps serving.
            fn, payload = pickle.loads(message["call"])
            result = fn(payload)
            frame = _result_frame(task_id, result)
        except Exception as error:
            frame = _error_frame(task_id, error)
        try:
            send_message(sock, frame)
        except Exception as error:
            # An unpicklable / oversized *result* must not kill the session:
            # report the shipping failure for this task and keep serving.
            try:
                send_message(
                    sock,
                    _error_frame(
                        task_id,
                        RemoteWorkerError(f"result could not be shipped back: {error!r}"),
                    ),
                )
            except (ConnectionError, OSError):
                return executed
        executed += 1


def run_worker(
    connect: Optional[str] = None,
    listen: Optional[str] = None,
    *,
    capacity: int = 1,
    max_sessions: Optional[int] = None,
    on_ready=None,
) -> int:
    """Worker main loop (the ``genlogic worker`` subcommand body).

    ``connect`` dials a listening coordinator and serves that one session.
    ``listen`` binds and serves coordinator sessions back to back —
    ``max_sessions`` bounds how many (mostly for tests); ``on_ready`` (if
    given) is called with the bound ``(host, port)`` once accepting, so
    embedding callers can synchronize instead of polling.  Returns the total
    number of jobs executed.
    """
    if (connect is None) == (listen is None):
        raise EngineError("worker needs exactly one of --connect or --listen")
    if connect is not None:
        host, port = parse_address(connect)
        with socket.create_connection((host, port)) as sock:
            return serve_connection(sock, capacity=capacity)
    host, port = parse_address(listen)
    executed = 0
    sessions = 0
    with socket.create_server((host, port)) as server:
        if on_ready is not None:
            on_ready(server.getsockname()[:2])
        while max_sessions is None or sessions < max_sessions:
            sock, _ = server.accept()
            try:
                executed += serve_connection(sock, capacity=capacity)
            finally:
                sock.close()
            sessions += 1
    return executed


def main(argv=None) -> int:  # pragma: no cover - exercised via the CLI tests
    """Standalone entry point (``python -m repro.engine.worker``)."""
    from ..cli import main as cli_main

    return cli_main(["worker", *(argv if argv is not None else sys.argv[1:])])
