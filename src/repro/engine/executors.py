"""Pluggable executors: where the runs of an ensemble actually execute.

Two executors ship with the engine:

* :class:`SerialExecutor` — runs every job in this process, reusing compiled
  models through the in-process :class:`~repro.engine.cache.CompiledModelCache`;
* :class:`ProcessPoolEnsembleExecutor` — fans jobs out to a
  :class:`concurrent.futures.ProcessPoolExecutor`; each worker keeps its own
  compiled-model cache keyed on a content fingerprint computed in the parent.

Determinism contract: executors never *create* randomness.  Every job arrives
with its seed already fanned out from the root seed, and results are returned
in submission order, so the serial and parallel executors produce
bit-identical ensembles for the same job list.
"""

from __future__ import annotations

import concurrent.futures
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import EngineError
from ..stochastic import resolve_simulator
from ..stochastic.trajectory import Trajectory
from .cache import (
    CompiledModelCache,
    default_cache,
    model_fingerprint,
    seed_worker_models,
    worker_compiled,
    worker_model,
)
from .jobs import SimulationJob

__all__ = [
    "ProgressHook",
    "SerialExecutor",
    "ProcessPoolEnsembleExecutor",
    "get_executor",
]

#: Called after each completed run.  ``executor.map`` hooks receive
#: ``(done_count, total, payload_index)``; ``run_jobs`` hooks receive
#: ``(done_count, total, job)``.
ProgressHook = Callable[[int, int, Any], None]


def _simulate_payload(payload: Dict[str, Any]):
    """Execute one declarative simulation payload (worker-side entry point).

    The payload is a plain dict (not a :class:`SimulationJob`) so the worker
    does not re-validate the job, and so the compiled-model lookup can use the
    parent-computed fingerprint.  The model itself is not in the payload: the
    pool initializer seeded each distinct model into the worker once, and the
    payload references it by fingerprint.  Returns ``(trajectory, cache_hit)``;
    the hit flag lets the parent aggregate worker-side cache statistics.
    """
    fingerprint = payload["fingerprint"]
    compiled, cache_hit = worker_compiled(
        worker_model(fingerprint), fingerprint, payload.get("overrides", ())
    )
    simulate = resolve_simulator(payload["simulator"])
    trajectory = simulate(
        compiled, payload["t_end"], rng=payload["seed"], **payload["kwargs"]
    )
    return trajectory, cache_hit


class SerialExecutor:
    """Run jobs one after another in the calling process."""

    name = "serial"
    workers = 1

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        progress: Optional[ProgressHook] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every payload, in order."""
        results: List[Any] = []
        total = len(payloads)
        for index, payload in enumerate(payloads):
            results.append(fn(payload))
            if progress is not None:
                progress(index + 1, total, index)
        return results

    def run_jobs(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache] = None,
        progress: Optional[ProgressHook] = None,
    ) -> List[Trajectory]:
        cache = cache if cache is not None else default_cache()
        results: List[Trajectory] = []
        total = len(jobs)
        for index, job in enumerate(jobs):
            compiled = cache.get(job.model, job.frozen_overrides())
            simulate = resolve_simulator(job.simulator)
            results.append(
                simulate(compiled, job.t_end, rng=job.seed, **job.simulate_kwargs())
            )
            if progress is not None:
                progress(index + 1, total, job)
        return results


class ProcessPoolEnsembleExecutor:
    """Run jobs on a pool of worker processes.

    Jobs must carry picklable seeds (``None``, ``int`` or ``SeedSequence``);
    a live generator cannot cross the process boundary without breaking the
    bit-identical-results contract, so it is rejected up front.

    After :meth:`run_jobs`, ``last_cache_hits`` / ``last_cache_misses`` hold
    the worker-side compiled-model cache statistics of that batch (the parent
    cache is not involved in pool execution).
    """

    name = "process-pool"

    def __init__(self, workers: int):
        if workers < 1:
            raise EngineError("a process-pool executor needs at least one worker")
        self.workers = int(workers)
        self.last_cache_hits = 0
        self.last_cache_misses = 0

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        progress: Optional[ProgressHook] = None,
        initializer: Optional[Callable[..., None]] = None,
        initargs: tuple = (),
    ) -> List[Any]:
        """Apply ``fn`` (a module-level function) across the pool, preserving order."""
        total = len(payloads)
        if total == 0:
            return []
        results: List[Any] = [None] * total
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers, initializer=initializer, initargs=initargs
        ) as pool:
            futures = {
                pool.submit(fn, payload): index
                for index, payload in enumerate(payloads)
            }
            done = 0
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                results[index] = future.result()
                done += 1
                if progress is not None:
                    progress(done, total, index)
        return results

    def run_jobs(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache] = None,
        progress: Optional[ProgressHook] = None,
    ) -> List[Trajectory]:
        fingerprints: Dict[int, str] = {}
        models: Dict[str, Any] = {}
        payloads = []
        for job in jobs:
            if isinstance(job.seed, np.random.Generator):
                raise EngineError(
                    "jobs dispatched to worker processes need picklable seeds "
                    "(None, int or SeedSequence), not a live Generator; fan the "
                    "root seed out with repro.stochastic.fan_out_seeds first"
                )
            key = id(job.model)
            if key not in fingerprints:
                fingerprints[key] = model_fingerprint(job.model)
                models[fingerprints[key]] = job.model
            payloads.append(
                {
                    "fingerprint": fingerprints[key],
                    "overrides": job.frozen_overrides(),
                    "simulator": job.simulator,
                    "t_end": job.t_end,
                    "seed": job.seed,
                    "kwargs": job.simulate_kwargs(),
                }
            )

        job_progress: Optional[ProgressHook] = None
        if progress is not None:

            def job_progress(done: int, total: int, index: int) -> None:
                progress(done, total, jobs[index])

        # Each distinct model crosses the process boundary once per worker
        # (via the pool initializer); payloads reference it by fingerprint.
        outcomes = self.map(
            _simulate_payload,
            payloads,
            progress=job_progress,
            initializer=seed_worker_models,
            initargs=(models,),
        )
        self.last_cache_hits = sum(1 for _, hit in outcomes if hit)
        self.last_cache_misses = len(outcomes) - self.last_cache_hits
        return [trajectory for trajectory, _ in outcomes]


def get_executor(jobs: int = 1):
    """The executor for a ``jobs=N`` request: serial for 1, process pool for N>1."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessPoolEnsembleExecutor(jobs)
