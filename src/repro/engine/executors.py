"""Pluggable executors: where the runs of an ensemble actually execute.

Two executors ship with the engine:

* :class:`SerialExecutor` — runs every job in this process, reusing compiled
  models through the in-process :class:`~repro.engine.cache.CompiledModelCache`;
* :class:`ProcessPoolEnsembleExecutor` — fans jobs out to a
  :class:`concurrent.futures.ProcessPoolExecutor`; each worker keeps its own
  compiled-model cache keyed on a content fingerprint computed in the parent.

Executors have an explicit lifecycle: they are context managers with
``open()`` / ``close()``.  A process-pool executor keeps **one** live pool per
instance, created lazily on first use and reused across batches until
``close()`` — so a multi-batch study (settle phase, then transitions) hits
warm worker-side compiled-model caches on every batch after the first.
:func:`repro.engine.run_ensemble` closes executors it creates itself; pass
your own executor to keep the pool alive across calls.

Two delivery modes: :meth:`run_jobs` materializes the whole batch in
submission order; :meth:`iter_jobs` *streams* ``(index, trajectory)`` pairs as
runs complete, keeping only a bounded window of results in flight — peak
trajectory memory is O(workers), not O(n_jobs).

Determinism contract: executors never *create* randomness.  Every job arrives
with its seed already fanned out from the root seed, so the serial and
parallel executors — and the streamed and materialized delivery modes —
produce bit-identical trajectories for the same job list.
"""

from __future__ import annotations

import concurrent.futures
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EngineError
from ..stochastic import resolve_simulator
from ..stochastic.codegen import BACKEND_CODEGEN, default_backend
from ..stochastic.trajectory import Trajectory
from .cache import (
    CompiledModelCache,
    default_cache,
    kernel_artifact_for_blob,
    model_blob,
    register_worker_kernel,
    worker_compiled,
    worker_model_from_blob,
)
from .jobs import SimulationJob

__all__ = [
    "ProgressHook",
    "BatchCacheStats",
    "SerialExecutor",
    "ProcessPoolEnsembleExecutor",
    "get_executor",
]

#: Called after each completed run.  ``executor.map`` hooks receive
#: ``(done_count, total, payload_index)``; ``run_jobs`` / ``iter_jobs`` hooks
#: receive ``(done_count, total, job)``.
ProgressHook = Callable[[int, int, Any], None]


@dataclass
class BatchCacheStats:
    """Compiled-model cache counters of ONE batch iteration.

    Each ``iter_jobs`` / ``run_jobs`` call accumulates into its own instance,
    so concurrent batches on a shared executor (e.g. several studies
    multiplexed over one pool by :func:`repro.engine.gather_studies`) cannot
    clobber each other's statistics.  The executor-global
    ``last_cache_hits`` / ``last_cache_misses`` attributes survive only as a
    snapshot of the most recently *finished* batch.
    """

    hits: int = 0
    misses: int = 0

    def record(self, cache_hit: bool) -> None:
        if cache_hit:
            self.hits += 1
        else:
            self.misses += 1


def _simulate_payload(payload: Dict[str, Any]):
    """Execute one declarative simulation payload (worker-side entry point).

    The payload is a plain dict (not a :class:`SimulationJob`) so the worker
    does not re-validate the job.  It carries the pickled model together with
    a parent-computed content fingerprint; the worker deserializes each
    fingerprint once, so each distinct model unpickles and compiles once per
    worker process regardless of how many jobs or batches reference it.
    Returns ``(trajectory, cache_hit)``; the hit flag lets the parent
    aggregate worker-side cache statistics.
    """
    fingerprint = payload["fingerprint"]
    model = worker_model_from_blob(fingerprint, payload["model_blob"])
    overrides = payload.get("overrides", ())
    register_worker_kernel(fingerprint, overrides, payload.get("kernel"))
    compiled, cache_hit = worker_compiled(model, fingerprint, overrides)
    simulate = resolve_simulator(payload["simulator"])
    trajectory = simulate(
        compiled,
        payload["t_end"],
        rng=payload["seed"],
        **payload["kwargs"],
    )
    return trajectory, cache_hit


class SerialExecutor:
    """Run jobs one after another in the calling process.

    Holds no external resources, but implements the same lifecycle protocol as
    the pool executor (``open`` / ``close`` / context manager) so callers can
    treat any executor uniformly.
    """

    name = "serial"
    workers = 1
    #: This executor's ``iter_jobs`` / ``run_jobs`` accept a per-batch
    #: :class:`BatchCacheStats` sink (see that class for why).
    supports_batch_stats = True

    def open(self) -> "SerialExecutor":
        """No-op (the serial executor owns no resources); returns ``self``."""
        return self

    def close(self) -> None:
        """No-op; present for lifecycle symmetry with the pool executor."""

    def __enter__(self) -> "SerialExecutor":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        progress: Optional[ProgressHook] = None,
    ) -> List[Any]:
        """Apply ``fn`` to every payload, in order."""
        results: List[Any] = []
        total = len(payloads)
        for index, payload in enumerate(payloads):
            results.append(fn(payload))
            if progress is not None:
                progress(index + 1, total, index)
        return results

    def iter_jobs(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache] = None,
        progress: Optional[ProgressHook] = None,
        ordered: bool = True,
        batch_stats: Optional[BatchCacheStats] = None,
    ) -> Iterator[Tuple[int, Trajectory]]:
        """Yield ``(index, trajectory)`` per job as each run completes.

        The serial executor completes jobs in submission order, so ``ordered``
        has no effect; it is accepted for interface parity with the pool.
        Only the trajectory currently yielded is alive — callers that analyze
        and discard hold O(1) trajectories regardless of batch size.
        ``batch_stats`` (when given) accumulates this batch's compiled-model
        cache hits/misses, so interleaved batches sharing one cache still see
        their own counts.
        """
        cache = cache if cache is not None else default_cache()
        total = len(jobs)
        for index, job in enumerate(jobs):
            compiled, cache_hit = cache.lookup(job.model, job.frozen_overrides())
            if batch_stats is not None:
                batch_stats.record(cache_hit)
            simulate = resolve_simulator(job.simulator)
            trajectory = simulate(
                compiled,
                job.t_end,
                rng=job.seed,
                **job.simulate_kwargs(),
            )
            if progress is not None:
                progress(index + 1, total, job)
            yield index, trajectory

    def run_jobs(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache] = None,
        progress: Optional[ProgressHook] = None,
        batch_stats: Optional[BatchCacheStats] = None,
    ) -> List[Trajectory]:
        jobs = list(jobs)
        results: List[Optional[Trajectory]] = [None] * len(jobs)
        for index, trajectory in self.iter_jobs(
            jobs,
            cache=cache,
            progress=progress,
            batch_stats=batch_stats,
        ):
            results[index] = trajectory
        return results


class ProcessPoolEnsembleExecutor:
    """Run jobs on a persistent pool of worker processes.

    The underlying :class:`concurrent.futures.ProcessPoolExecutor` is created
    lazily on first use and **kept alive across batches** until :meth:`close`
    (or context-manager exit); a closed executor transparently re-opens a
    fresh pool on its next use.  Reusing one pool is what keeps worker-side
    compiled-model caches warm between the batches of a multi-batch study.

    Jobs must carry picklable seeds (``None``, ``int`` or ``SeedSequence``);
    a live generator cannot cross the process boundary without breaking the
    bit-identical-results contract, so it is rejected up front.

    One executor may serve several concurrent batches (e.g. independent
    studies multiplexed over one pool by :func:`repro.engine.gather_studies`):
    submission is thread-safe and each batch counts its own cache statistics
    into the :class:`BatchCacheStats` it was given.  ``last_cache_hits`` /
    ``last_cache_misses`` are kept as a snapshot of the most recently
    *finished* batch (the parent cache is never involved in pool execution).
    """

    name = "process-pool"
    #: This executor's ``iter_jobs`` / ``run_jobs`` accept a per-batch
    #: :class:`BatchCacheStats` sink (see that class for why).
    supports_batch_stats = True

    def __init__(self, workers: int):
        if workers < 1:
            raise EngineError("a process-pool executor needs at least one worker")
        self.workers = int(workers)
        self.last_cache_hits = 0
        self.last_cache_misses = 0
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._lifecycle_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        """True while a live worker pool is attached to this executor."""
        return self._pool is not None

    def open(self) -> "ProcessPoolEnsembleExecutor":
        """Start the worker pool now (otherwise it starts on first use)."""
        with self._lifecycle_lock:
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers,
                )
        return self

    def close(self) -> None:
        """Shut the worker pool down.  Idempotent; next use re-opens a pool."""
        with self._lifecycle_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ProcessPoolEnsembleExecutor":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)

    # -- execution -----------------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        progress: Optional[ProgressHook] = None,
    ) -> List[Any]:
        """Apply ``fn`` (a module-level function) across the pool, preserving order.

        Submission is windowed exactly like :meth:`iter_jobs`: at most
        ``2 * workers`` payloads are pickled-and-pending at any moment, so a
        long payload list does not land on the pool's call queue all at once.
        If any payload raises, the remaining queued payloads are cancelled
        before the exception propagates — a failed batch does not leave the
        pool grinding through work nobody will collect.
        """
        payloads = list(payloads)
        total = len(payloads)
        if total == 0:
            return []
        pool = self.open()._pool
        results: List[Any] = [None] * total
        window = 2 * self.workers
        pending: Dict[concurrent.futures.Future, int] = {}
        next_submit = 0
        done = 0
        try:
            while next_submit < total or pending:
                while next_submit < total and len(pending) < window:
                    future = pool.submit(fn, payloads[next_submit])
                    pending[future] = next_submit
                    next_submit += 1
                completed, _ = concurrent.futures.wait(
                    pending,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in completed:
                    index = pending.pop(future)
                    results[index] = future.result()
                    done += 1
                    if progress is not None:
                        progress(done, total, index)
        finally:
            for future in pending:
                future.cancel()
        return results

    def _payloads(self, jobs: Sequence[SimulationJob]) -> List[Dict[str, Any]]:
        """Declarative worker payloads, with one pickled blob per distinct model.

        The blob is serialized once per distinct model and shared by every
        payload referencing it, so per-job submission pays a bytes copy
        rather than re-pickling the model object graph.  With the codegen
        backend active, each payload also carries the generated
        propensity-kernel artifact for *its own* ``(model, overrides)`` pair
        (not the whole batch's override grid — that would make sweep IPC
        quadratic): the worker ``exec``'s the shipped module instead of
        re-compiling kinetic-law ASTs on its first job.
        """
        ship_kernels = default_backend() == BACKEND_CODEGEN
        blobs: Dict[int, Tuple[bytes, str]] = {}
        kernels: Dict[Tuple[int, Tuple], Any] = {}
        payloads = []
        for job in jobs:
            if isinstance(job.seed, np.random.Generator):
                raise EngineError(
                    "jobs dispatched to worker processes need picklable seeds "
                    "(None, int or SeedSequence), not a live Generator; fan the "
                    "root seed out with repro.stochastic.fan_out_seeds first",
                )
            key = id(job.model)
            if key not in blobs:
                blobs[key] = model_blob(job.model)
            blob, fingerprint = blobs[key]
            frozen = job.frozen_overrides()
            kernel = None
            if ship_kernels:
                kernel_key = (key, frozen)
                if kernel_key not in kernels:
                    try:
                        kernels[kernel_key] = kernel_artifact_for_blob(
                            job.model,
                            fingerprint,
                            frozen,
                        )
                    except Exception:
                        # Codegen failures are not fatal at dispatch time:
                        # the worker falls back to an AST compile, which
                        # surfaces any real model error where it always did.
                        kernels[kernel_key] = None
                kernel = kernels[kernel_key]
            payloads.append(
                {
                    "fingerprint": fingerprint,
                    "model_blob": blob,
                    "overrides": frozen,
                    "simulator": job.simulator,
                    "t_end": job.t_end,
                    "seed": job.seed,
                    "kwargs": job.simulate_kwargs(),
                    "kernel": kernel,
                },
            )
        return payloads

    def iter_jobs(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache] = None,
        progress: Optional[ProgressHook] = None,
        ordered: bool = True,
        batch_stats: Optional[BatchCacheStats] = None,
    ) -> Iterator[Tuple[int, Trajectory]]:
        """Yield ``(index, trajectory)`` pairs as worker runs complete.

        With ``ordered=True`` (the default) results are delivered in
        submission order; ``ordered=False`` delivers them in completion order
        for minimum latency.  Either way, at most ``2 * workers`` results are
        submitted-but-unconsumed at any moment — later jobs are only
        dispatched as earlier results are yielded, so the parent's peak
        trajectory memory is bounded by the window, not by ``len(jobs)``.

        Worker-side cache hits/misses accumulate into ``batch_stats`` (this
        batch's own counter, so concurrent batches on one shared executor
        never clobber each other); when the batch finishes, its totals are
        also snapshotted onto ``last_cache_hits`` / ``last_cache_misses``.
        ``cache`` is unused (workers keep their own caches); it is accepted so
        both executors share one call signature.
        """
        jobs = list(jobs)
        payloads = self._payloads(jobs)
        total = len(jobs)
        stats = batch_stats if batch_stats is not None else BatchCacheStats()
        if total == 0:
            return
        pool = self.open()._pool
        window = 2 * self.workers
        pending: Dict[concurrent.futures.Future, int] = {}
        buffered: Dict[int, Trajectory] = {}
        next_submit = 0
        next_yield = 0
        done = 0
        try:
            while next_submit < total or pending or buffered:
                while next_submit < total and len(pending) + len(buffered) < window:
                    future = pool.submit(_simulate_payload, payloads[next_submit])
                    pending[future] = next_submit
                    next_submit += 1
                if pending:
                    completed, _ = concurrent.futures.wait(
                        pending,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    for future in completed:
                        index = pending.pop(future)
                        trajectory, cache_hit = future.result()
                        stats.record(cache_hit)
                        done += 1
                        if progress is not None:
                            progress(done, total, jobs[index])
                        if ordered:
                            buffered[index] = trajectory
                        else:
                            yield index, trajectory
                if ordered:
                    # The smallest unyielded index is always submitted (jobs
                    # are dispatched in order), so this drain cannot starve.
                    while next_yield in buffered:
                        yield next_yield, buffered.pop(next_yield)
                        next_yield += 1
        finally:
            for future in pending:
                future.cancel()
            # Legacy snapshot of the batch that finished (or was abandoned)
            # last; concurrent batches should read their own ``batch_stats``.
            self.last_cache_hits = stats.hits
            self.last_cache_misses = stats.misses

    def run_jobs(
        self,
        jobs: Sequence[SimulationJob],
        cache: Optional[CompiledModelCache] = None,
        progress: Optional[ProgressHook] = None,
        batch_stats: Optional[BatchCacheStats] = None,
    ) -> List[Trajectory]:
        jobs = list(jobs)
        results: List[Optional[Trajectory]] = [None] * len(jobs)
        for index, trajectory in self.iter_jobs(
            jobs,
            cache=cache,
            progress=progress,
            ordered=False,
            batch_stats=batch_stats,
        ):
            results[index] = trajectory
        return results


def get_executor(jobs: int = 1):
    """The executor for a ``jobs=N`` request: serial for 1, process pool for N>1."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessPoolEnsembleExecutor(jobs)
