"""In-process executors: the serial and process-pool transports.

Both executors are thin adapters over the engine's shared submission core
(:mod:`repro.engine.core`): they implement only the
:class:`~repro.engine.core.ExecutorBackend` transport protocol — ``submit`` /
``wait_any`` / ``capacity`` / lifecycle — and inherit windowed submission,
ordered-vs-completion delivery, cancel-on-failure and per-batch statistics
from :class:`~repro.engine.core.BaseEnsembleExecutor`.  The socket-based
multi-host transport lives in :mod:`repro.engine.distributed` behind the same
protocol.

* :class:`SerialExecutor` — runs every job in this process, reusing compiled
  models through the in-process :class:`~repro.engine.cache.CompiledModelCache`;
* :class:`ProcessPoolEnsembleExecutor` — fans jobs out to a
  :class:`concurrent.futures.ProcessPoolExecutor`; each worker keeps its own
  compiled-model cache keyed on a content fingerprint computed in the parent.

Executors have an explicit lifecycle: they are context managers with
``open()`` / ``close()``.  A process-pool executor keeps **one** live pool per
instance, created lazily on first use and reused across batches until
``close()`` — so a multi-batch study (settle phase, then transitions) hits
warm worker-side compiled-model caches on every batch after the first.
:func:`repro.engine.run_ensemble` closes executors it creates itself; pass
your own executor to keep the pool alive across calls.

Determinism contract: executors never *create* randomness.  Every job arrives
with its seed already fanned out from the root seed, so all executors — and
the streamed and materialized delivery modes — produce bit-identical
trajectories for the same job list.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Any, Callable, Collection, Mapping, Optional, Tuple

from ..errors import EngineError
from ..stochastic import resolve_simulator
from ..stochastic.batch import simulate_ssa_batch
from .cache import CompiledModelCache, default_cache
from .core import (
    BaseEnsembleExecutor,
    BatchCacheStats,
    ProgressHook,
    batch_job_groups,
    simulate_payload,
)
from .jobs import SimulationJob

__all__ = [
    "ProgressHook",
    "BatchCacheStats",
    "SerialExecutor",
    "ProcessPoolEnsembleExecutor",
    "get_executor",
]

#: Worker-side entry point, re-exported under its historical private name for
#: callers that dispatched it to pools directly.
_simulate_payload = simulate_payload


class _DeferredCall(concurrent.futures.Future):
    """A future whose work runs lazily, when the serial transport waits on it.

    Submission must not execute anything (the core submits a full window
    ahead), so the call is captured here and performed by
    :meth:`SerialExecutor.wait_any` — preserving the serial executor's
    one-job-per-pull laziness and letting ``Future.cancel`` drop abandoned
    work without ever running it.
    """

    def __init__(self, fn: Callable[[Any], Any], payload: Any):
        super().__init__()
        self._call = (fn, payload)

    def run(self) -> None:
        if not self.set_running_or_notify_cancel():
            return
        fn, payload = self._call
        try:
            self.set_result(fn(payload))
        except BaseException as error:  # noqa: B036 - relayed via the future
            self.set_exception(error)


class SerialExecutor(BaseEnsembleExecutor):
    """Run jobs one after another in the calling process.

    Holds no external resources, but implements the same lifecycle protocol as
    the pool executor (``open`` / ``close`` / context manager) so callers can
    treat any executor uniformly.  As a transport it is *lazy*: submitted
    calls execute only when the core waits for them, so pulling one result
    from a stream runs exactly one job.
    """

    name = "serial"
    workers = 1

    def submit(self, fn, payload) -> _DeferredCall:
        return _DeferredCall(fn, payload)

    def wait_any(
        self,
        pending: Mapping[concurrent.futures.Future, int],
    ) -> Collection[concurrent.futures.Future]:
        """Execute the oldest submitted call now (submission order == FIFO)."""
        future = next(iter(pending))
        future.run()
        return (future,)

    def _job_submissions(self, jobs, cache: Optional[CompiledModelCache]):
        """Run jobs in-process against the shared compiled-model cache."""
        chosen = cache if cache is not None else default_cache()

        def run(job: SimulationJob) -> Tuple[Any, bool]:
            compiled, cache_hit = chosen.lookup(job.model, job.frozen_overrides())
            simulate = resolve_simulator(job.simulator)
            trajectory = simulate(
                compiled,
                job.t_end,
                rng=job.seed,
                **job.simulate_kwargs(),
            )
            return trajectory, cache_hit

        return run, jobs

    def _batch_submissions(self, jobs, cache: Optional[CompiledModelCache], batch_size: int):
        """Run lockstep batches in-process: no envelopes, no result encoding.

        The same grouping as the remote path, but each payload is just the
        group's index list and the result stays an in-process object — the
        serial executor gets the lockstep stepping win without paying any
        transport.  Live ``Generator`` seeds are fine here (nothing crosses a
        process boundary), exactly as at ``batch_size=1``.
        """
        chosen = cache if cache is not None else default_cache()
        groups = batch_job_groups(jobs, batch_size)

        def run(group) -> Tuple[Any, bool]:
            first = jobs[group[0]]
            compiled, cache_hit = chosen.lookup(first.model, first.frozen_overrides())
            seeds = [jobs[index].seed for index in group]
            kwargs = first.simulate_kwargs()
            if first.simulator == "ssa":
                trajectories = simulate_ssa_batch(compiled, first.t_end, seeds, **kwargs)
            else:
                simulate = resolve_simulator(first.simulator)
                trajectories = [
                    simulate(compiled, first.t_end, rng=seed, **kwargs) for seed in seeds
                ]
            return {"kind": "inline", "trajectories": trajectories}, cache_hit

        return run, groups, groups


class ProcessPoolEnsembleExecutor(BaseEnsembleExecutor):
    """Run jobs on a persistent pool of worker processes.

    The underlying :class:`concurrent.futures.ProcessPoolExecutor` is created
    lazily on first use and **kept alive across batches** until :meth:`close`
    (or context-manager exit); a closed executor transparently re-opens a
    fresh pool on its next use.  Reusing one pool is what keeps worker-side
    compiled-model caches warm between the batches of a multi-batch study.

    Jobs must carry picklable seeds (``None``, ``int`` or ``SeedSequence``);
    a live generator cannot cross the process boundary without breaking the
    bit-identical-results contract, so it is rejected up front.

    One executor may serve several concurrent batches (e.g. independent
    studies multiplexed over one pool by :func:`repro.engine.gather_studies`):
    submission is thread-safe and each batch counts its own cache statistics
    into the :class:`BatchCacheStats` it was given.  ``last_cache_hits`` /
    ``last_cache_misses`` are kept as a snapshot of the most recently
    *finished* batch (the parent cache is never involved in pool execution).
    """

    name = "process-pool"
    #: Batch results travel as binary frames in ``multiprocessing.shared_memory``
    #: segments (worker creates and writes; parent decodes and unlinks), so a
    #: B-replicate result costs the pool's pickle channel a ~100-byte
    #: descriptor instead of B trajectory pickles.
    batch_transport = "shm"

    def __init__(self, workers: int):
        if workers < 1:
            raise EngineError("a process-pool executor needs at least one worker")
        self.workers = int(workers)
        self.last_cache_hits = 0
        self.last_cache_misses = 0
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._lifecycle_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        """True while a live worker pool is attached to this executor."""
        return self._pool is not None

    def open(self) -> "ProcessPoolEnsembleExecutor":
        """Start the worker pool now (otherwise it starts on first use)."""
        with self._lifecycle_lock:
            if self._pool is None:
                self._pool = concurrent.futures.ProcessPoolExecutor(
                    max_workers=self.workers,
                )
        return self

    def close(self) -> None:
        """Shut the worker pool down.  Idempotent; next use re-opens a pool."""
        with self._lifecycle_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __del__(self):  # pragma: no cover - GC safety net
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)

    # -- transport (wait_any: the base's first-completion wait) ----------------------
    def submit(self, fn, payload) -> concurrent.futures.Future:
        return self.open()._pool.submit(fn, payload)

    def _record_last_stats(self, stats: BatchCacheStats) -> None:
        self.last_cache_hits = stats.hits
        self.last_cache_misses = stats.misses


def get_executor(jobs: int = 1):
    """The executor for a ``jobs=N`` request: serial for 1, process pool for N>1."""
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ProcessPoolEnsembleExecutor(jobs)
