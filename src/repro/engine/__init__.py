"""Unified ensemble execution engine.

One batched, parallel, cache-aware run path for every multi-run study in the
package.  The paper's throughput argument (seconds of analysis instead of
hours of wet-lab work) rests on running *many* independent stochastic
simulations cheaply; this subsystem is where they all execute:

* :class:`SimulationJob` / :class:`EnsembleResult` — declarative job specs
  and ordered result containers;
* :mod:`repro.engine.core` — the transport-agnostic submission core: ONE
  windowed submission loop (:func:`iter_windowed`) with ordered/completion
  delivery, cancel-on-failure and per-batch statistics, driven through the
  narrow :class:`ExecutorBackend` protocol so every transport shares it;
* :class:`SerialExecutor` / :class:`ProcessPoolEnsembleExecutor` /
  :class:`DistributedEnsembleExecutor` — pluggable context-managed executors
  (thin transport adapters over the core) selected by ``jobs=N`` or built
  explicitly, bit-identical by construction because seeds are fanned out from
  one root ``SeedSequence`` before dispatch; pool and distributed executors
  keep one live transport per instance, reused across batches until
  ``close()``; the distributed executor shards batches across
  ``genlogic worker`` processes on any number of machines over TCP;
* :class:`CompiledModelCache` — compile each ``(model, overrides)`` pair
  once per study instead of once per run (worker-side caches stay warm
  across the batches of a persistent pool);
* :func:`run_ensemble` / :func:`iter_ensemble` / :func:`map_over_parameters`
  — batch submission with progress and throughput/cache statistics, either
  materialized or streamed one result at a time (``iter_ensemble`` /
  ``reduce=``) with peak memory bounded by the in-flight window; all accept
  ``batch_size=B`` to pack consecutive same-configuration replicates into
  lockstep batches (one dispatch, one compact binary result frame per B
  replicates — bit-identical to ``batch_size=1``);
* :func:`arun_ensemble` / :func:`aiter_ensemble` / :func:`gather_studies` /
  :class:`AsyncEnsembleExecutor` — the asyncio layer: the same batches (and
  bit-identical trajectories) driven from inside an event loop without
  blocking it, including N independent studies multiplexed concurrently over
  one shared warm pool;
* :class:`StudySpec` — the canonical, frozen, JSON-round-trippable request
  object naming one replicate study, consumed identically by the Python API,
  the CLI (``genlogic verify --spec``) and the HTTP service
  (:mod:`repro.service`); its content-addressed :meth:`StudySpec.cache_key`
  is the identity under which the service caches results.

See ``analysis/replicates.py``, ``analysis/sweep.py``,
``analysis/robustness.py`` and ``vlab/propagation.py`` for the studies built
on top, and the CLI's ``--workers`` / ``--replicates`` flags for the
user-facing entry points.
"""

from .aio import (
    AsyncEnsembleExecutor,
    aiter_ensemble,
    arun_ensemble,
    gather_studies,
)
from .api import (
    EnsembleStream,
    iter_ensemble,
    map_over_parameters,
    replicate_jobs,
    run_ensemble,
    run_job,
)
from .spec import STUDY_SPEC_SCHEMA, StudySpec, canonical_workers
from .auth import AuthenticationError, ProtocolError, resolve_key
from .backoff import Backoff, BackoffPolicy
from .cache import CompiledModelCache, default_cache, model_fingerprint
from .core import (
    BATCH_TRANSPORTS,
    BaseEnsembleExecutor,
    BatchCacheStats,
    ExecutorBackend,
    batch_job_groups,
)
from .distributed import (
    DistributedEnsembleExecutor,
    RemoteWorkerError,
    WorkerConnectionError,
)
from .executors import (
    ProcessPoolEnsembleExecutor,
    SerialExecutor,
    get_executor,
)
from .jobs import EnsembleResult, EnsembleStats, SimulationJob
from .supervisor import WorkerSupervisor

__all__ = [
    "STUDY_SPEC_SCHEMA",
    "StudySpec",
    "canonical_workers",
    "SimulationJob",
    "EnsembleResult",
    "EnsembleStats",
    "BatchCacheStats",
    "ExecutorBackend",
    "BaseEnsembleExecutor",
    "SerialExecutor",
    "ProcessPoolEnsembleExecutor",
    "DistributedEnsembleExecutor",
    "RemoteWorkerError",
    "WorkerConnectionError",
    "AuthenticationError",
    "ProtocolError",
    "resolve_key",
    "Backoff",
    "BackoffPolicy",
    "WorkerSupervisor",
    "AsyncEnsembleExecutor",
    "get_executor",
    "CompiledModelCache",
    "default_cache",
    "model_fingerprint",
    "run_job",
    "run_ensemble",
    "iter_ensemble",
    "aiter_ensemble",
    "arun_ensemble",
    "gather_studies",
    "EnsembleStream",
    "replicate_jobs",
    "map_over_parameters",
    "BATCH_TRANSPORTS",
    "batch_job_groups",
]
