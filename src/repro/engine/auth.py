"""HMAC-SHA256 challenge–response handshake for the distributed fabric.

The fabric's wire protocol is pickle over TCP, which means *connecting* is
*code execution*: whoever completes the connection gets its frames unpickled
on the peer.  This module is the gate in front of that — a mutual
challenge–response (à la :mod:`multiprocessing.connection`, but symmetric)
that runs **before any pickled frame is read on either side**:

1. Both endpoints immediately send a fixed-size raw preamble — protocol
   magic ``GLF2``, a flags byte (bit 0: "I hold a key"), and a 32-byte
   random challenge — and read the peer's.  The preamble is plain
   ``struct``-style bytes, never pickle, so rejecting a peer allocates and
   interprets nothing attacker-controlled.
2. If exactly one side holds a key, the handshake fails closed
   (:class:`AuthenticationError`): a keyed fabric never falls back to
   plaintext, and an unkeyed endpoint never talks to a keyed one.
3. If both hold a key, each side answers the *peer's* challenge with
   ``HMAC-SHA256(key, own_role || 0x00 || peer_challenge)`` and verifies the
   peer's answer with :func:`hmac.compare_digest` (constant-time).  The role
   tag (``coordinator`` vs ``worker``) is part of the MAC input, so an
   attacker echoing our own challenge back cannot replay our own answer at
   us (the classic reflection attack).
4. Each side then sends a 1-byte verdict so a rejected peer learns it was
   the key (operator-debuggable) rather than seeing a bare EOF.

If neither side holds a key the handshake degrades to the preamble exchange
alone — the documented trusted-network mode, identical in trust to protocol
version 1 but still version-checked by the magic.

Compatibility story: the preamble *is* the protocol-2 version gate.  A v1
peer speaks pickle first, so its opening bytes fail the magic check and the
connection is rejected with a loud :class:`ProtocolError` before anything is
unpickled; a v2 endpoint never silently interoperates with v1.  Upgrade
coordinators and workers together.

Key distribution is deliberately boring: a shared secret read from the
``GENLOGIC_FABRIC_KEY`` environment variable or a ``--key-file`` (first
line / raw bytes), resolved by :func:`resolve_key`.  The handshake
authenticates; it does **not** encrypt — frames still cross the wire in the
clear, so confidential deployments tunnel (SSH/WireGuard) as before.
"""

from __future__ import annotations

import hmac
import os
import socket
from typing import Optional, Union

from ..errors import EngineError

__all__ = [
    "AuthenticationError",
    "ProtocolError",
    "KEY_ENV",
    "ROLE_COORDINATOR",
    "ROLE_WORKER",
    "resolve_key",
    "handshake",
]

#: Environment variable holding the fabric's shared secret.
KEY_ENV = "GENLOGIC_FABRIC_KEY"

#: Handshake role tags (MAC domain separation — see the module docstring).
ROLE_COORDINATOR = b"genlogic-coordinator"
ROLE_WORKER = b"genlogic-worker"

_MAGIC = b"GLF2"
_FLAG_KEYED = 0x01
_CHALLENGE_BYTES = 32
_DIGEST_BYTES = 32  # SHA-256
_PREAMBLE_BYTES = len(_MAGIC) + 1 + _CHALLENGE_BYTES
_VERDICT_OK = b"\x01"
_VERDICT_REJECT = b"\x00"


class ProtocolError(EngineError):
    """The peer does not speak this fabric protocol (bad magic, junk frame,
    oversized length prefix) — rejected cleanly, nothing unpickled."""


class AuthenticationError(ProtocolError):
    """The handshake failed: missing, unexpected, or wrong fabric key."""


def resolve_key(
    key: Union[str, bytes, None] = None,
    key_file: Optional[str] = None,
    *,
    use_env: bool = True,
) -> Optional[bytes]:
    """The shared secret to authenticate with, or ``None`` for unkeyed mode.

    Precedence: an explicit ``key`` (str or bytes), then ``key_file`` (raw
    contents, one trailing newline stripped — the shape ``openssl rand -hex
    32 > fabric.key`` produces), then the ``GENLOGIC_FABRIC_KEY``
    environment variable.  An empty key is rejected rather than silently
    meaning "unkeyed".
    """
    if key is not None and key_file is not None:
        raise EngineError("pass either a fabric key or a key file, not both")
    if key is not None:
        material = key.encode("utf-8") if isinstance(key, str) else bytes(key)
        if not material:
            raise EngineError("the fabric key must not be empty")
        return material
    if key_file is not None:
        try:
            with open(key_file, "rb") as handle:
                material = handle.read()
        except OSError as error:
            raise EngineError(f"cannot read fabric key file {key_file!r}: {error}") from None
        material = material[:-1] if material.endswith(b"\n") else material
        material = material[:-1] if material.endswith(b"\r") else material
        if not material:
            raise EngineError(f"fabric key file {key_file!r} is empty")
        return material
    if use_env:
        env_value = os.environ.get(KEY_ENV)
        if env_value:
            return env_value.encode("utf-8")
    return None


def _recv_exact_raw(sock: socket.socket, n_bytes: int, what: str) -> bytes:
    """Read exactly ``n_bytes`` of raw handshake material (never unpickled)."""
    chunks = []
    remaining = n_bytes
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            raise ProtocolError(f"peer went silent mid-handshake (waiting for {what})") from None
        except OSError as error:
            # A reset travels as an error, a close as EOF; mid-handshake they
            # mean the same thing and get the same clean rejection.
            raise ProtocolError(
                f"peer dropped the connection mid-handshake (during {what}: {error})",
            ) from None
        if not chunk:
            raise ProtocolError(f"peer closed the connection mid-handshake (during {what})")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _send_raw(sock: socket.socket, payload: bytes, what: str) -> None:
    try:
        sock.sendall(payload)
    except socket.timeout:
        raise ProtocolError(f"peer went silent mid-handshake (sending {what})") from None
    except OSError:
        raise ProtocolError(f"peer closed the connection mid-handshake (sending {what})") from None


def _answer(key: bytes, role: bytes, challenge: bytes) -> bytes:
    return hmac.new(key, role + b"\x00" + challenge, "sha256").digest()


def handshake(
    sock: socket.socket,
    key: Optional[bytes],
    *,
    role: bytes,
    peer_role: bytes,
) -> None:
    """Run the symmetric preamble + challenge–response on a fresh connection.

    Both endpoints call this with their own ``role`` and the expected
    ``peer_role`` immediately after ``connect``/``accept`` and before any
    pickled frame crosses the socket.  Raises :class:`ProtocolError` for a
    non-fabric peer and :class:`AuthenticationError` for a key mismatch;
    either way **nothing received from the peer has been unpickled**.  The
    caller owns the socket (including any timeout set for the handshake) and
    closes it on failure.
    """
    if role == peer_role:
        raise EngineError("handshake roles must differ (reflection protection)")
    challenge = os.urandom(_CHALLENGE_BYTES)
    flags = _FLAG_KEYED if key is not None else 0
    _send_raw(sock, _MAGIC + bytes([flags]) + challenge, "the protocol preamble")

    preamble = _recv_exact_raw(sock, _PREAMBLE_BYTES, "the protocol preamble")
    if preamble[: len(_MAGIC)] != _MAGIC:
        raise ProtocolError(
            "peer is not a genlogic protocol-2 fabric endpoint (bad preamble "
            "magic; a protocol-1 peer, or not a genlogic fabric at all)",
        )
    peer_keyed = bool(preamble[len(_MAGIC)] & _FLAG_KEYED)
    peer_challenge = preamble[len(_MAGIC) + 1:]

    if key is None and not peer_keyed:
        return  # trusted-network mode on both sides; nothing to prove
    if key is None:
        raise AuthenticationError(
            "peer requires an authenticated handshake but this endpoint has no "
            f"fabric key (set {KEY_ENV} or pass a key file)",
        )
    if not peer_keyed:
        raise AuthenticationError(
            "this endpoint requires an authenticated handshake but the peer "
            "sent no key proof; refusing the plaintext fallback",
        )

    _send_raw(sock, _answer(key, role, peer_challenge), "the challenge answer")
    peer_answer = _recv_exact_raw(sock, _DIGEST_BYTES, "the challenge answer")
    expected = _answer(key, peer_role, challenge)
    if not hmac.compare_digest(peer_answer, expected):
        try:
            sock.sendall(_VERDICT_REJECT)
        except OSError:
            pass
        raise AuthenticationError("peer answered the challenge with a wrong fabric key")
    _send_raw(sock, _VERDICT_OK, "the handshake verdict")
    verdict = _recv_exact_raw(sock, 1, "the handshake verdict")
    if verdict != _VERDICT_OK:
        raise AuthenticationError("peer rejected this endpoint's fabric key")
