"""Job and result containers of the ensemble execution engine.

A :class:`SimulationJob` is a *declarative*, picklable description of one
stochastic (or ODE) run: which model, which simulator, which input schedule,
which parameter overrides and which seed.  Because a job carries no compiled
state and no live generator, the same job list can be executed by the serial
executor in this process or shipped to a pool of worker processes — and, with
seeds fanned out from one root :class:`numpy.random.SeedSequence` *before*
dispatch, both paths produce bit-identical trajectories.

An :class:`EnsembleResult` pairs the submitted jobs with their trajectories
(in submission order) and the execution statistics of the batch.

Jobs are also the unit of *lockstep batching* (``batch_size=B`` on the run
APIs): consecutive jobs describing the same configuration — same model
object, frozen overrides, simulator, schedule object, horizon, sampling and
recording choices — pack into one dispatch that steps all their replicates
together and ships one compact binary result frame back.  Replicate fan-outs
built by :func:`repro.engine.replicate_jobs` satisfy that by construction;
jobs that differ in any configuration field simply fall back to one dispatch
each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import EngineError
from ..stochastic import canonical_simulator_name
from ..stochastic.events import InputSchedule
from ..stochastic.trajectory import Trajectory

__all__ = ["SimulationJob", "EnsembleStats", "EnsembleResult", "JobSeed"]

#: Seed accepted by a job: ``None`` / ``int`` / ``SeedSequence`` work with any
#: executor; a live ``Generator`` is accepted by the serial executor only
#: (generators cannot cross a process boundary).
JobSeed = Union[None, int, np.random.SeedSequence, np.random.Generator]


@dataclass
class SimulationJob:
    """One simulation run, described declaratively.

    Parameters
    ----------
    model:
        The :class:`repro.sbml.Model` to simulate (compiled lazily, through
        the engine's compiled-model cache).
    t_end:
        Final simulation time.
    simulator:
        Canonical simulator name or documented alias (``"ssa"``, ``"direct"``,
        ``"next-reaction"``, ``"tau-leap"``, ``"ode"``).
    schedule:
        Input clamping events applied during the run.
    parameter_overrides:
        ``{parameter_id: value}`` applied at compile time; part of the
        compiled-model cache key.
    seed:
        Seed of the run's random stream (see :data:`JobSeed`).
    tag:
        Free-form caller metadata (e.g. replicate index, threshold value);
        carried through to the result untouched.
    meta:
        Metadata attached by the layer that *built* the job (e.g. the
        experiment driver's ``hold_time``).  Unlike ``tag`` it is always
        preserved by :func:`repro.engine.replicate_jobs` and
        :func:`repro.engine.map_over_parameters`, so downstream helpers such
        as :meth:`LogicExperiment.datalog_from` can rely on it.
    """

    model: Any
    t_end: float
    simulator: str = "ssa"
    schedule: Optional[InputSchedule] = None
    sample_interval: float = 1.0
    parameter_overrides: Optional[Dict[str, float]] = None
    initial_state: Optional[Dict[str, float]] = None
    record_species: Optional[Sequence[str]] = None
    seed: JobSeed = None
    tag: Any = None
    meta: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        self.simulator = canonical_simulator_name(self.simulator)
        if self.t_end <= 0:
            raise EngineError("a simulation job needs a positive t_end")
        if self.sample_interval <= 0:
            raise EngineError("sample_interval must be positive")
        if self.parameter_overrides is not None:
            self.parameter_overrides = dict(self.parameter_overrides)

    def frozen_overrides(self) -> Tuple[Tuple[str, float], ...]:
        """The overrides as a hashable, order-independent cache-key component."""
        if not self.parameter_overrides:
            return ()
        return tuple(sorted(self.parameter_overrides.items()))

    def simulate_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments (minus model/seed) for the one-shot simulator."""
        return {
            "sample_interval": self.sample_interval,
            "schedule": self.schedule,
            "initial_state": self.initial_state,
            "record_species": list(self.record_species)
            if self.record_species is not None
            else None,
        }


@dataclass
class EnsembleStats:
    """Execution statistics of one ensemble batch."""

    n_jobs: int
    executor: str
    workers: int
    wall_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def runs_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_jobs / self.wall_seconds

    def summary(self) -> str:
        return (
            f"{self.n_jobs} runs via {self.executor} (workers={self.workers}) in "
            f"{self.wall_seconds:.2f} s ({self.runs_per_second:.2f} runs/s; "
            f"model cache {self.cache_hits} hits / {self.cache_misses} misses)"
        )


@dataclass
class EnsembleResult:
    """Jobs and results of one executed ensemble, in submission order.

    Two forms exist.  A *materialized* result (the default) holds every
    trajectory.  A *reduced* result — produced by ``run_ensemble(...,
    reduce=fn)`` — holds only the per-run summaries returned by the reducer
    (``reduced[i]`` for job ``i``) and no trajectories at all: each trajectory
    was handed to the reducer as it completed and discarded immediately, so
    peak memory stays bounded by the executor's in-flight window instead of
    growing with the number of runs.
    """

    jobs: List[SimulationJob]
    trajectories: Optional[List[Trajectory]]
    stats: EnsembleStats
    reduced: Optional[List[Any]] = None

    def __post_init__(self) -> None:
        if self.trajectories is None and self.reduced is None:
            raise EngineError(
                "an ensemble result needs trajectories or reduced summaries",
            )
        if self.trajectories is not None and len(self.jobs) != len(self.trajectories):
            raise EngineError(
                f"ensemble result holds {len(self.jobs)} jobs but "
                f"{len(self.trajectories)} trajectories",
            )
        if self.reduced is not None and len(self.jobs) != len(self.reduced):
            raise EngineError(
                f"ensemble result holds {len(self.jobs)} jobs but "
                f"{len(self.reduced)} reduced summaries",
            )

    @property
    def is_reduced(self) -> bool:
        """True when the trajectories were reduced away during execution."""
        return self.trajectories is None

    def _require_trajectories(self) -> List[Trajectory]:
        if self.trajectories is None:
            raise EngineError(
                "this ensemble was executed with a reducer and holds no "
                "trajectories; read .reduced instead",
            )
        return self.trajectories

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[Tuple[SimulationJob, Trajectory]]:
        return iter(zip(self.jobs, self._require_trajectories()))

    def __getitem__(self, index: int) -> Tuple[SimulationJob, Trajectory]:
        return self.jobs[index], self._require_trajectories()[index]

    def trajectory(self, index: int) -> Trajectory:
        return self._require_trajectories()[index]

    def tags(self) -> List[Any]:
        return [job.tag for job in self.jobs]

    def summary(self) -> str:
        return self.stats.summary()
