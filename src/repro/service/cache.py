"""Content-addressed result cache for the analysis service.

Results are keyed on :meth:`repro.engine.StudySpec.cache_key` — a digest of
the resolved model's *content* fingerprint, the stimulus schedule, sampling,
simulator, seed, replicate count, overrides and analyzer configuration — so
the cache recognises a repeated study even when the request was built by a
different process (or machine) than the one that first ran it.  Execution
knobs never enter the key: the engine's bit-identical contract means
``workers=8`` and ``workers=1`` produce the same result, so they share an
entry.

Entries are JSON-ready payload dicts (see
:meth:`repro.analysis.ReplicateStudy.to_payload`).  Eviction is LRU under a
byte budget measured on the encoded JSON size of each payload — the service
caches *bytes served*, so the budget maps directly to memory spent holding
hot responses.  All operations are lock-protected: the HTTP layer runs on an
event loop but studies complete on worker threads, so gets and puts race
without it.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..errors import EngineError

__all__ = ["ResultCache"]


class ResultCache:
    """LRU map from cache key (hex digest) to a JSON-ready result payload.

    ``max_bytes`` bounds the total encoded size of the stored payloads; a
    payload larger than the whole budget is simply not stored (the study
    still ran — the service returns it, it just will not be a future hit).
    ``max_bytes=0`` disables caching while keeping the counters, so ``/v1/stats``
    stays meaningful on a cache-less deployment.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024):
        if max_bytes < 0:
            raise EngineError("ResultCache max_bytes must be non-negative")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, Tuple[Dict[str, Any], int]]" = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- core ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``key``, or None (counts a hit or a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key``, evicting LRU entries over budget."""
        size = len(json.dumps(payload, sort_keys=True).encode("utf-8"))
        with self._lock:
            if size > self.max_bytes:
                return
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (payload, size)
            self._bytes += size
            while self._bytes > self.max_bytes and self._entries:
                _, (_, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self._evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # -- statistics ------------------------------------------------------------
    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> Dict[str, Any]:
        """Counters for ``/v1/stats`` (hit rate is None before any lookup)."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "bytes_used": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / lookups) if lookups else None,
            }
