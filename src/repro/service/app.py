"""Transport-free core of the analysis service.

:class:`AnalysisService` is everything the HTTP layer is not: it owns ONE
warm executor (a local process pool, or the distributed fabric behind
``--dispatch``), a registry of submitted studies, the content-addressed
:class:`~repro.service.cache.ResultCache`, and the admission policy — per
-request replicate budgets and an in-flight bound that turns overload into an
explicit backpressure signal instead of an unbounded queue.  Keeping it
transport-free means the whole service contract is testable without sockets,
and an alternative frontend (a job queue, a gRPC layer) would reuse it
unchanged.

Life of a request: the decoded JSON body becomes a
:class:`~repro.engine.StudySpec` (malformed bodies raise
:class:`~repro.errors.EngineError` → 400); a seeded spec is looked up in the
cache (hit → answered instantly, no dispatch); a spec identical to one
already *running* coalesces onto that study instead of dispatching twice;
otherwise — if admission passes — the study is dispatched to the warm
executor on a worker thread via :func:`asyncio.to_thread`, exactly the
pattern :func:`repro.engine.gather_studies` uses, so many studies multiplex
over the one pool without blocking the event loop.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from ..engine.distributed import WorkerConnectionError
from ..engine.executors import get_executor
from ..engine.spec import StudySpec
from ..errors import EngineError, ReproError
from ..search.spec import SearchSpec
from .cache import ResultCache

__all__ = ["AnalysisService", "BackpressureError", "BudgetError", "StudyRecord"]


class BackpressureError(EngineError):
    """The in-flight bound is saturated; the client should retry later (429)."""


class BudgetError(EngineError):
    """The spec exceeds the per-request replicate budget (413)."""


@dataclass
class StudyRecord:
    """One submitted study or search and its lifecycle.

    ``status`` walks ``running`` → ``done`` | ``error`` (records answered
    straight from the cache are born ``done`` with ``cached=True``).
    ``done_event`` is set on completion, which is what ``?wait=1`` long-polls
    and the tests await.  ``kind`` is ``"study"`` (a
    :class:`~repro.engine.StudySpec` replicate study) or ``"search"`` (a
    :class:`~repro.search.SearchSpec` design-space search) — both kinds share
    one registry, one in-flight bound and one result cache.
    """

    study_id: str
    spec: Union[StudySpec, SearchSpec]
    cache_key: Optional[str]
    kind: str = "study"
    status: str = "running"
    cached: bool = False
    coalesced: bool = False
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: ``"fabric"`` when the failure was losing the worker fabric mid-study
    #: (:class:`~repro.engine.WorkerConnectionError`) — the HTTP layer maps
    #: those to 503 + Retry-After instead of a generic 500, because they are
    #: the server's transient problem, not the request's.
    error_kind: Optional[str] = None
    submitted_at: float = field(default_factory=time.monotonic)
    wall_seconds: Optional[float] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    def to_response(self) -> Dict[str, Any]:
        """The ``GET /v1/studies/{id}`` JSON body."""
        body: Dict[str, Any] = {
            "id": self.study_id,
            "kind": self.kind,
            "status": self.status,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "cache_key": self.cache_key,
            "spec": self.spec.to_dict(),
        }
        if self.wall_seconds is not None:
            body["wall_seconds"] = self.wall_seconds
        if self.status == "done":
            body["result"] = self.result
        elif self.status == "error":
            body["error"] = self.error
        return body


class AnalysisService:
    """The service core: one warm executor, a study registry, the cache.

    Parameters
    ----------
    workers:
        Size of the local worker pool (ignored when ``executor`` is given).
    executor:
        An opened engine executor to run studies on — e.g. a
        :class:`~repro.engine.DistributedEnsembleExecutor` over the fabric.
        Its lifecycle stays with the caller.
    max_inflight:
        Bound on concurrently executing studies; submissions beyond it raise
        :class:`BackpressureError` (HTTP 429) instead of queuing unboundedly.
        Cache hits and coalesced submissions never count against it.
    max_replicates:
        Per-request budget: specs asking for more replicates raise
        :class:`BudgetError` (HTTP 413).
    max_search_replicates:
        Per-request budget for design-space searches: specs whose total
        replicate budget (``SearchSpec.total_budget()``) exceeds it raise
        :class:`BudgetError` (HTTP 413).  Searches cost candidate-space ×
        replicates, hence the separate, larger knob.
    cache_bytes:
        Byte budget of the content-addressed result cache (0 disables it).
    runner:
        Test seam: ``runner(spec, executor) -> payload dict`` replaces the
        default ``run_replicate_study(spec, executor=...).to_payload()``.
    search_runner:
        Test seam for searches; replaces the default
        ``run_design_search(spec, executor=...).to_payload()``.
    """

    def __init__(
        self,
        workers: int = 1,
        executor=None,
        supervisor=None,
        max_inflight: int = 4,
        max_replicates: int = 64,
        max_search_replicates: int = 5000,
        cache_bytes: int = 64 * 1024 * 1024,
        runner=None,
        search_runner=None,
    ):
        if max_inflight < 1:
            raise EngineError("max_inflight must be at least 1")
        if max_replicates < 1:
            raise EngineError("max_replicates must be at least 1")
        if max_search_replicates < 1:
            raise EngineError("max_search_replicates must be at least 1")
        self.max_inflight = int(max_inflight)
        self.max_replicates = int(max_replicates)
        self.max_search_replicates = int(max_search_replicates)
        self.cache = ResultCache(max_bytes=cache_bytes)
        self._owns_executor = executor is None
        self._workers = int(workers)
        self._executor = executor
        #: A :class:`~repro.engine.WorkerSupervisor` (or anything with a
        #: ``status()`` dict) whose health rides along in :meth:`stats`.
        #: Lifecycle stays with the caller, like ``executor``.
        self._supervisor = supervisor
        self._runner = runner if runner is not None else _default_runner
        self._search_runner = (
            search_runner if search_runner is not None else _default_search_runner
        )
        self._records: Dict[str, StudyRecord] = {}
        self._inflight_by_key: Dict[str, StudyRecord] = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._started_at = time.monotonic()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._coalesced = 0

    # -- lifecycle -------------------------------------------------------------
    @property
    def executor(self):
        if self._executor is None:
            self._executor = get_executor(self._workers)
        return self._executor

    @property
    def workers(self) -> int:
        return getattr(self.executor, "workers", self._workers)

    def open(self) -> "AnalysisService":
        """Start the worker pool now (otherwise it starts on first use)."""
        self.executor.open()
        return self

    def close(self) -> None:
        """Shut the pool down — only if this service owns it."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()

    # -- submission ------------------------------------------------------------
    def parse_spec(self, data: Union[StudySpec, Mapping[str, Any], str, bytes]) -> StudySpec:
        """The :class:`StudySpec` a request body describes (EngineError → 400)."""
        if isinstance(data, StudySpec):
            return data
        if isinstance(data, (str, bytes)):
            return StudySpec.from_json(data)
        return StudySpec.from_dict(data)

    def parse_search_spec(
        self,
        data: Union[SearchSpec, Mapping[str, Any], str, bytes],
    ) -> SearchSpec:
        """The :class:`SearchSpec` a request body describes (EngineError → 400)."""
        if isinstance(data, SearchSpec):
            return data
        if isinstance(data, (str, bytes)):
            return SearchSpec.from_json(data)
        return SearchSpec.from_dict(data)

    async def submit(
        self,
        data: Union[StudySpec, Mapping[str, Any], str, bytes],
    ) -> StudyRecord:
        """Admit one study: cache hit, coalesce, or dispatch.

        Returns the (possibly already-done) :class:`StudyRecord`.  Raises
        :class:`~repro.errors.EngineError` for a malformed spec,
        :class:`BudgetError` over the replicate budget and
        :class:`BackpressureError` when the in-flight bound is saturated.
        """
        spec = self.parse_spec(data)
        if spec.n_replicates > self.max_replicates:
            self._rejected += 1
            raise BudgetError(
                f"spec asks for {spec.n_replicates} replicates; this service "
                f"accepts at most {self.max_replicates} per request",
            )
        key = spec.cache_key() if spec.seed is not None else None
        return await self._admit(spec, key, kind="study")

    async def submit_search(
        self,
        data: Union[SearchSpec, Mapping[str, Any], str, bytes],
    ) -> StudyRecord:
        """Admit one design-space search under the same policy as studies.

        The admission pipeline is shared with :meth:`submit` — one in-flight
        bound, one registry, one content-addressed cache (frontiers are keyed
        by :meth:`SearchSpec.cache_key`) — only the budget check differs: a
        search is charged its *total* replicate budget across the whole
        candidate space.
        """
        spec = self.parse_search_spec(data)
        budget = spec.total_budget()
        if budget > self.max_search_replicates:
            self._rejected += 1
            raise BudgetError(
                f"search budgets {budget} replicates over its candidate space; "
                f"this service accepts at most {self.max_search_replicates} "
                "per request (cap the space with max_candidates or lower "
                "budget_replicates)",
            )
        key = spec.cache_key() if spec.seed is not None else None
        return await self._admit(spec, key, kind="search")

    async def _admit(
        self,
        spec: Union[StudySpec, SearchSpec],
        key: Optional[str],
        kind: str,
    ) -> StudyRecord:
        """The shared admission pipeline: cache hit, coalesce, or dispatch."""
        if key is not None:
            hit = self.cache.get(key)
            if hit is not None:
                record = self._new_record(spec, key, kind=kind, status="done", cached=True)
                record.result = hit
                record.wall_seconds = 0.0
                record.done_event.set()
                self._completed += 1
                return record
            with self._lock:
                running = self._inflight_by_key.get(key)
            if running is not None:
                # Identical request already executing: attach, don't dispatch.
                self._coalesced += 1
                record = self._new_record(spec, key, kind=kind, coalesced=True)
                asyncio.ensure_future(self._follow(record, running))
                return record

        with self._lock:
            if len(self._inflight_by_key) >= self.max_inflight:
                self._rejected += 1
                raise BackpressureError(
                    f"{len(self._inflight_by_key)} requests in flight "
                    f"(bound {self.max_inflight}); retry later",
                )
            record = self._new_record(spec, key, kind=kind)
            if key is not None:
                self._inflight_by_key[key] = record
            else:
                # Unseeded specs have no stable key; track them under their id
                # so they still count against the in-flight bound.
                self._inflight_by_key[record.study_id] = record
        asyncio.ensure_future(self._execute(record))
        return record

    def _new_record(
        self,
        spec: Union[StudySpec, SearchSpec],
        key: Optional[str],
        kind: str = "study",
        status: str = "running",
        cached: bool = False,
        coalesced: bool = False,
    ) -> StudyRecord:
        record = StudyRecord(
            study_id=f"{kind}-{next(self._ids):06d}",
            spec=spec,
            cache_key=key,
            kind=kind,
            status=status,
            cached=cached,
            coalesced=coalesced,
        )
        self._records[record.study_id] = record
        self._submitted += 1
        return record

    async def _execute(self, record: StudyRecord) -> None:
        started = time.monotonic()
        runner = self._search_runner if record.kind == "search" else self._runner
        try:
            payload = await asyncio.to_thread(runner, record.spec, self.executor)
        except WorkerConnectionError as error:
            # Losing the fabric is the *server's* transient problem: tag it so
            # the HTTP layer answers 503 + Retry-After rather than a 500.
            record.status = "error"
            record.error = str(error)
            record.error_kind = "fabric"
            self._failed += 1
        except ReproError as error:
            record.status = "error"
            record.error = str(error)
            self._failed += 1
        except Exception as error:  # noqa: BLE001 - a study must never kill the loop
            record.status = "error"
            record.error = f"{type(error).__name__}: {error}"
            self._failed += 1
        else:
            record.result = payload
            record.status = "done"
            self._completed += 1
            if record.cache_key is not None:
                self.cache.put(record.cache_key, payload)
        finally:
            record.wall_seconds = time.monotonic() - started
            with self._lock:
                self._inflight_by_key.pop(record.cache_key or record.study_id, None)
            record.done_event.set()

    async def _follow(self, record: StudyRecord, leader: StudyRecord) -> None:
        """Mirror the leader's outcome onto a coalesced record."""
        await leader.done_event.wait()
        record.status = leader.status
        record.result = leader.result
        record.error = leader.error
        record.error_kind = leader.error_kind
        record.wall_seconds = leader.wall_seconds
        if leader.status == "done":
            self._completed += 1
        else:
            self._failed += 1
        record.done_event.set()

    # -- queries ---------------------------------------------------------------
    def get(self, study_id: str) -> Optional[StudyRecord]:
        return self._records.get(study_id)

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight_by_key)

    def stats(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` JSON body."""
        inflight = self.inflight
        body: Dict[str, Any] = {
            "uptime_seconds": time.monotonic() - self._started_at,
            "pool": {
                "executor": getattr(self.executor, "name", "unknown"),
                "workers": self.workers,
                "inflight": inflight,
                "max_inflight": self.max_inflight,
                "saturation": inflight / self.max_inflight,
            },
            "studies": {
                "submitted": self._submitted,
                "completed": self._completed,
                "failed": self._failed,
                "rejected": self._rejected,
                "coalesced": self._coalesced,
                "queue_depth": inflight,
            },
            "cache": self.cache.stats(),
            "limits": {
                "max_replicates": self.max_replicates,
                "max_search_replicates": self.max_search_replicates,
            },
        }
        # Fabric health (per-worker throughput, requeues, queue depth) and
        # supervisor status are the distributed deployment's backpressure
        # signal — present only when the executor/supervisor expose them.
        health = getattr(self._executor, "health", None)
        if callable(health):
            try:
                body["fabric"] = health()
            except Exception:  # noqa: BLE001 - stats must never take the service down
                body["fabric"] = None
        if self._supervisor is not None:
            try:
                supervisor_status = dict(self._supervisor.status())
            except Exception:  # noqa: BLE001 - same: degrade, don't die
                supervisor_status = None
            if supervisor_status is not None:
                # The executor's health already rides under "fabric".
                supervisor_status.pop("fabric", None)
            body["supervisor"] = supervisor_status
        return body


def _default_runner(spec: StudySpec, executor) -> Dict[str, Any]:
    """Run the study on the shared executor and return its JSON payload."""
    from ..analysis.replicates import run_replicate_study

    return run_replicate_study(spec, executor=executor).to_payload()


def _default_search_runner(spec: SearchSpec, executor) -> Dict[str, Any]:
    """Run the design-space search on the shared executor; JSON frontier out."""
    from ..search.engine import run_design_search

    return run_design_search(spec, executor=executor).to_payload()
