"""Hand-rolled asyncio HTTP/1.1 frontend for the analysis service.

Stdlib-only by design: the transport is ``asyncio.start_server`` plus a
minimal HTTP/1.1 reader (request line, headers, ``Content-Length`` body) —
enough for a JSON API with short-lived connections, with none of the
dependency surface of a web framework.  Every response carries
``Connection: close``; clients that want pipelining should put a real proxy
in front.

Routes (all JSON)::

    POST /v1/studies          submit a StudySpec body; returns the study
                              record (add ?wait=1 to long-poll completion)
    GET  /v1/studies/{id}     status / result of one study
    POST /v1/search           submit a SearchSpec body (design-space search);
                              same record shape and ?wait=1 long-poll
    GET  /v1/search/{id}      status / ranked frontier of one search
    GET  /v1/healthz          liveness probe
    GET  /v1/stats            pool saturation, cache hit rate, queue depth

Error mapping: malformed spec → 400, unknown study → 404, wrong method →
405, body or replicate budget exceeded → 413, in-flight bound saturated →
429 with ``Retry-After``, worker fabric lost mid-study → 503 with
``Retry-After`` (the record body still carries the detail: losing the
fabric is the server's transient problem, and clients should resubmit once
the supervisor has regrown it).

Security note: the server speaks plaintext HTTP and trusts its clients.
``genlogic serve`` binds loopback only unless a fabric key is configured
(``--key-file`` / ``GENLOGIC_FABRIC_KEY``) — the key authenticates the
worker fabric underneath (see the trust model in
:mod:`repro.engine.distributed`); the HTTP side itself should still be
fronted by an authenticating reverse proxy when exposed.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import EngineError
from .app import AnalysisService, BackpressureError, BudgetError

__all__ = ["ServiceServer", "serve"]

#: Largest accepted request body; a StudySpec is a few hundred bytes, so
#: anything near this is not a spec.
MAX_BODY_BYTES = 1 << 20

#: Hard cap on one request's header section.
MAX_HEADER_BYTES = 32 * 1024


class _HttpError(Exception):
    """An error with a ready HTTP mapping."""

    def __init__(self, status: int, message: str, retry_after: Optional[int] = None):
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: ``Retry-After`` seconds on a 503: long enough for the supervisor to
#: restart a worker and the coordinator's heartbeat to adopt it.
_FABRIC_RETRY_AFTER = 5


def _record_response(record) -> Tuple[int, Dict[str, Any], Optional[int]]:
    """The (status, body, retry_after) for a study/search record.

    A record that failed because the worker fabric was lost mid-study is a
    *server-side* transient (the supervisor will regrow the fabric), so it
    answers 503 + ``Retry-After`` — with the full record still in the body —
    instead of looking like a caller error.
    """
    if record.status == "error" and record.error_kind == "fabric":
        return 503, record.to_response(), _FABRIC_RETRY_AFTER
    return 200, record.to_response(), None


def _encode_response(
    status: int,
    body: Dict[str, Any],
    retry_after: Optional[int] = None,
) -> bytes:
    payload = json.dumps(body).encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    if retry_after is not None:
        head.append(f"Retry-After: {retry_after}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + payload


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one request: ``(method, target, headers, body)``."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            raise _HttpError(408, "empty request") from None
        raise _HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise _HttpError(413, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise _HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if n < 0:
            raise _HttpError(400, "malformed Content-Length")
        if n > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise _HttpError(400, "truncated request body") from None
    return method, target, headers, body


class ServiceServer:
    """The analysis service bound to a listening socket.

    Owns an :class:`~repro.service.app.AnalysisService` (or wraps one you
    built — e.g. with a distributed executor) and serves it over asyncio.
    Use ``await start()`` / ``await stop()`` from a running loop (tests), or
    the blocking :func:`serve` entry point (CLI).
    """

    def __init__(
        self,
        service: Optional[AnalysisService] = None,
        host: str = "127.0.0.1",
        port: int = 8080,
        **service_kwargs: Any,
    ):
        if service is not None and service_kwargs:
            raise EngineError("pass either a built AnalysisService or its kwargs, not both")
        self.service = service if service is not None else AnalysisService(**service_kwargs)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (the real port when 0 was requested)."""
        if self._server is None:
            raise EngineError("server is not started")
        sock = self._server.sockets[0]
        name = sock.getsockname()
        return name[0], name[1]

    async def start(self) -> "ServiceServer":
        await asyncio.to_thread(self.service.open)
        self._server = await asyncio.start_server(
            self._handle,
            host=self.host,
            port=self.port,
            limit=MAX_HEADER_BYTES + MAX_BODY_BYTES,
        )
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.to_thread(self.service.close)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- request handling ------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                method, target, _headers, body = await _read_request(reader)
                status, response, retry_after = await self._route(method, target, body)
            except _HttpError as error:
                status = error.status
                response = {"error": str(error)}
                retry_after = error.retry_after
            except Exception as error:  # noqa: BLE001 - a request must not kill the server
                status = 500
                response = {"error": f"{type(error).__name__}: {error}"}
                retry_after = None
            writer.write(_encode_response(status, response, retry_after))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            raise
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
    ) -> Tuple[int, Dict[str, Any], Optional[int]]:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = parse_qs(url.query)

        if path == "/v1/healthz":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            return 200, {"status": "ok"}, None

        if path == "/v1/stats":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            return 200, self.service.stats(), None

        for base, kind, submit in (
            ("/v1/studies", "study", self.service.submit),
            ("/v1/search", "search", self.service.submit_search),
        ):
            if path == base:
                if method != "POST":
                    raise _HttpError(405, f"{method} not allowed on {path}")
                try:
                    record = await submit(body)
                except BudgetError as error:
                    raise _HttpError(413, str(error)) from None
                except BackpressureError as error:
                    raise _HttpError(429, str(error), retry_after=1) from None
                except EngineError as error:
                    raise _HttpError(400, str(error)) from None
                if query.get("wait", ["0"])[-1] in ("1", "true", "yes"):
                    await record.done_event.wait()
                return _record_response(record)

            if path.startswith(base + "/"):
                if method != "GET":
                    raise _HttpError(405, f"{method} not allowed on {path}")
                record_id = path[len(base) + 1:]
                record = self.service.get(record_id)
                if record is None or record.kind != kind:
                    raise _HttpError(404, f"no {kind} {record_id!r}")
                return _record_response(record)

        raise _HttpError(404, f"no route for {path}")


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    service: Optional[AnalysisService] = None,
    ready=None,
    **service_kwargs: Any,
) -> None:
    """Blocking entry point: run the service until interrupted.

    ``ready`` (if given) is called with the bound ``(host, port)`` once the
    socket is listening — the CLI uses it to print the address, tests use it
    to learn an ephemeral port.
    """

    async def _main() -> None:
        server = ServiceServer(service=service, host=host, port=port, **service_kwargs)
        await server.start()
        try:
            if ready is not None:
                ready(server.address)
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
