"""HTTP analysis service: StudySpec in, verified logic out, hot results cached.

The ROADMAP's north star is serving the paper's verification workload to
heavy traffic; this package is the web tier over the ensemble engine that
makes it reachable without writing Python:

* :mod:`repro.service.cache` — :class:`ResultCache`, an LRU result store with
  a byte budget, keyed on :meth:`repro.engine.StudySpec.cache_key` (a
  content-addressed digest of everything that determines a study's result),
  so a hot circuit is verified once and then served from memory;
* :mod:`repro.service.app` — :class:`AnalysisService`, the transport-free
  core: one warm executor (local pool or distributed fabric), a study
  registry, in-flight coalescing of identical requests, per-request replicate
  budgets and an in-flight bound that produces backpressure instead of an
  unbounded queue;
* :mod:`repro.service.http` — a hand-rolled, stdlib-only asyncio HTTP/1.1
  server exposing the service as ``POST /v1/studies``,
  ``GET /v1/studies/{id}``, ``GET /v1/healthz`` and ``GET /v1/stats``.

Start it from the CLI — ``genlogic serve --port 8080 --workers 4`` — or
programmatically via :func:`serve`.
"""

from .app import AnalysisService, StudyRecord
from .cache import ResultCache
from .http import ServiceServer, serve

__all__ = [
    "AnalysisService",
    "ResultCache",
    "ServiceServer",
    "StudyRecord",
    "serve",
]
