"""Gibson–Bruck next-reaction method.

An exact SSA variant that keeps a putative firing time per reaction in an
indexed priority queue and, after each firing, only recomputes the
propensities of reactions that depend on the changed species.  For the small
gate networks used in the paper it produces trajectories statistically
identical to the direct method (property-tested in
``tests/stochastic/test_simulator_agreement.py``); it becomes advantageous
for the larger cascaded circuits of the 15-circuit suite.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from .events import InputSchedule
from .propensity import compile_model
from .rng import RandomState, make_rng
from .sampling import SampleRecorder, make_sample_times
from .trajectory import Trajectory

__all__ = ["simulate_next_reaction", "NextReactionSimulator"]


class _PutativeTimes:
    """Lazy-deletion priority queue of (putative time, reaction index)."""

    def __init__(self, count: int):
        self.times = np.full(count, math.inf, dtype=float)
        self._heap: List[tuple] = []
        self._stamp = np.zeros(count, dtype=np.int64)

    def set(self, reaction: int, time: float) -> None:
        self.times[reaction] = time
        self._stamp[reaction] += 1
        if math.isfinite(time):
            heapq.heappush(self._heap, (time, reaction, int(self._stamp[reaction])))

    def pop_min(self) -> tuple:
        """Return (time, reaction) for the earliest valid entry, or (inf, -1)."""
        while self._heap:
            time, reaction, stamp = self._heap[0]
            if stamp == self._stamp[reaction] and time == self.times[reaction]:
                return time, reaction
            heapq.heappop(self._heap)
        return math.inf, -1


class NextReactionSimulator:
    """Gibson–Bruck simulator bound to one compiled model."""

    def __init__(self, model, parameter_overrides: Optional[Dict[str, float]] = None):
        self.compiled = compile_model(model, parameter_overrides)

    def run(
        self,
        t_end: float,
        sample_interval: float = 1.0,
        schedule: Optional[InputSchedule] = None,
        initial_state: Optional[Dict[str, float]] = None,
        rng: RandomState = None,
        record_species: Optional[Sequence[str]] = None,
        max_events: int = 50_000_000,
    ) -> Trajectory:
        """Simulate until ``t_end``; same contract as the direct method."""
        compiled = self.compiled
        generator = make_rng(rng)
        schedule = schedule or InputSchedule()

        state = compiled.initial_state.copy()
        if initial_state:
            state = compiled.state_from_dict({**compiled.model.initial_state(), **initial_state})

        sample_times = make_sample_times(t_end, sample_interval)
        recorder = SampleRecorder(sample_times, compiled.n_species)

        n_reactions = compiled.n_reactions
        propensities = np.zeros(n_reactions, dtype=float)
        queue = _PutativeTimes(n_reactions)
        events_fired = 0
        # Dependent index arrays, precomputed so the incremental update can
        # snapshot old propensities with one fancy-index read per event.
        dependents_of = [compiled.dependents(r) for r in range(n_reactions)]
        dependent_arrays = [np.asarray(deps, dtype=np.intp) for deps in dependents_of]

        def reschedule_all(now: float) -> None:
            compiled.propensities(state, out=propensities)
            for r in range(n_reactions):
                if propensities[r] > 0.0:
                    queue.set(r, now + generator.exponential(1.0 / propensities[r]))
                else:
                    queue.set(r, math.inf)

        boundaries = schedule.segment_boundaries(t_end)
        segment_start = 0.0
        for segment_end in boundaries:
            for event in schedule.events_between(segment_start, segment_start + 1e-12):
                compiled.clamp(state, event.settings)
            # Input amounts changed discontinuously: all propensities are
            # stale, so redraw every putative time (memoryless property makes
            # this exact).
            t = segment_start
            reschedule_all(t)
            while True:
                fire_time, reaction = queue.pop_min()
                if reaction < 0 or fire_time >= segment_end:
                    break
                recorder.fill_before(fire_time, state)
                t = fire_time
                compiled.apply(reaction, state)
                events_fired += 1
                if events_fired > max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} reaction events before t_end",
                    )
                # Recompute every dependent propensity in one fused kernel
                # call, then walk the dependents in the same order as before
                # (the RNG draw sequence is part of the results contract).
                old_values = propensities[dependent_arrays[reaction]]
                compiled.propensities_after(reaction, state, propensities)
                for position, dependent in enumerate(dependents_of[reaction]):
                    old_propensity = old_values[position]
                    new_propensity = propensities[dependent]
                    if dependent == reaction:
                        if new_propensity > 0.0:
                            queue.set(dependent, t + generator.exponential(1.0 / new_propensity))
                        else:
                            queue.set(dependent, math.inf)
                        continue
                    old_time = queue.times[dependent]
                    if new_propensity <= 0.0:
                        queue.set(dependent, math.inf)
                    elif old_propensity <= 0.0 or not math.isfinite(old_time):
                        queue.set(dependent, t + generator.exponential(1.0 / new_propensity))
                    else:
                        # Gibson–Bruck re-use of the previously drawn firing
                        # time, rescaled by the propensity ratio.
                        queue.set(
                            dependent,
                            t + (old_propensity / new_propensity) * (old_time - t),
                        )
            recorder.fill_before(segment_end, state)
            segment_start = segment_end

        recorder.finish(state)
        trajectory = Trajectory(sample_times, list(compiled.species), recorder.data)
        if record_species is not None:
            trajectory = trajectory.select(list(record_species))
        return trajectory


def simulate_next_reaction(
    model,
    t_end: float,
    sample_interval: float = 1.0,
    schedule: Optional[InputSchedule] = None,
    initial_state: Optional[Dict[str, float]] = None,
    rng: RandomState = None,
    record_species: Optional[Sequence[str]] = None,
    parameter_overrides: Optional[Dict[str, float]] = None,
    max_events: int = 50_000_000,
) -> Trajectory:
    """One-shot convenience wrapper around :class:`NextReactionSimulator`."""
    simulator = NextReactionSimulator(model, parameter_overrides)
    return simulator.run(
        t_end,
        sample_interval=sample_interval,
        schedule=schedule,
        initial_state=initial_state,
        rng=rng,
        record_species=record_species,
        max_events=max_events,
    )
