"""Stochastic and deterministic simulation of genetic circuit models.

This package replaces the D-VASim simulation engine the paper uses: exact
SSA (direct and next-reaction methods), approximate tau-leaping, and an ODE
baseline, all sharing one compiled-model representation, one input-clamping
mechanism and one sampled-trajectory output format.
"""

from .events import InputEvent, InputSchedule
from .nextreaction import NextReactionSimulator, simulate_next_reaction
from .ode import OdeSimulator, simulate_ode
from .propensity import CompiledModel, compile_model
from .rng import make_rng, spawn_rngs
from .sampling import SampleRecorder, make_sample_times
from .ssa import DirectMethodSimulator, simulate_ssa
from .tauleap import TauLeapSimulator, simulate_tau_leap
from .trajectory import Trajectory

#: Mapping of simulator name -> one-shot simulation function, used by the
#: CLI and by the simulator-choice ablation benchmark.
SIMULATORS = {
    "ssa": simulate_ssa,
    "direct": simulate_ssa,
    "next-reaction": simulate_next_reaction,
    "tau-leap": simulate_tau_leap,
    "ode": simulate_ode,
}

__all__ = [
    "InputEvent",
    "InputSchedule",
    "Trajectory",
    "CompiledModel",
    "compile_model",
    "make_rng",
    "spawn_rngs",
    "SampleRecorder",
    "make_sample_times",
    "DirectMethodSimulator",
    "simulate_ssa",
    "NextReactionSimulator",
    "simulate_next_reaction",
    "TauLeapSimulator",
    "simulate_tau_leap",
    "OdeSimulator",
    "simulate_ode",
    "SIMULATORS",
]
