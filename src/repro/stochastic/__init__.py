"""Stochastic and deterministic simulation of genetic circuit models.

This package replaces the D-VASim simulation engine the paper uses: exact
SSA (direct and next-reaction methods), approximate tau-leaping, and an ODE
baseline, all sharing one compiled-model representation, one input-clamping
mechanism and one sampled-trajectory output format.
"""

from ..errors import SimulationError
from .batch import simulate_ssa_batch
from .codegen import BACKEND_CODEGEN, BACKEND_INTERP, KERNEL_ENV_VAR, default_backend
from .events import InputEvent, InputSchedule
from .nextreaction import NextReactionSimulator, simulate_next_reaction
from .ode import OdeSimulator, simulate_ode
from .propensity import CompiledModel, compile_model, kernel_source_for
from .rng import fan_out_seeds, make_rng, spawn_rngs
from .sampling import SampleRecorder, make_sample_times
from .ssa import DirectMethodSimulator, simulate_ssa
from .tauleap import TauLeapSimulator, simulate_tau_leap
from .trajectory import Trajectory, decode_trajectories, encode_trajectories

#: The canonical simulators: one entry per distinct algorithm.
CANONICAL_SIMULATORS = {
    "ssa": simulate_ssa,
    "next-reaction": simulate_next_reaction,
    "tau-leap": simulate_tau_leap,
    "ode": simulate_ode,
}

#: Documented aliases, resolved by :func:`canonical_simulator_name`.
#: ``"direct"`` is Gillespie's name for the ``"ssa"`` algorithm (the direct
#: method), kept because the paper and D-VASim both use it.
SIMULATOR_ALIASES = {
    "direct": "ssa",
    "gillespie": "ssa",
    "nrm": "next-reaction",
}


def canonical_simulator_name(name: str) -> str:
    """Normalize a simulator name: lower-case, strip, resolve aliases.

    This is the single lookup site shared by the ensemble engine, the virtual
    laboratory and the CLI.  Raises :class:`~repro.errors.SimulationError` for
    unknown names, listing the canonical choices.
    """
    if not isinstance(name, str):
        raise SimulationError(f"simulator name must be a string, got {name!r}")
    key = name.strip().lower()
    key = SIMULATOR_ALIASES.get(key, key)
    if key not in CANONICAL_SIMULATORS:
        raise SimulationError(
            f"unknown simulator {name!r}; choose from {sorted(CANONICAL_SIMULATORS)} "
            f"(aliases: {sorted(SIMULATOR_ALIASES)})",
        )
    return key


def resolve_simulator(name: str):
    """The one-shot simulation function for ``name`` (aliases accepted)."""
    return CANONICAL_SIMULATORS[canonical_simulator_name(name)]


#: Backwards-compatible flat mapping of every accepted name (canonical names
#: plus aliases) -> one-shot simulation function.  Derived from the canonical
#: table so there is exactly one source of truth.
SIMULATORS = {
    **CANONICAL_SIMULATORS,
    **{alias: CANONICAL_SIMULATORS[target] for alias, target in SIMULATOR_ALIASES.items()},
}

__all__ = [
    "InputEvent",
    "InputSchedule",
    "Trajectory",
    "CompiledModel",
    "compile_model",
    "kernel_source_for",
    "KERNEL_ENV_VAR",
    "BACKEND_CODEGEN",
    "BACKEND_INTERP",
    "default_backend",
    "make_rng",
    "spawn_rngs",
    "fan_out_seeds",
    "CANONICAL_SIMULATORS",
    "SIMULATOR_ALIASES",
    "canonical_simulator_name",
    "resolve_simulator",
    "SampleRecorder",
    "make_sample_times",
    "DirectMethodSimulator",
    "simulate_ssa",
    "simulate_ssa_batch",
    "encode_trajectories",
    "decode_trajectories",
    "NextReactionSimulator",
    "simulate_next_reaction",
    "TauLeapSimulator",
    "simulate_tau_leap",
    "OdeSimulator",
    "simulate_ode",
    "SIMULATORS",
]
